//! Shared implementation of the `neatd` daemon and `neat serve`.
//!
//! Wraps [`neat_svc::Service`] in a production poll loop over a real
//! filesystem: batches dropped into `--spool` (by atomic rename) are
//! clustered incrementally, journaled and checkpointed into `--state`,
//! and shed/poison batches land in `--quarantine`. All storage goes
//! through a [`RetryFs`] with deterministic jittered backoff; its retry
//! counters surface in the health digest printed on exit.
//!
//! Exit codes (`neatd` and `neat serve` alike):
//!
//! * `0` — clean shutdown, nothing lost or degraded;
//! * `3` — served, but degraded: a shed or poisoned batch, a degraded
//!   refinement, or a journal repair ([`EXIT_DEGRADED`]);
//! * `4` — unrecoverable: the restart budget is exhausted, recovery
//!   failed, or the state directory belongs to a different
//!   configuration/network ([`EXIT_UNRECOVERABLE`]);
//! * `1` — usage or startup error (bad flags, unreadable network).
//!
//! The daemon is crash-safe by construction: `kill -9` at any instant
//! and a restart with the same flags resumes from the latest checkpoint
//! plus journal, skips spool files that were already applied, and
//! continues byte-identically (see `tests/service_chaos.rs`).

use crate::cli::{parse, parse_duration_ms, required};
use neat_durability::retry::{JitterBackoff, RetryFs};
use neat_durability::StdFs;
use neat_rnet::{io as netio, RoadNetwork};
use neat_runctl::{CancelToken, Clock, SystemClock};
use neat_svc::{
    DrainOutcome, NetConfig, NetServer, NoFaults, Service, ServiceStatus, SvcConfig, SvcError,
    TenantConfig, TenantRouter,
};
use neat_traj::sanitize::ErrorPolicy;
use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Exit code for a shutdown that served but lost or reduced something.
pub const EXIT_DEGRADED: u8 = 3;
/// Exit code when the service could not be recovered by restarting.
pub const EXIT_UNRECOVERABLE: u8 = 4;

/// Usage text for the serve surface (also printed by `neatd --help`).
pub const SERVE_USAGE: &str = "usage:
  neatd --network FILE --spool DIR --state DIR [--quarantine DIR]
        [--drain] [--max-ticks N] [--poll-ms N] [--seed N]
        [--queue-cap N] [--shed-backlog N]
        [--checkpoint-every N] [--checkpoint-ops N]
        [--batch-max-ops N] [--batch-deadline DUR]
        [--on-error fail|skip|repair] [--min-card N] [--epsilon M]
        [--poison-after N] [--max-restarts N]
        [--window SECONDS] [--compact-every N] [--idle-expiry]
  neatd --listen HOST:PORT --network FILE --spool DIR --state DIR
        [--quarantine DIR] [--max-tenants N] [--push-ticks N]
        [--max-conns N] [--idle-timeout DUR] [--read-timeout DUR]
        [--max-frame-bytes N] [... service flags as above]
  (same flags as `neat serve`)

--window bounds retention: after each batch the watermark advances to
the newest observation time minus the window, t-fragments wholly
behind it are expired (drift events are printed as clusters are born,
grow, shrink, merge and die), and journal/checkpoint/index storage
stays O(window) instead of growing forever. --compact-every N forces
a journal compaction every N applied batches on top of the compaction
each checkpoint performs.

--idle-expiry (requires --window) also ticks the watermark from the
wall clock while no traffic arrives, mapping one wall-clock second to
one trajectory-time unit from the newest observation applied — so
windows keep closing and drift events keep firing on quiet streams
(and, with --listen, on quiet tenants). Without it the watermark only
advances when a batch is applied.

With --listen the daemon serves the framed TCP ingestion protocol
(`neat push`); the three directories become per-tenant roots. SIGTERM
or SIGINT (or a Drain frame) triggers a graceful drain: stop
accepting, flush in-flight batches, checkpoint every tenant, exit.

exit codes: 0 = clean, 3 = degraded-but-served (any tenant),
            4 = unrecoverable (any tenant), 1 = usage error";

fn load_network(path: &str) -> Result<RoadNetwork, String> {
    let f = File::open(path).map_err(|e| format!("cannot open network `{path}`: {e}"))?;
    netio::read_network(BufReader::new(f)).map_err(|e| format!("cannot read network: {e}"))
}

/// Builds the service configuration from parsed flags.
fn build_config(flags: &HashMap<String, String>) -> Result<SvcConfig, String> {
    let spool = required(flags, "spool")?;
    let state = required(flags, "state")?;
    let quarantine = match flags.get("quarantine") {
        Some(q) => q.clone(),
        None => format!("{state}/quarantine"),
    };
    let mut cfg = SvcConfig::new(spool, state, quarantine);
    cfg.neat.min_card = parse(flags, "min-card", cfg.neat.min_card)?;
    cfg.neat.epsilon = parse(flags, "epsilon", cfg.neat.epsilon)?;
    cfg.policy = match flags.get("on-error").map(String::as_str) {
        None | Some("fail") => ErrorPolicy::Strict,
        Some("skip") => ErrorPolicy::Skip,
        Some("repair") => ErrorPolicy::Repair,
        Some(other) => return Err(format!("unknown --on-error `{other}`")),
    };
    cfg.queue_capacity = parse(flags, "queue-cap", cfg.queue_capacity)?;
    cfg.shed_backlog = parse(flags, "shed-backlog", cfg.shed_backlog)?;
    cfg.checkpoint_every_batches = parse(flags, "checkpoint-every", cfg.checkpoint_every_batches)?;
    cfg.checkpoint_every_ops = parse(flags, "checkpoint-ops", cfg.checkpoint_every_ops)?;
    if let Some(ops) = flags.get("batch-max-ops") {
        cfg.batch_max_ops = Some(
            ops.parse()
                .map_err(|e| format!("invalid --batch-max-ops `{ops}`: {e}"))?,
        );
    }
    if let Some(spec) = flags.get("batch-deadline") {
        cfg.batch_deadline_ms = Some(parse_duration_ms(spec)?);
    }
    cfg.poison_after = parse(flags, "poison-after", cfg.poison_after)?;
    cfg.max_restarts = parse(flags, "max-restarts", cfg.max_restarts)?;
    if let Some(spec) = flags.get("window") {
        let window: f64 = spec
            .parse()
            .map_err(|e| format!("invalid --window `{spec}`: {e}"))?;
        if !window.is_finite() || window <= 0.0 {
            return Err(format!(
                "invalid --window `{spec}`: must be a positive duration in seconds"
            ));
        }
        cfg.window = Some(window);
    }
    if let Some(spec) = flags.get("compact-every") {
        let every: usize = spec
            .parse()
            .map_err(|e| format!("invalid --compact-every `{spec}`: {e}"))?;
        if every == 0 {
            return Err(format!("invalid --compact-every `{spec}`: must be >= 1"));
        }
        cfg.compact_every_batches = Some(every);
    }
    if flags.contains_key("idle-expiry") {
        if cfg.window.is_none() {
            return Err("--idle-expiry requires --window".to_string());
        }
        cfg.idle_expiry = true;
    }
    Ok(cfg)
}

/// Runs the service loop. Shared by `neatd` and `neat serve`.
///
/// # Errors
///
/// `Err(String)` for usage/startup problems (exit 1 at the callers);
/// service-level failures are reported through the exit code instead.
pub fn serve(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    if let Some(addr) = flags.get("listen") {
        return serve_net(flags, addr);
    }
    let net = load_network(required(flags, "network")?)?;
    let cfg = build_config(flags)?;
    let drain = flags.contains_key("drain");
    let max_ticks: u64 = parse(flags, "max-ticks", u64::MAX)?;
    let poll_ms: u64 = parse(flags, "poll-ms", 200)?;
    let seed: u64 = parse(flags, "seed", 42)?;

    // All storage goes through the retrying decorator; the probe feeds
    // its counters into the health report.
    let fs = RetryFs::new(StdFs, 3, JitterBackoff::seeded(seed));
    let probe_fs = fs.clone();
    // The plain path normally runs clockless (deterministic ticks);
    // idle-stream retention is the one feature that needs wall time.
    let clock: Option<Arc<dyn Clock>> = if cfg.idle_expiry {
        Some(Arc::new(SystemClock::new()))
    } else {
        None
    };
    let mut svc =
        match Service::open_with(&net, cfg, fs, Arc::new(NoFaults), clock, CancelToken::new()) {
            Ok(svc) => svc,
            Err(SvcError::Checkpoint(e)) => {
                // A state directory from a different session (config or
                // network mismatch) or beyond-repair storage damage is not
                // recoverable by restarting with the same flags.
                eprintln!("neatd: unrecoverable state directory: {e}");
                return Ok(ExitCode::from(EXIT_UNRECOVERABLE));
            }
            Err(e) => return Err(format!("cannot start service: {e}")),
        };
    svc = svc.with_retry_probe(Arc::new(move || probe_fs.stats()));

    eprintln!(
        "neatd: serving (spool={}, state={}, mode={})",
        required(flags, "spool")?,
        required(flags, "state")?,
        if drain { "drain" } else { "watch" }
    );

    if drain {
        let outcome = svc.run_drain(max_ticks);
        report_drift(&svc, 0);
        eprintln!("neatd: {:?}; {}", outcome, svc.health().digest());
        return Ok(exit_for(&svc, outcome == DrainOutcome::Failed));
    }

    let mut ticks: u64 = 0;
    let mut seen_epoch: u64 = 0;
    let failed = loop {
        if ticks >= max_ticks {
            break false;
        }
        ticks += 1;
        match svc.tick() {
            neat_svc::TickOutcome::Worked => {
                seen_epoch = report_drift(&svc, seen_epoch);
            }
            neat_svc::TickOutcome::Idle => {
                std::thread::sleep(Duration::from_millis(poll_ms));
            }
            neat_svc::TickOutcome::Cancelled => break false,
            neat_svc::TickOutcome::Failed => break true,
        }
    };
    eprintln!("neatd: stopped; {}", svc.health().digest());
    Ok(exit_for(&svc, failed))
}

/// Runs the framed TCP ingestion daemon: a [`TenantRouter`] behind a
/// [`NetServer`], drained gracefully on SIGTERM/SIGINT or a `Drain`
/// frame. The spool/state/quarantine flags become per-tenant roots.
fn serve_net(flags: &HashMap<String, String>, addr: &str) -> Result<ExitCode, String> {
    let net = load_network(required(flags, "network")?)?;
    let svc_cfg = build_config(flags)?;
    let seed: u64 = parse(flags, "seed", 42)?;
    let max_ticks: u64 = parse(flags, "max-ticks", u64::MAX)?;

    let mut tcfg = TenantConfig::new(svc_cfg);
    tcfg.seed = seed;
    tcfg.max_tenants = parse(flags, "max-tenants", tcfg.max_tenants)?;
    tcfg.push_tick_budget = parse(flags, "push-ticks", tcfg.push_tick_budget)?;

    let mut ncfg = NetConfig::default();
    ncfg.max_conns = parse(flags, "max-conns", ncfg.max_conns)?;
    ncfg.max_frame_bytes = parse(flags, "max-frame-bytes", ncfg.max_frame_bytes)?;
    if let Some(spec) = flags.get("idle-timeout") {
        ncfg.idle_timeout_ms = parse_duration_ms(spec)?;
    }
    if let Some(spec) = flags.get("read-timeout") {
        ncfg.read_timeout_ms = parse_duration_ms(spec)?;
    }

    let fs = RetryFs::new(StdFs, 3, JitterBackoff::seeded(seed));
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let cancel = CancelToken::new();
    install_signal_drain(&cancel);

    let listener =
        TcpListener::bind(addr).map_err(|e| format!("cannot bind listener `{addr}`: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listener address: {e}"))?;
    // Machine-parseable: tests bind port 0 and read the real port here.
    eprintln!("neatd: listening on {local}");

    let router = TenantRouter::new(&net, fs, tcfg, Arc::clone(&clock), cancel.observer());
    let server = NetServer::new(router, ncfg, clock, cancel.observer());
    server
        .serve(&listener)
        .map_err(|e| format!("listener failed: {e}"))?;

    // Drain: the accept loop has stopped and every handler has exited;
    // flush what remains and checkpoint each tenant.
    eprintln!("neatd: draining");
    let mut router = server.into_router();
    let mut failed = false;
    for (tenant, outcome) in router.drain_all(max_ticks) {
        failed |= outcome == DrainOutcome::Failed;
        eprintln!("neatd: tenant {tenant}: {outcome:?}");
    }
    for tenant in router.tenant_names() {
        if let Some(h) = router.health_of(&tenant) {
            eprintln!("neatd: tenant {tenant}: {}", h.digest());
        }
    }
    let status = router.worst_status();
    eprintln!("neatd: stopped ({})", status.name());
    if failed || status == ServiceStatus::Failed {
        return Ok(ExitCode::from(EXIT_UNRECOVERABLE));
    }
    Ok(match status {
        ServiceStatus::Running => ExitCode::SUCCESS,
        _ => ExitCode::from(EXIT_DEGRADED),
    })
}

/// Cancels `cancel` when SIGTERM or SIGINT arrives, turning the signal
/// into the same graceful-drain path a `Drain` frame takes. The watcher
/// thread is detached; it dies with the process.
///
/// Installed through `sigaction(2)` from the platform C library (the
/// workspace builds offline with no `libc` crate, so the binding is
/// declared here against the 64-bit Linux layout that glibc and musl
/// share). `SA_RESTART` is set explicitly: no syscall in the daemon
/// relies on `EINTR` — every loop observes the cancel token — so
/// unrelated blocking calls should not spuriously fail. A previously
/// installed non-default handler is replaced with a notice on stderr,
/// and an installation failure degrades to draining via a `Drain`
/// frame instead of aborting startup.
#[cfg(target_os = "linux")]
fn install_signal_drain(cancel: &CancelToken) {
    use std::os::raw::{c_int, c_ulong};
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: c_int) {
        SIGNALED.store(true, Ordering::SeqCst);
    }

    /// `struct sigaction` as glibc and musl lay it out on 64-bit Linux:
    /// handler union, 1024-bit signal mask, flags, restorer. The
    /// handler slot is address-sized (the C `sighandler_t` is an
    /// address), which also lets it hold `SIG_DFL`/`SIG_IGN`.
    #[repr(C)]
    struct SigactionC {
        sa_handler: usize,
        sa_mask: [c_ulong; 16],
        sa_flags: c_int,
        sa_restorer: usize,
    }

    extern "C" {
        fn sigaction(signum: c_int, act: *const SigactionC, oldact: *mut SigactionC) -> c_int;
    }

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    const SA_RESTART: c_int = 0x1000_0000;
    const SIG_DFL: usize = 0;
    const SIG_IGN: usize = 1;

    for (signum, name) in [(SIGTERM, "SIGTERM"), (SIGINT, "SIGINT")] {
        let act = SigactionC {
            sa_handler: on_signal as extern "C" fn(c_int) as usize,
            sa_mask: [0; 16],
            sa_flags: SA_RESTART,
            sa_restorer: 0,
        };
        let mut old = SigactionC {
            sa_handler: SIG_DFL,
            sa_mask: [0; 16],
            sa_flags: 0,
            sa_restorer: 0,
        };
        // SAFETY: `SigactionC` matches the platform `struct sigaction`
        // layout (see above), the handler only stores to a static
        // atomic (async-signal-safe), and this runs once at startup
        // before the listener threads exist.
        let rc = unsafe { sigaction(signum, &act, &mut old) };
        if rc != 0 {
            eprintln!(
                "neatd: warning: cannot install {name} handler; use a Drain frame to stop gracefully"
            );
        } else if old.sa_handler != SIG_DFL && old.sa_handler != SIG_IGN {
            eprintln!("neatd: note: replaced a previously installed {name} handler");
        }
    }
    let observer = cancel.observer();
    std::thread::spawn(move || loop {
        if SIGNALED.load(Ordering::SeqCst) {
            observer.cancel();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

/// Off Linux there is no signal hook (the `sigaction` binding above is
/// layout-specific); stop the daemon gracefully with a `Drain` frame.
#[cfg(not(target_os = "linux"))]
fn install_signal_drain(_cancel: &CancelToken) {}

/// Prints the cluster-drift lifecycle events of the current query view
/// when it is newer than `seen_epoch`; returns the newest epoch seen.
/// Views published and replaced between calls cannot be reported (only
/// the latest is retained) — watch mode calls this every worked tick,
/// which observes each per-batch publish.
fn report_drift<F: neat_durability::Fs + Clone>(svc: &Service<'_, F>, seen_epoch: u64) -> u64 {
    let view = svc.query();
    if view.epoch > seen_epoch {
        for ev in &view.drift {
            eprintln!("neatd: drift: {}", drift_line(ev));
        }
    }
    view.epoch
}

/// Stable one-line rendering of a drift event for operator logs.
fn drift_line(ev: &neat_core::DriftEvent) -> String {
    use neat_core::DriftEvent as E;
    match ev {
        E::Born { key, size } => format!("born key={key} size={size}"),
        E::Grew { key, from, to } => format!("grew key={key} size={from}->{to}"),
        E::Shrank { key, from, to } => format!("shrank key={key} size={from}->{to}"),
        E::Merged { key, sources } => format!("merged key={key} sources={sources:?}"),
        E::Died { key, size } => format!("died key={key} size={size}"),
        other => format!("{other:?}"),
    }
}

/// Maps the final service status onto the exit-code scheme.
fn exit_for<F: neat_durability::Fs + Clone>(svc: &Service<'_, F>, failed: bool) -> ExitCode {
    if failed || svc.status() == ServiceStatus::Failed {
        return ExitCode::from(EXIT_UNRECOVERABLE);
    }
    match svc.status() {
        ServiceStatus::Running => ExitCode::SUCCESS,
        _ => ExitCode::from(EXIT_DEGRADED),
    }
}
