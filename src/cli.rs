//! Flag parsing for the `neat` command-line binary — kept in the library
//! so it is unit-testable.

use std::collections::HashMap;

/// Flags that take no value.
pub const BARE_FLAGS: [&str; 7] = [
    "no-elb",
    "full-route",
    "trace",
    "resume",
    "drain",
    "status",
    "idle-expiry",
];

/// Splits `args` into `--key value` / bare `--key` flags.
///
/// # Errors
///
/// Returns a human-readable message for non-flag arguments and missing
/// values.
pub fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
        if BARE_FLAGS.contains(&key) {
            flags.insert(key.to_string(), String::from("true"));
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

/// Parses an optional flag with a default.
///
/// # Errors
///
/// Reports the flag name and offending value on parse failure.
pub fn parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for --{key}: `{v}`")),
    }
}

/// Fetches a required flag.
///
/// # Errors
///
/// Names the missing flag.
pub fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

/// Parses a human-friendly duration into milliseconds: `250ms`, `30s`,
/// `5m`, `2h`, or a bare number meaning seconds (`30` → 30 s).
///
/// # Errors
///
/// Reports the offending spec.
pub fn parse_duration_ms(spec: &str) -> Result<u64, String> {
    let spec = spec.trim();
    let bad = || format!("bad duration `{spec}` (expected e.g. 250ms, 30s, 5m, 2h)");
    let (digits, scale) = if let Some(n) = spec.strip_suffix("ms") {
        (n, 1)
    } else if let Some(n) = spec.strip_suffix('s') {
        (n, 1_000)
    } else if let Some(n) = spec.strip_suffix('m') {
        (n, 60_000)
    } else if let Some(n) = spec.strip_suffix('h') {
        (n, 3_600_000)
    } else {
        (spec, 1_000)
    };
    let n: u64 = digits.trim().parse().map_err(|_| bad())?;
    n.checked_mul(scale).ok_or_else(bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = parse_flags(&args(&["--seed", "7", "--out", "x.txt"])).unwrap();
        assert_eq!(f.get("seed").map(String::as_str), Some("7"));
        assert_eq!(f.get("out").map(String::as_str), Some("x.txt"));
    }

    #[test]
    fn bare_flags_take_no_value() {
        let f = parse_flags(&args(&["--trace", "--epsilon", "100", "--no-elb"])).unwrap();
        assert!(f.contains_key("trace"));
        assert!(f.contains_key("no-elb"));
        assert_eq!(f.get("epsilon").map(String::as_str), Some("100"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse_flags(&args(&["--seed"])).unwrap_err();
        assert!(err.contains("--seed"));
    }

    #[test]
    fn non_flag_is_an_error() {
        let err = parse_flags(&args(&["bogus"])).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn typed_parse_with_default() {
        let f = parse_flags(&args(&["--epsilon", "2.5"])).unwrap();
        assert_eq!(parse(&f, "epsilon", 0.0).unwrap(), 2.5);
        assert_eq!(parse(&f, "missing", 9usize).unwrap(), 9);
        assert!(parse::<u64>(&f, "epsilon", 0).is_err());
    }

    #[test]
    fn required_reports_missing() {
        let f = parse_flags(&args(&["--out", "a"])).unwrap();
        assert_eq!(required(&f, "out").unwrap(), "a");
        assert!(required(&f, "network").unwrap_err().contains("network"));
    }

    #[test]
    fn durations_parse_with_every_suffix() {
        assert_eq!(parse_duration_ms("250ms").unwrap(), 250);
        assert_eq!(parse_duration_ms("30s").unwrap(), 30_000);
        assert_eq!(parse_duration_ms("5m").unwrap(), 300_000);
        assert_eq!(parse_duration_ms("2h").unwrap(), 7_200_000);
        assert_eq!(parse_duration_ms("30").unwrap(), 30_000, "bare = seconds");
        assert_eq!(parse_duration_ms(" 10s ").unwrap(), 10_000);
    }

    #[test]
    fn bad_durations_are_rejected() {
        for bad in ["", "s", "10x", "-5s", "1.5s", "abc"] {
            assert!(parse_duration_ms(bad).is_err(), "`{bad}` must not parse");
        }
        assert!(parse_duration_ms(&format!("{}h", u64::MAX)).is_err());
    }
}
