//! Umbrella crate for the NEAT reproduction workspace.
//!
//! Re-exports the public APIs of every subsystem crate so the examples and
//! integration tests can use a single dependency. See the README for an
//! architecture overview and `DESIGN.md` for the per-experiment index.

pub mod cli;
pub mod push;
pub mod serve;

pub use neat_core as neat;
pub use neat_durability as durability;
pub use neat_mapmatch as mapmatch;
pub use neat_mobisim as mobisim;
pub use neat_rnet as rnet;
pub use neat_runctl as runctl;
pub use neat_svc as svc;
pub use neat_traclus as traclus;
pub use neat_traj as traj;
pub use neat_viz as viz;
