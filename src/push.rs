//! `neat push` — network client for a `neatd --listen` daemon.
//!
//! Sends one framed request (a batch push, a status query, or a drain
//! order) and honors the server's backpressure replies: `Defer` waits
//! at least the server's `retry_after_ms` hint, `Shed` and connection
//! failures wait the client's own [`JitterBackoff`] schedule, and the
//! retry budget is bounded by `--retries` / `--max-elapsed` through
//! [`JitterBackoff::next_delay_checked`] — the same capped schedule the
//! server derives its hints from. `Reject` is terminal.
//!
//! Exit codes: `0` — acknowledged (or status `running`); `3` — retries
//! exhausted without an ack, or status `degraded`; `4` — rejected, or
//! status `failed`; `1` — usage/local error.

use crate::cli::{parse, parse_duration_ms, required};
use neat_durability::retry::JitterBackoff;
use neat_svc::frame::{write_frame, FrameReader, Poll, Reply, Request, DEFAULT_MAX_FRAME};
use std::collections::HashMap;
use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// Exit code when the retry budget ran out before an ack.
const EXIT_EXHAUSTED: u8 = 3;
/// Exit code for a terminal rejection.
const EXIT_REJECTED: u8 = 4;

/// Usage text for `neat push`.
pub const PUSH_USAGE: &str = "usage:
  neat push --addr HOST:PORT --tenant NAME --dataset FILE [--batch-id ID]
  neat push --addr HOST:PORT --tenant NAME --status
  neat push --addr HOST:PORT --tenant NAME --drain
  common:  [--retries N] [--retry-base DUR] [--retry-max DUR]
           [--max-elapsed DUR] [--timeout DUR] [--seed N]

Pushes one trajectory batch to a `neatd --listen` daemon. The batch ID
is the idempotency key (default: the dataset file name): re-sending an
already-applied batch is acknowledged without re-applying it. `Defer`
and `Shed` replies are retried on a capped jittered schedule honoring
the server's retry hints; `Reject` is terminal.

exit codes: 0 = acked / status running, 3 = retries exhausted / status
            degraded, 4 = rejected / status failed, 1 = usage error";

/// Runs the push client.
///
/// # Errors
///
/// `Err(String)` for usage and local-file problems (exit 1 at the
/// caller); protocol outcomes map onto the exit code instead.
pub fn push(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let addr = required(flags, "addr")?.to_string();
    let tenant = required(flags, "tenant")?.to_string();
    let retries: u32 = parse(flags, "retries", 8)?;
    let retry_base = match flags.get("retry-base") {
        Some(spec) => parse_duration_ms(spec)?,
        None => 50,
    };
    let retry_max = match flags.get("retry-max") {
        Some(spec) => parse_duration_ms(spec)?,
        None => 2_000,
    };
    let max_elapsed = match flags.get("max-elapsed") {
        Some(spec) => Some(Duration::from_millis(parse_duration_ms(spec)?)),
        None => None,
    };
    let timeout_ms = match flags.get("timeout") {
        Some(spec) => parse_duration_ms(spec)?,
        None => 30_000,
    };
    let seed: u64 = parse(flags, "seed", 42)?;

    let request = if flags.contains_key("status") {
        Request::Status { tenant }
    } else if flags.contains_key("drain") {
        Request::Drain
    } else {
        let dataset = required(flags, "dataset")?;
        let payload =
            std::fs::read(dataset).map_err(|e| format!("cannot read dataset `{dataset}`: {e}"))?;
        let batch_id = match flags.get("batch-id") {
            Some(id) => id.clone(),
            None => Path::new(dataset)
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| format!("cannot derive a batch id from `{dataset}`"))?
                .to_string(),
        };
        Request::Push {
            tenant,
            batch_id,
            payload,
        }
    };

    // The same capped full-jitter schedule the server's Defer hints are
    // drawn from; next_delay_checked returning None is the give-up
    // signal for both dimensions of the budget.
    let backoff = JitterBackoff::with_sleeper(
        seed,
        Duration::from_millis(retry_base),
        Duration::from_millis(retry_max),
        neat_durability::retry::ThreadSleep,
    )
    .with_caps(Some(retries), max_elapsed);

    let mut attempt: u32 = 0;
    loop {
        attempt = attempt.saturating_add(1);
        let hint_ms = match try_once(&addr, &request, timeout_ms) {
            Ok(Reply::Ack { epoch }) => {
                println!("ack epoch={epoch}");
                return Ok(ExitCode::SUCCESS);
            }
            Ok(Reply::Report(rep)) => {
                println!("{}", rep.digest());
                return Ok(match rep.status.as_str() {
                    "running" => ExitCode::SUCCESS,
                    "failed" => ExitCode::from(EXIT_REJECTED),
                    _ => ExitCode::from(EXIT_EXHAUSTED),
                });
            }
            Ok(Reply::Reject { reason }) => {
                eprintln!("neat push: rejected: {reason}");
                return Ok(ExitCode::from(EXIT_REJECTED));
            }
            Ok(Reply::Defer { retry_after_ms }) => {
                eprintln!("neat push: deferred (server hint {retry_after_ms} ms)");
                retry_after_ms
            }
            Ok(Reply::Shed) => {
                eprintln!("neat push: shed by server backpressure");
                0
            }
            Err(e) => {
                eprintln!("neat push: attempt {attempt}: {e}");
                0
            }
        };
        match backoff.next_delay_checked(attempt) {
            None => {
                eprintln!("neat push: retry budget exhausted after {attempt} attempt(s)");
                return Ok(ExitCode::from(EXIT_EXHAUSTED));
            }
            Some(delay) => {
                // Never retry sooner than the server asked us to.
                std::thread::sleep(delay.max(Duration::from_millis(hint_ms)));
            }
        }
    }
}

/// One connect → send → reply round trip.
fn try_once(addr: &str, request: &Request, timeout_ms: u64) -> Result<Reply, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    let timeout = Some(Duration::from_millis(timeout_ms.max(1)));
    stream
        .set_read_timeout(timeout)
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    stream
        .set_write_timeout(timeout)
        .map_err(|e| format!("cannot set write timeout: {e}"))?;
    write_frame(&mut stream, &request.encode_body()).map_err(|e| format!("send failed: {e}"))?;
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
    loop {
        match reader.poll(&mut stream) {
            Ok(Poll::Frame(body)) => {
                return Reply::decode_body(&body).map_err(|e| format!("bad reply: {e}"))
            }
            Ok(Poll::Pending) => {}
            Ok(Poll::TimedOut) => return Err(format!("no reply within {timeout_ms} ms")),
            Ok(Poll::Eof { mid_frame }) => {
                return Err(if mid_frame {
                    "connection closed mid-reply".to_string()
                } else {
                    "connection closed before reply".to_string()
                })
            }
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
}
