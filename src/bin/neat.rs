//! `neat` — command-line interface to the NEAT reproduction.
//!
//! Subcommands:
//!
//! ```text
//! neat gen-network --map atl|sj|mia | --grid RxC   [--seed N] --out net.txt
//! neat simulate    --network net.txt --objects N   [--seed N] [--hotspots H]
//!                  [--destinations D] [--period S]
//!                  [--faults dropout=0.05,dup=0.02,...] --out data.csv
//! neat cluster     --network net.txt --dataset data.csv
//!                  [--mode base|flow|opt] [--min-card N] [--epsilon M]
//!                  [--weights q,k,v] [--beta B] [--no-elb] [--full-route]
//!                  [--on-error fail|skip|repair] [--quarantine FILE]
//!                  [--quarantine-max-bytes N]
//!                  [--deadline DUR] [--max-ops N] [--max-settled-nodes N]
//!                  [--max-clusters N] [--on-overrun fail|degrade|partial]
//!                  [--threads N] [--trace] [--svg out.svg] [--json out.json]
//!                  [--checkpoint-dir DIR] [--checkpoint-every N]
//!                  [--batches N] [--resume]
//! neat stats       --network net.txt [--dataset data.csv]
//! neat serve       --network net.txt --spool DIR --state DIR [...]
//! ```
//!
//! `neat serve` runs the supervised streaming service (`neatd` is the
//! same loop as a standalone binary): batches renamed into `--spool`
//! are clustered incrementally, journaled and checkpointed into
//! `--state`, and shed/poison batches are quarantined. Exit codes:
//! 0 = clean, 3 = degraded-but-served, 4 = unrecoverable.
//!
//! With `--checkpoint-dir` the dataset is split into `--batches` time
//! windows and clustered incrementally; after every `--checkpoint-every`
//! batches a durable snapshot is written and each applied batch is
//! journaled, so a killed run restarted with `--resume` continues from
//! the last acknowledged batch and produces the same clusters as an
//! uninterrupted run. All file outputs are written atomically
//! (temp file + rename), so a crash never leaves a half-written artifact.
//!
//! With a budget flag (`--deadline`, `--max-ops`, `--max-settled-nodes`,
//! `--max-clusters`) the run is executed under cooperative execution
//! control: on overrun it degrades along the ladder documented in
//! DESIGN.md §11 instead of aborting. Exit codes: 0 = complete,
//! 3 = degraded/partial result delivered, 1 = error. `--on-overrun fail`
//! turns an overrun into a hard error instead.
//!
//! With `--threads N` the clustering phases fan out across `N` workers;
//! the output is bit-identical to a sequential run for any `N`, budgets
//! included. `--threads 0` resolves to one worker per hardware thread —
//! that resolution happens only here in the binary, never in library
//! code.
//!
//! Everything is deterministic under `--seed` (default 42).

use neat_repro::cli::{parse, parse_duration_ms, parse_flags, required};
use neat_repro::durability::{write_atomic_std, StdFs};
use neat_repro::mobisim::faults::{inject_faults, FaultConfig};
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{
    CheckpointError, CheckpointStore, ErrorPolicy, IncrementalNeat, Mode, Neat, NeatConfig,
    Outcome, Weights,
};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig, MapPreset};
use neat_repro::rnet::{io as netio, RoadNetwork};
use neat_repro::runctl::{CancelToken, Control, OverrunMode, RunBudget, SystemClock};
use neat_repro::traj::sanitize::{
    save_quarantine, save_quarantine_capped, SanitizeOutput, Sanitizer,
};
use neat_repro::traj::{io as trajio, Dataset};
use neat_repro::viz::render;
use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

/// Exit code for a run that finished but delivered a degraded or partial
/// result because a budget or deadline was exhausted.
const EXIT_DEGRADED: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  neat gen-network (--map atl|sj|mia | --grid RxC) [--seed N] --out FILE
  neat simulate    --network FILE --objects N [--seed N] [--hotspots H]
                   [--destinations D] [--period S]
                   [--faults dropout=R,dup=R,reorder=R,teleport=R,truncate=R]
                   --out FILE
  neat cluster     --network FILE --dataset FILE [--mode base|flow|opt]
                   [--min-card N] [--epsilon M] [--weights q,k,v]
                   [--beta B] [--no-elb] [--full-route] [--trace]
                   [--on-error fail|skip|repair] [--quarantine FILE]
                   [--quarantine-max-bytes N]
                   [--deadline DUR] [--max-ops N] [--max-settled-nodes N]
                   [--max-clusters N] [--on-overrun fail|degrade|partial]
                   [--threads N (0 = one per hardware thread)]
                   [--svg FILE] [--json FILE]
                   [--checkpoint-dir DIR] [--checkpoint-every N]
                   [--batches N] [--resume]
  neat stats       --network FILE [--dataset FILE]
  neat push        --addr HOST:PORT --tenant NAME
                   (--dataset FILE [--batch-id ID] | --status | --drain)
                   [--retries N] [--retry-base DUR] [--retry-max DUR]
                   [--max-elapsed DUR] [--timeout DUR] [--seed N]
  neat serve       --network FILE --spool DIR --state DIR [--quarantine DIR]
                   [--listen HOST:PORT] [--max-tenants N] [--push-ticks N]
                   [--max-conns N] [--idle-timeout DUR] [--read-timeout DUR]
                   [--drain] [--max-ticks N] [--poll-ms N] [--seed N]
                   [--queue-cap N] [--shed-backlog N]
                   [--checkpoint-every N] [--checkpoint-ops N]
                   [--batch-max-ops N] [--batch-deadline DUR]
                   [--on-error fail|skip|repair] [--min-card N] [--epsilon M]
                   [--poison-after N] [--max-restarts N]";

fn load_network(path: &str) -> Result<RoadNetwork, String> {
    let f = File::open(path).map_err(|e| format!("cannot open network `{path}`: {e}"))?;
    netio::read_network(BufReader::new(f)).map_err(|e| format!("cannot read network: {e}"))
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let f = File::open(path).map_err(|e| format!("cannot open dataset `{path}`: {e}"))?;
    trajio::read_dataset(path, BufReader::new(f)).map_err(|e| format!("cannot read dataset: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or("no subcommand given")?;
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "gen-network" => gen_network(&flags).map(|()| ExitCode::SUCCESS),
        "simulate" => simulate(&flags).map(|()| ExitCode::SUCCESS),
        "cluster" => cluster(&flags),
        "stats" => stats(&flags).map(|()| ExitCode::SUCCESS),
        "push" => neat_repro::push::push(&flags),
        "serve" => neat_repro::serve::serve(&flags),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// What `--on-overrun` asks for when a budget is exhausted.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OverrunPolicy {
    /// Treat an overrun as a hard error (exit 1).
    Fail,
    /// Walk the degradation ladder (default; exit 3 when it triggers).
    Degrade,
    /// Stop immediately with the best result so far (exit 3).
    Partial,
}

/// Builds the execution [`Control`] from the budget flags, or `None`
/// when no budget flag was given (the run stays on the uncontrolled,
/// bit-identical path).
fn build_control(
    flags: &HashMap<String, String>,
) -> Result<Option<(Control, OverrunPolicy)>, String> {
    let budget_flags = [
        "deadline",
        "max-ops",
        "max-settled-nodes",
        "max-clusters",
        "on-overrun",
    ];
    if !budget_flags.iter().any(|k| flags.contains_key(*k)) {
        return Ok(None);
    }
    let mut budget = RunBudget::unlimited();
    if let Some(spec) = flags.get("deadline") {
        budget = budget.with_deadline_ms(parse_duration_ms(spec)?);
    }
    if flags.contains_key("max-ops") {
        budget = budget.with_max_ops(parse(flags, "max-ops", u64::MAX)?);
    }
    if flags.contains_key("max-settled-nodes") {
        budget = budget.with_max_settled_nodes(parse(flags, "max-settled-nodes", u64::MAX)?);
    }
    if flags.contains_key("max-clusters") {
        budget = budget.with_max_clusters(parse(flags, "max-clusters", usize::MAX)?);
    }
    let policy = match flags
        .get("on-overrun")
        .map(String::as_str)
        .unwrap_or("degrade")
    {
        "fail" => OverrunPolicy::Fail,
        "degrade" => OverrunPolicy::Degrade,
        "partial" => OverrunPolicy::Partial,
        other => {
            return Err(format!(
                "unknown --on-overrun `{other}` (fail|degrade|partial)"
            ))
        }
    };
    let overrun = match policy {
        OverrunPolicy::Partial => OverrunMode::Partial,
        _ => OverrunMode::Degrade,
    };
    let ctl = Control::new(budget, CancelToken::new())
        .with_clock(Arc::new(SystemClock::new()))
        .with_overrun(overrun);
    Ok(Some((ctl, policy)))
}

/// JSON fields describing a controlled run's outcome.
fn outcome_json(out: &Outcome) -> serde_json::Value {
    serde_json::json!({
        "completeness": serde_json::json!({
            "phase1": out.completeness.phase1.label(),
            "phase2": out.completeness.phase2.label(),
            "phase3": out.completeness.phase3.label(),
        }),
        "degradation": serde_json::json!({
            "requested": out.degradation.requested.name(),
            "delivered": out.degradation.delivered.name(),
            "steps": out.degradation.steps.iter()
                .map(|s| s.label()).collect::<Vec<_>>(),
        }),
        "interrupt": out.interrupt.map(|i| i.name()),
    })
}

fn gen_network(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = parse(flags, "seed", 42)?;
    let net = match (flags.get("map"), flags.get("grid")) {
        (Some(map), None) => {
            let preset = match map.to_lowercase().as_str() {
                "atl" | "atlanta" => MapPreset::Atlanta,
                "sj" | "sanjose" | "san-jose" => MapPreset::SanJose,
                "mia" | "miami" => MapPreset::Miami,
                other => return Err(format!("unknown map `{other}` (atl|sj|mia)")),
            };
            preset.generate(seed)
        }
        (None, Some(grid)) => {
            let (r, c) = grid
                .split_once(['x', 'X'])
                .ok_or_else(|| format!("--grid expects RxC, got `{grid}`"))?;
            let rows: usize = r.parse().map_err(|_| format!("bad rows `{r}`"))?;
            let cols: usize = c.parse().map_err(|_| format!("bad cols `{c}`"))?;
            generate_grid_network(&GridNetworkConfig::small_test(rows, cols), seed)
        }
        _ => return Err("give exactly one of --map or --grid".into()),
    };
    let out = required(flags, "out")?;
    let mut buf = Vec::new();
    netio::write_network(&net, &mut buf).map_err(|e| e.to_string())?;
    write_atomic_std(out.as_ref(), &buf).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    let s = net.stats();
    println!(
        "wrote {out}: {} junctions, {} segments, {:.1} km",
        s.junctions, s.segments, s.total_length_km
    );
    Ok(())
}

fn simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let net = load_network(required(flags, "network")?)?;
    let config = SimConfig {
        num_objects: parse(flags, "objects", 100)?,
        num_hotspots: parse(flags, "hotspots", 2)?,
        num_destinations: parse(flags, "destinations", 3)?,
        sample_period_s: parse(flags, "period", 3.0)?,
        ..SimConfig::default()
    };
    let seed: u64 = parse(flags, "seed", 42)?;
    let data = generate_dataset(&net, &config, seed, "cli");
    let out = required(flags, "out")?;
    match flags.get("faults") {
        None => {
            let mut buf = Vec::new();
            trajio::write_dataset(&data, &mut buf).map_err(|e| e.to_string())?;
            write_atomic_std(out.as_ref(), &buf)
                .map_err(|e| format!("cannot write `{out}`: {e}"))?;
            println!(
                "wrote {out}: {} trajectories, {} points",
                data.len(),
                data.total_points()
            );
        }
        Some(spec) => {
            let fault_config = FaultConfig::parse(spec)?;
            let (fixes, log) = inject_faults(&data, &fault_config, seed);
            let mut buf = Vec::new();
            trajio::write_raw_fixes(data.name(), &fixes, &mut buf).map_err(|e| e.to_string())?;
            write_atomic_std(out.as_ref(), &buf)
                .map_err(|e| format!("cannot write `{out}`: {e}"))?;
            println!(
                "wrote {out}: {} trajectories, {} fixes (faulted)",
                data.len(),
                fixes.len()
            );
            println!("faults: {}", log.digest());
        }
    }
    Ok(())
}

/// Loads the dataset for `cluster` under the active policy: `fail` uses
/// the legacy strict reader path; `skip`/`repair` read leniently and
/// sanitize, reporting what was done.
fn load_sanitized(path: &str, policy: ErrorPolicy) -> Result<SanitizeOutput, String> {
    let f = File::open(path).map_err(|e| format!("cannot open dataset `{path}`: {e}"))?;
    Sanitizer::with_policy(policy)
        .read(path, BufReader::new(f))
        .map_err(|e| format!("cannot read dataset: {e}"))
}

fn cluster(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let net = load_network(required(flags, "network")?)?;
    let policy: ErrorPolicy = parse(flags, "on-error", ErrorPolicy::Strict)?;
    let sanitized = load_sanitized(required(flags, "dataset")?, policy)?;
    if !sanitized.summary.is_clean() {
        println!("sanitize: {}", sanitized.summary.digest());
    }
    if let Some(qpath) = flags.get("quarantine") {
        if flags.contains_key("quarantine-max-bytes") {
            let cap: usize = parse(flags, "quarantine-max-bytes", usize::MAX)?;
            let report = save_quarantine_capped(&sanitized.quarantined, qpath, Some(cap))
                .map_err(|e| format!("cannot write `{qpath}`: {e}"))?;
            println!(
                "wrote {qpath}: {} quarantined trajectories ({} dropped by \
                 --quarantine-max-bytes, {} bytes)",
                report.written, report.dropped, report.bytes
            );
        } else {
            save_quarantine(&sanitized.quarantined, qpath)
                .map_err(|e| format!("cannot write `{qpath}`: {e}"))?;
            println!(
                "wrote {qpath}: {} quarantined trajectories",
                sanitized.quarantined.len()
            );
        }
    }
    let data = sanitized.dataset;
    let mode = match flags.get("mode").map(String::as_str).unwrap_or("opt") {
        "base" => Mode::Base,
        "flow" => Mode::Flow,
        "opt" => Mode::Opt,
        other => return Err(format!("unknown mode `{other}` (base|flow|opt)")),
    };
    let weights = match flags.get("weights") {
        None => Weights::balanced(),
        Some(spec) => {
            let parts: Vec<&str> = spec.split(',').collect();
            if parts.len() != 3 {
                return Err(format!("--weights expects q,k,v — got `{spec}`"));
            }
            let p = |s: &str| -> Result<f64, String> {
                s.parse().map_err(|_| format!("bad weight `{s}`"))
            };
            Weights::new(p(parts[0])?, p(parts[1])?, p(parts[2])?).map_err(|e| e.to_string())?
        }
    };
    // `--threads 0` means "one worker per hardware thread". The machine
    // is consulted only here, in the binary: library crates take the
    // resolved count as plain config, so clustering output never depends
    // on the host (and is bit-identical for any thread count anyway).
    let threads = match parse(flags, "threads", 1)? {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        t => t,
    };
    let config = NeatConfig {
        weights,
        min_card: parse(flags, "min-card", 5)?,
        epsilon: parse(flags, "epsilon", 6500.0)?,
        beta: parse(flags, "beta", f64::INFINITY)?,
        use_elb: !flags.contains_key("no-elb"),
        threads,
        route_distance: if flags.contains_key("full-route") {
            neat_repro::neat::RouteDistance::FullRoute
        } else {
            neat_repro::neat::RouteDistance::Endpoints
        },
        ..NeatConfig::default()
    };
    if flags.contains_key("resume") && !flags.contains_key("checkpoint-dir") {
        return Err("--resume requires --checkpoint-dir".into());
    }
    let control = build_control(flags)?;
    if let Some(dir) = flags.get("checkpoint-dir") {
        if mode == Mode::Base {
            return Err("--checkpoint-dir needs --mode flow or opt (incremental \
                        clustering maintains flow clusters)"
                .into());
        }
        if control.is_some() {
            return Err("budget flags (--deadline/--max-ops/--max-settled-nodes/\
                        --max-clusters/--on-overrun) are not supported with \
                        --checkpoint-dir; bound each batch by splitting into more \
                        --batches instead"
                .into());
        }
        return cluster_checkpointed(&net, &data, mode, config, policy, flags, dir)
            .map(|()| ExitCode::SUCCESS);
    }
    if flags.contains_key("trace") && mode != Mode::Base {
        // Re-run phases 1–2 with tracing to print the merge decisions.
        let (p1, _) = neat_repro::neat::phase1::form_base_clusters_with_policy(
            &net,
            &data,
            config.insert_junctions,
            policy,
        )
        .map_err(|e| e.to_string())?;
        let mut trace = Some(Vec::new());
        let _ = neat_repro::neat::phase2::form_flow_clusters_traced(
            &net,
            p1.base_clusters,
            &config,
            &mut trace,
        )
        .map_err(|e| e.to_string())?;
        println!("phase-2 merge trace:");
        for e in trace.expect("collected") {
            println!("  {e:?}");
        }
    }
    let neat = Neat::new(&net, config);
    let (result, outcome_meta, exit) = match control {
        None => {
            let result = neat
                .run_with_policy(&data, mode, policy)
                .map_err(|e| e.to_string())?;
            (result, None, ExitCode::SUCCESS)
        }
        Some((ctl, overrun_policy)) => {
            let out = neat
                .run_controlled(&data, mode, policy, &ctl)
                .map_err(|e| e.to_string())?;
            let exit = match out.interrupt {
                None => ExitCode::SUCCESS,
                Some(i) => {
                    if overrun_policy == OverrunPolicy::Fail {
                        return Err(format!("run interrupted: {} (--on-overrun fail)", i.name()));
                    }
                    println!(
                        "overrun: {} — delivered {} (requested {})",
                        i.name(),
                        out.degradation.delivered.name(),
                        out.degradation.requested.name()
                    );
                    for step in &out.degradation.steps {
                        println!("  degradation: {}", step.label());
                    }
                    ExitCode::from(EXIT_DEGRADED)
                }
            };
            let meta = outcome_json(&out);
            (out.result, Some(meta), exit)
        }
    };
    print!("{}", result.summary(&net));
    if mode != Mode::Base {
        for (i, f) in result.flow_clusters.iter().enumerate() {
            println!(
                "  flow {i}: {} segments, {:.0} m, {} trajectories",
                f.members().len(),
                f.route_length(&net),
                f.trajectory_cardinality()
            );
        }
    }
    if mode == Mode::Opt {
        for (i, c) in result.clusters.iter().enumerate() {
            println!(
                "  cluster {i}: {} flows, {} trajectories, {:.1} km",
                c.flows().len(),
                c.trajectory_cardinality(),
                c.total_route_length(&net) / 1000.0
            );
        }
    }
    if let Some(json_path) = flags.get("json") {
        // Machine-readable result: flow clusters and final clusters with
        // their routes and participating trajectories. `mode` is the
        // *delivered* mode — under a budget it may sit below the request.
        let mut doc = serde_json::json!({
            "mode": result.mode.name(),
            "fragment_count": result.fragment_count,
            "base_cluster_count": result.base_cluster_count,
            "flow_clusters": result.flow_clusters.iter().map(|f| {
                serde_json::json!({
                    "route": f.route().iter().map(|s| s.index()).collect::<Vec<_>>(),
                    "trajectories": f.participating_trajectories().iter()
                        .map(|t| t.value()).collect::<Vec<_>>(),
                    "route_length_m": f.route_length(&net),
                    "density": f.density(),
                })
            }).collect::<Vec<_>>(),
            "clusters": result.clusters.iter().map(|c| {
                serde_json::json!({
                    "flows": c.flows().len(),
                    "trajectory_cardinality": c.trajectory_cardinality(),
                    "total_route_length_m": c.total_route_length(&net),
                })
            }).collect::<Vec<_>>(),
        });
        if let Some(serde_json::Value::Object(meta_fields)) = &outcome_meta {
            if let serde_json::Value::Object(fields) = &mut doc {
                fields.extend(meta_fields.iter().cloned());
            }
        }
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        write_atomic_std(json_path.as_ref(), text.as_bytes())
            .map_err(|e| format!("cannot write json: {e}"))?;
        println!("wrote {json_path}");
    }
    if let Some(svg_path) = flags.get("svg") {
        let svg = match mode {
            Mode::Base => render::render_dataset(&net, &data),
            Mode::Flow => render::render_flow_clusters(&net, &result.flow_clusters),
            Mode::Opt => render::render_trajectory_clusters(&net, &result.clusters),
        };
        write_atomic_std(svg_path.as_ref(), svg.as_bytes())
            .map_err(|e| format!("cannot write svg: {e}"))?;
        println!("wrote {svg_path}");
    }
    Ok(exit)
}

/// Incremental, crash-safe variant of `cluster`: the dataset is split
/// into `--batches` time windows which are ingested one by one, each
/// applied batch is journaled and a durable snapshot is written every
/// `--checkpoint-every` batches (and at the end). A run killed part-way
/// restarts with `--resume`, skips the batches already acknowledged by
/// the checkpoint and produces the same clusters as an uninterrupted run.
fn cluster_checkpointed(
    net: &RoadNetwork,
    data: &Dataset,
    mode: Mode,
    config: NeatConfig,
    policy: ErrorPolicy,
    flags: &HashMap<String, String>,
    dir: &str,
) -> Result<(), String> {
    let every: usize = parse(flags, "checkpoint-every", 1)?;
    if every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }
    let batches: usize = parse(flags, "batches", 4)?;
    if batches == 0 {
        return Err("--batches must be at least 1".into());
    }
    let store = CheckpointStore::open(StdFs, dir)
        .map_err(|e| format!("cannot open checkpoint dir `{dir}`: {e}"))?;
    let mut session = if flags.contains_key("resume") {
        match IncrementalNeat::resume(net, config, &store) {
            Ok((session, report)) => {
                if config.threads > 1 && report.replayed_batches > 0 {
                    return Err(format!(
                        "--threads {} cannot be combined with --resume while `{dir}` is \
                         mid-migration: {} journaled batch(es) are still pending replay \
                         into a snapshot. Finish the replay first by re-running with \
                         --threads 1 (this writes a fresh snapshot), then resume in \
                         parallel.",
                        config.threads, report.replayed_batches
                    ));
                }
                println!(
                    "resumed from {dir}: snapshot at batch {}, {} journaled batch(es) replayed",
                    report
                        .snapshot_seq
                        .map_or_else(|| "none".to_string(), |s| s.to_string()),
                    report.replayed_batches
                );
                for (name, why) in &report.rejected_snapshots {
                    println!("  note: snapshot {name} rejected ({why}); used an older one");
                }
                if report.torn_tail_bytes > 0 {
                    println!(
                        "  note: dropped {} byte(s) of a journal append torn by the crash",
                        report.torn_tail_bytes
                    );
                }
                session
            }
            Err(CheckpointError::NoCheckpoint { .. }) => {
                println!("nothing to resume in {dir}; starting fresh");
                IncrementalNeat::new(net, config)
            }
            Err(e) => return Err(format!("cannot resume from `{dir}`: {e}")),
        }
    } else {
        IncrementalNeat::new(net, config)
    };
    let windows = data.split_windows(batches);
    let done = session.batches();
    if done > windows.len() {
        return Err(format!(
            "checkpoint in `{dir}` already covers {done} batches but the dataset \
             splits into only {}; re-run with the original --batches value",
            windows.len()
        ));
    }
    if done > 0 {
        println!("skipping {done} already-applied batch(es)");
    }
    for window in windows.iter().skip(done) {
        let seq = session.batches() + 1;
        session
            .ingest_logged(window, policy, &store)
            .map_err(|e| format!("batch {seq} failed: {e}"))?;
        if session.batches() % every == 0 {
            session
                .save_checkpoint(&store)
                .map_err(|e| format!("checkpoint after batch {seq} failed: {e}"))?;
        }
    }
    session
        .save_checkpoint(&store)
        .map_err(|e| format!("final checkpoint failed: {e}"))?;
    let flows = session.flow_clusters();
    let clusters = session.current_clusters().map_err(|e| e.to_string())?;
    let r = session.resilience();
    println!(
        "{} batch(es) clustered incrementally: {} flow clusters, {} trajectory clusters",
        session.batches(),
        flows.len(),
        clusters.len()
    );
    if r.skipped > 0 || r.repaired > 0 {
        println!(
            "  resilience: {} skipped, {} repaired trajectories",
            r.skipped, r.repaired
        );
    }
    for (i, f) in flows.iter().enumerate() {
        println!(
            "  flow {i}: {} segments, {:.0} m, {} trajectories",
            f.members().len(),
            f.route_length(net),
            f.trajectory_cardinality()
        );
    }
    if mode == Mode::Opt {
        for (i, c) in clusters.iter().enumerate() {
            println!(
                "  cluster {i}: {} flows, {} trajectories, {:.1} km",
                c.flows().len(),
                c.trajectory_cardinality(),
                c.total_route_length(net) / 1000.0
            );
        }
    }
    if let Some(json_path) = flags.get("json") {
        let doc = serde_json::json!({
            "mode": mode.name(),
            "incremental": true,
            "batches": session.batches(),
            "flow_clusters": flows.iter().map(|f| {
                serde_json::json!({
                    "route": f.route().iter().map(|s| s.index()).collect::<Vec<_>>(),
                    "trajectories": f.participating_trajectories().iter()
                        .map(|t| t.value()).collect::<Vec<_>>(),
                    "route_length_m": f.route_length(net),
                    "density": f.density(),
                })
            }).collect::<Vec<_>>(),
            "clusters": clusters.iter().map(|c| {
                serde_json::json!({
                    "flows": c.flows().len(),
                    "trajectory_cardinality": c.trajectory_cardinality(),
                    "total_route_length_m": c.total_route_length(net),
                })
            }).collect::<Vec<_>>(),
        });
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        write_atomic_std(json_path.as_ref(), text.as_bytes())
            .map_err(|e| format!("cannot write json: {e}"))?;
        println!("wrote {json_path}");
    }
    if let Some(svg_path) = flags.get("svg") {
        let svg = match mode {
            Mode::Flow => render::render_flow_clusters(net, flows),
            _ => render::render_trajectory_clusters(net, &clusters),
        };
        write_atomic_std(svg_path.as_ref(), svg.as_bytes())
            .map_err(|e| format!("cannot write svg: {e}"))?;
        println!("wrote {svg_path}");
    }
    Ok(())
}

fn stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let net = load_network(required(flags, "network")?)?;
    let s = net.stats();
    println!(
        "network: {} junctions, {} segments, {:.1} km total, avg segment {:.1} m, \
         degree avg {:.2} / max {}",
        s.junctions,
        s.segments,
        s.total_length_km,
        s.avg_segment_length_m,
        s.avg_degree,
        s.max_degree
    );
    if let Some(path) = flags.get("dataset") {
        let data = load_dataset(path)?;
        let d = data.stats();
        println!(
            "dataset: {} trajectories, {} points, {:.1} points/trajectory, \
             avg duration {:.0} s",
            d.trajectories, d.points, d.avg_points_per_trajectory, d.avg_duration_s
        );
    }
    Ok(())
}
