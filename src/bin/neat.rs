//! `neat` — command-line interface to the NEAT reproduction.
//!
//! Subcommands:
//!
//! ```text
//! neat gen-network --map atl|sj|mia | --grid RxC   [--seed N] --out net.txt
//! neat simulate    --network net.txt --objects N   [--seed N] [--hotspots H]
//!                  [--destinations D] [--period S]
//!                  [--faults dropout=0.05,dup=0.02,...] --out data.csv
//! neat cluster     --network net.txt --dataset data.csv
//!                  [--mode base|flow|opt] [--min-card N] [--epsilon M]
//!                  [--weights q,k,v] [--beta B] [--no-elb] [--full-route]
//!                  [--on-error fail|skip|repair] [--quarantine FILE]
//!                  [--trace] [--svg out.svg] [--json out.json]
//! neat stats       --network net.txt [--dataset data.csv]
//! ```
//!
//! Everything is deterministic under `--seed` (default 42).

use neat_repro::cli::{parse, parse_flags, required};
use neat_repro::mobisim::faults::{inject_faults, FaultConfig};
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{ErrorPolicy, Mode, Neat, NeatConfig, Weights};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig, MapPreset};
use neat_repro::rnet::{io as netio, RoadNetwork};
use neat_repro::traj::sanitize::{write_quarantine, SanitizeOutput, Sanitizer};
use neat_repro::traj::{io as trajio, Dataset};
use neat_repro::viz::render;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  neat gen-network (--map atl|sj|mia | --grid RxC) [--seed N] --out FILE
  neat simulate    --network FILE --objects N [--seed N] [--hotspots H]
                   [--destinations D] [--period S]
                   [--faults dropout=R,dup=R,reorder=R,teleport=R,truncate=R]
                   --out FILE
  neat cluster     --network FILE --dataset FILE [--mode base|flow|opt]
                   [--min-card N] [--epsilon M] [--weights q,k,v]
                   [--beta B] [--no-elb] [--full-route] [--trace]
                   [--on-error fail|skip|repair] [--quarantine FILE]
                   [--threads N] [--svg FILE] [--json FILE]
  neat stats       --network FILE [--dataset FILE]";

fn load_network(path: &str) -> Result<RoadNetwork, String> {
    let f = File::open(path).map_err(|e| format!("cannot open network `{path}`: {e}"))?;
    netio::read_network(BufReader::new(f)).map_err(|e| format!("cannot read network: {e}"))
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let f = File::open(path).map_err(|e| format!("cannot open dataset `{path}`: {e}"))?;
    trajio::read_dataset(path, BufReader::new(f)).map_err(|e| format!("cannot read dataset: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or("no subcommand given")?;
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "gen-network" => gen_network(&flags),
        "simulate" => simulate(&flags),
        "cluster" => cluster(&flags),
        "stats" => stats(&flags),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn gen_network(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = parse(flags, "seed", 42)?;
    let net = match (flags.get("map"), flags.get("grid")) {
        (Some(map), None) => {
            let preset = match map.to_lowercase().as_str() {
                "atl" | "atlanta" => MapPreset::Atlanta,
                "sj" | "sanjose" | "san-jose" => MapPreset::SanJose,
                "mia" | "miami" => MapPreset::Miami,
                other => return Err(format!("unknown map `{other}` (atl|sj|mia)")),
            };
            preset.generate(seed)
        }
        (None, Some(grid)) => {
            let (r, c) = grid
                .split_once(['x', 'X'])
                .ok_or_else(|| format!("--grid expects RxC, got `{grid}`"))?;
            let rows: usize = r.parse().map_err(|_| format!("bad rows `{r}`"))?;
            let cols: usize = c.parse().map_err(|_| format!("bad cols `{c}`"))?;
            generate_grid_network(&GridNetworkConfig::small_test(rows, cols), seed)
        }
        _ => return Err("give exactly one of --map or --grid".into()),
    };
    let out = required(flags, "out")?;
    let f = File::create(out).map_err(|e| format!("cannot create `{out}`: {e}"))?;
    netio::write_network(&net, BufWriter::new(f)).map_err(|e| e.to_string())?;
    let s = net.stats();
    println!(
        "wrote {out}: {} junctions, {} segments, {:.1} km",
        s.junctions, s.segments, s.total_length_km
    );
    Ok(())
}

fn simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let net = load_network(required(flags, "network")?)?;
    let config = SimConfig {
        num_objects: parse(flags, "objects", 100)?,
        num_hotspots: parse(flags, "hotspots", 2)?,
        num_destinations: parse(flags, "destinations", 3)?,
        sample_period_s: parse(flags, "period", 3.0)?,
        ..SimConfig::default()
    };
    let seed: u64 = parse(flags, "seed", 42)?;
    let data = generate_dataset(&net, &config, seed, "cli");
    let out = required(flags, "out")?;
    let f = File::create(out).map_err(|e| format!("cannot create `{out}`: {e}"))?;
    match flags.get("faults") {
        None => {
            trajio::write_dataset(&data, BufWriter::new(f)).map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: {} trajectories, {} points",
                data.len(),
                data.total_points()
            );
        }
        Some(spec) => {
            let fault_config = FaultConfig::parse(spec)?;
            let (fixes, log) = inject_faults(&data, &fault_config, seed);
            trajio::write_raw_fixes(data.name(), &fixes, BufWriter::new(f))
                .map_err(|e| e.to_string())?;
            println!(
                "wrote {out}: {} trajectories, {} fixes (faulted)",
                data.len(),
                fixes.len()
            );
            println!("faults: {}", log.digest());
        }
    }
    Ok(())
}

/// Loads the dataset for `cluster` under the active policy: `fail` uses
/// the legacy strict reader path; `skip`/`repair` read leniently and
/// sanitize, reporting what was done.
fn load_sanitized(path: &str, policy: ErrorPolicy) -> Result<SanitizeOutput, String> {
    let f = File::open(path).map_err(|e| format!("cannot open dataset `{path}`: {e}"))?;
    Sanitizer::with_policy(policy)
        .read(path, BufReader::new(f))
        .map_err(|e| format!("cannot read dataset: {e}"))
}

fn cluster(flags: &HashMap<String, String>) -> Result<(), String> {
    let net = load_network(required(flags, "network")?)?;
    let policy: ErrorPolicy = parse(flags, "on-error", ErrorPolicy::Strict)?;
    let sanitized = load_sanitized(required(flags, "dataset")?, policy)?;
    if !sanitized.summary.is_clean() {
        println!("sanitize: {}", sanitized.summary.digest());
    }
    if let Some(qpath) = flags.get("quarantine") {
        let qf = File::create(qpath).map_err(|e| format!("cannot create `{qpath}`: {e}"))?;
        write_quarantine(&sanitized.quarantined, BufWriter::new(qf)).map_err(|e| e.to_string())?;
        println!(
            "wrote {qpath}: {} quarantined trajectories",
            sanitized.quarantined.len()
        );
    }
    let data = sanitized.dataset;
    let mode = match flags.get("mode").map(String::as_str).unwrap_or("opt") {
        "base" => Mode::Base,
        "flow" => Mode::Flow,
        "opt" => Mode::Opt,
        other => return Err(format!("unknown mode `{other}` (base|flow|opt)")),
    };
    let weights = match flags.get("weights") {
        None => Weights::balanced(),
        Some(spec) => {
            let parts: Vec<&str> = spec.split(',').collect();
            if parts.len() != 3 {
                return Err(format!("--weights expects q,k,v — got `{spec}`"));
            }
            let p = |s: &str| -> Result<f64, String> {
                s.parse().map_err(|_| format!("bad weight `{s}`"))
            };
            Weights::new(p(parts[0])?, p(parts[1])?, p(parts[2])?).map_err(|e| e.to_string())?
        }
    };
    let config = NeatConfig {
        weights,
        min_card: parse(flags, "min-card", 5)?,
        epsilon: parse(flags, "epsilon", 6500.0)?,
        beta: parse(flags, "beta", f64::INFINITY)?,
        use_elb: !flags.contains_key("no-elb"),
        phase1_threads: parse(flags, "threads", 1)?,
        route_distance: if flags.contains_key("full-route") {
            neat_repro::neat::RouteDistance::FullRoute
        } else {
            neat_repro::neat::RouteDistance::Endpoints
        },
        ..NeatConfig::default()
    };
    if flags.contains_key("trace") && mode != Mode::Base {
        // Re-run phases 1–2 with tracing to print the merge decisions.
        let (p1, _) = neat_repro::neat::phase1::form_base_clusters_with_policy(
            &net,
            &data,
            config.insert_junctions,
            policy,
        )
        .map_err(|e| e.to_string())?;
        let mut trace = Some(Vec::new());
        let _ = neat_repro::neat::phase2::form_flow_clusters_traced(
            &net,
            p1.base_clusters,
            &config,
            &mut trace,
        )
        .map_err(|e| e.to_string())?;
        println!("phase-2 merge trace:");
        for e in trace.expect("collected") {
            println!("  {e:?}");
        }
    }
    let result = Neat::new(&net, config)
        .run_with_policy(&data, mode, policy)
        .map_err(|e| e.to_string())?;
    print!("{}", result.summary(&net));
    if mode != Mode::Base {
        for (i, f) in result.flow_clusters.iter().enumerate() {
            println!(
                "  flow {i}: {} segments, {:.0} m, {} trajectories",
                f.members().len(),
                f.route_length(&net),
                f.trajectory_cardinality()
            );
        }
    }
    if mode == Mode::Opt {
        for (i, c) in result.clusters.iter().enumerate() {
            println!(
                "  cluster {i}: {} flows, {} trajectories, {:.1} km",
                c.flows().len(),
                c.trajectory_cardinality(),
                c.total_route_length(&net) / 1000.0
            );
        }
    }
    if let Some(json_path) = flags.get("json") {
        // Machine-readable result: flow clusters and final clusters with
        // their routes and participating trajectories.
        let doc = serde_json::json!({
            "mode": mode.name(),
            "fragment_count": result.fragment_count,
            "base_cluster_count": result.base_cluster_count,
            "flow_clusters": result.flow_clusters.iter().map(|f| {
                serde_json::json!({
                    "route": f.route().iter().map(|s| s.index()).collect::<Vec<_>>(),
                    "trajectories": f.participating_trajectories().iter()
                        .map(|t| t.value()).collect::<Vec<_>>(),
                    "route_length_m": f.route_length(&net),
                    "density": f.density(),
                })
            }).collect::<Vec<_>>(),
            "clusters": result.clusters.iter().map(|c| {
                serde_json::json!({
                    "flows": c.flows().len(),
                    "trajectory_cardinality": c.trajectory_cardinality(),
                    "total_route_length_m": c.total_route_length(&net),
                })
            }).collect::<Vec<_>>(),
        });
        let text = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(json_path, text).map_err(|e| format!("cannot write json: {e}"))?;
        println!("wrote {json_path}");
    }
    if let Some(svg_path) = flags.get("svg") {
        let svg = match mode {
            Mode::Base => render::render_dataset(&net, &data),
            Mode::Flow => render::render_flow_clusters(&net, &result.flow_clusters),
            Mode::Opt => render::render_trajectory_clusters(&net, &result.clusters),
        };
        std::fs::write(svg_path, svg).map_err(|e| format!("cannot write svg: {e}"))?;
        println!("wrote {svg_path}");
    }
    Ok(())
}

fn stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let net = load_network(required(flags, "network")?)?;
    let s = net.stats();
    println!(
        "network: {} junctions, {} segments, {:.1} km total, avg segment {:.1} m, \
         degree avg {:.2} / max {}",
        s.junctions,
        s.segments,
        s.total_length_km,
        s.avg_segment_length_m,
        s.avg_degree,
        s.max_degree
    );
    if let Some(path) = flags.get("dataset") {
        let data = load_dataset(path)?;
        let d = data.stats();
        println!(
            "dataset: {} trajectories, {} points, {:.1} points/trajectory, \
             avg duration {:.0} s",
            d.trajectories, d.points, d.avg_points_per_trajectory, d.avg_duration_s
        );
    }
    Ok(())
}
