//! `neatd` — the supervised NEAT streaming clustering daemon.
//!
//! A standalone entry point for the service behind `neat serve`: watch
//! a spool directory for trajectory batches (handed over by atomic
//! rename), cluster them incrementally under per-batch budgets,
//! journal and checkpoint every applied batch, and answer `kill -9` at
//! any instant with a byte-identical resume on restart. See
//! `neat_repro::serve` for the flag reference and exit-code scheme.

use neat_repro::cli::parse_flags;
use neat_repro::serve::{serve, SERVE_USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{SERVE_USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = parse_flags(&args).and_then(|flags| serve(&flags));
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{SERVE_USAGE}");
            ExitCode::FAILURE
        }
    }
}
