//! NEAT vs the TraClus baseline on the same traffic, with SVG output.
//!
//! Runs both algorithms on a mid-size dataset, prints the quality and
//! runtime comparison of Section IV-C, and writes `compare_neat.svg` /
//! `compare_traclus.svg` next to the binary for visual inspection.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use neat_repro::mobisim::noise::to_raw_traces;
use neat_repro::mobisim::presets::DatasetPreset;
use neat_repro::neat::{Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::MapPreset;
use neat_repro::traclus::{TraClus, TraClusConfig};
use neat_repro::traj::{Dataset, Trajectory};
use neat_repro::viz::render;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = DatasetPreset::new(MapPreset::Atlanta, 200);
    let (net, data) = preset.generate(42);
    println!(
        "dataset: {} trips, {} points",
        data.len(),
        data.total_points()
    );

    // NEAT consumes the map-matched signal.
    let t0 = Instant::now();
    let neat_result = Neat::new(
        &net,
        NeatConfig {
            min_card: 5,
            ..NeatConfig::default()
        },
    )
    .run(&data, Mode::Opt)?;
    let neat_time = t0.elapsed();
    println!(
        "NEAT: {} flows -> {} clusters in {:.3}s",
        neat_result.flow_clusters.len(),
        neat_result.clusters.len(),
        neat_time.as_secs_f64()
    );

    // TraClus consumes the raw GPS signal (8 m noise), as in the paper.
    let raw_traces = to_raw_traces(&data, 8.0, 1)?;
    let mut raw = Dataset::new("raw");
    for (tr, trace) in data.trajectories().iter().zip(&raw_traces) {
        let pts = tr
            .points()
            .iter()
            .zip(trace)
            .map(|(p, s)| neat_repro::rnet::RoadLocation::new(p.segment, s.position, s.time))
            .collect();
        raw.push(Trajectory::new(tr.id(), pts)?);
    }
    let t0 = Instant::now();
    let tc_result = TraClus::new(TraClusConfig {
        epsilon: 10.0,
        min_lns: 5,
        ..TraClusConfig::default()
    })
    .run(&raw);
    let tc_time = t0.elapsed();
    println!(
        "TraClus: {} line segments -> {} clusters ({} noise) in {:.3}s",
        tc_result.total_segments,
        tc_result.clusters.len(),
        tc_result.noise,
        tc_time.as_secs_f64()
    );
    println!(
        "speedup: NEAT is {:.0}x faster",
        tc_time.as_secs_f64() / neat_time.as_secs_f64().max(1e-9)
    );

    std::fs::write(
        "compare_neat.svg",
        render::render_trajectory_clusters(&net, &neat_result.clusters),
    )?;
    std::fs::write(
        "compare_traclus.svg",
        render::render_traclus(&net, &tc_result),
    )?;
    println!("wrote compare_neat.svg and compare_traclus.svg");
    Ok(())
}
