//! Incremental (online) clustering — Section III-C's motivating use case:
//! trajectory batches arrive over time; Phases 1–2 run per batch and the
//! density-based refinement keeps the global picture compact.
//!
//! ```sh
//! cargo run --release --example online_clustering
//! ```

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{IncrementalNeat, Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::traj::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = generate_grid_network(&GridNetworkConfig::small_test(18, 18), 4);
    let config = NeatConfig {
        min_card: 5,
        epsilon: 500.0,
        ..NeatConfig::default()
    };

    // Six five-minute batches of arriving traffic (distinct seeds, same
    // hotspot structure per batch).
    let batches: Vec<Dataset> = (0..6)
        .map(|i| {
            generate_dataset(
                &net,
                &SimConfig {
                    num_objects: 40,
                    first_trajectory_id: i * 1000,
                    ..SimConfig::default()
                },
                100 + i,
                format!("batch{i}"),
            )
        })
        .collect();

    let mut online = IncrementalNeat::new(&net, config);
    for batch in &batches {
        let clusters = online.ingest(batch)?;
        println!(
            "after {} batches: {:>3} retained flows -> {:>2} clusters \
             ({} phase-3 pairs considered, {} ELB skips)",
            online.batches(),
            online.flow_clusters().len(),
            clusters.len(),
            online.last_refinement_stats().pairs_considered,
            online.last_refinement_stats().elb_skips,
        );
    }

    // Sanity: one-shot clustering over the concatenation for comparison.
    let mut all = Dataset::new("all");
    for b in batches {
        all.extend(b);
    }
    let oneshot = Neat::new(&net, config).run(&all, Mode::Opt)?;
    println!(
        "one-shot over all batches: {} flows -> {} clusters",
        oneshot.flow_clusters.len(),
        oneshot.clusters.len()
    );
    println!(
        "(incremental keeps per-batch flows separate, so it retains more, \
         finer-grained flows than the one-shot run — the trade-off the \
         paper accepts for online operation)"
    );
    Ok(())
}
