//! Crash-safe incremental clustering — what `--checkpoint-dir`/`--resume`
//! do under the hood: batches are journaled as they are applied, the
//! clustering state is snapshotted durably, and a process killed at any
//! instant resumes with byte-identical clusters.
//!
//! The "crash" here is simulated hermetically: the checkpoint store
//! lives on an in-memory filesystem whose clones share storage, so
//! dropping one handle mid-run and reopening another is exactly a
//! `kill -9` followed by a restart.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use neat_repro::durability::MemFs;
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{CheckpointStore, ErrorPolicy, IncrementalNeat, NeatConfig};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::traj::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = generate_grid_network(&GridNetworkConfig::small_test(12, 12), 4);
    let config = NeatConfig {
        min_card: 4,
        epsilon: 500.0,
        ..NeatConfig::default()
    };

    // One day of traffic split into six batches.
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: 120,
            ..SimConfig::default()
        },
        42,
        "day",
    );
    let batches: Vec<Dataset> = data.split_windows(6);

    // The "disk": clones of a MemFs share the same byte map, so the
    // bytes survive when a handle is dropped. Swap in `StdFs` and a real
    // directory for actual on-disk checkpoints.
    let disk = MemFs::new();

    // --- First life: apply three of the six batches, then "crash". ----
    {
        let store = CheckpointStore::open(disk.clone(), "/ckpt")?;
        let mut session = IncrementalNeat::new(&net, config);
        for batch in &batches[..3] {
            session.ingest_logged(batch, ErrorPolicy::Strict, &store)?;
            if session.batches() % 2 == 0 {
                session.save_checkpoint(&store)?;
            }
        }
        println!(
            "first life: applied {} batches ({} retained flows), then the process dies",
            session.batches(),
            session.flow_clusters().len()
        );
        // `session` and `store` drop here — batch 3 was applied and
        // journaled, but only batch 2's snapshot was written. That is
        // fine: the journal replays the difference.
    }

    // --- Second life: resume from the surviving bytes and finish. -----
    let store = CheckpointStore::open(disk.clone(), "/ckpt")?;
    let (mut session, report) = IncrementalNeat::resume(&net, config, &store)?;
    println!(
        "resumed: snapshot at batch {:?}, {} journaled batch(es) replayed -> at batch {}",
        report.snapshot_seq,
        report.replayed_batches,
        session.batches()
    );
    for batch in batches.iter().skip(session.batches()) {
        session.ingest_logged(batch, ErrorPolicy::Strict, &store)?;
    }
    session.save_checkpoint(&store)?;
    let resumed_clusters = session.current_clusters()?;

    // --- Referee: an uninterrupted run over the same batches. ---------
    let mut straight = IncrementalNeat::new(&net, config);
    for batch in &batches {
        straight.ingest_with_policy(batch, ErrorPolicy::Strict)?;
    }
    let straight_clusters = straight.current_clusters()?;

    println!(
        "resumed run:   {} flows -> {} clusters",
        session.flow_clusters().len(),
        resumed_clusters.len()
    );
    println!(
        "straight run:  {} flows -> {} clusters",
        straight.flow_clusters().len(),
        straight_clusters.len()
    );
    assert_eq!(
        format!("{resumed_clusters:#?}"),
        format!("{straight_clusters:#?}"),
        "crash + resume must be observationally identical"
    );
    println!("identical down to the Debug representation — the crash left no trace");
    Ok(())
}
