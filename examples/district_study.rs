//! District study: clip a city-scale map to one district, re-cluster the
//! traffic that stays inside it, and analyse direction balance — the
//! workflow a transportation planner would run on a corridor of interest.
//!
//! ```sh
//! cargo run --release --example district_study
//! ```

use neat_repro::mobisim::presets::DatasetPreset;
use neat_repro::neat::analysis::direction_split;
use neat_repro::neat::{Mode, Neat, NeatConfig};
use neat_repro::rnet::geometry::Bbox;
use neat_repro::rnet::netgen::MapPreset;
use neat_repro::rnet::SegmentId;
use neat_repro::traj::{Dataset, Trajectory};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = DatasetPreset::new(MapPreset::Atlanta, 400);
    let (net, data) = preset.generate(42);
    let bb = net.bbox()?;
    println!(
        "city: {} segments over {:.1} x {:.1} km; {} trips",
        net.segment_count(),
        bb.width() / 1000.0,
        bb.height() / 1000.0,
        data.len()
    );

    // Clip to the central district (middle third of the map).
    let district = Bbox {
        min: bb.min.lerp(bb.max, 1.0 / 3.0),
        max: bb.min.lerp(bb.max, 2.0 / 3.0),
    };
    let (local_net, segment_map) = net.clip(district);
    println!(
        "district: {} junctions, {} segments",
        local_net.node_count(),
        local_net.segment_count()
    );

    // Remap the recorded traffic onto the district network: keep maximal
    // runs of samples whose segment survived the clip.
    let old_to_new: HashMap<SegmentId, SegmentId> = segment_map
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, SegmentId::new(new)))
        .collect();
    let mut local = Dataset::new("district");
    let mut next_id = 0u64;
    for tr in data.trajectories() {
        let mut run = Vec::new();
        for p in tr.points() {
            match old_to_new.get(&p.segment) {
                Some(&new_sid) => run.push(neat_repro::rnet::RoadLocation::new(
                    new_sid, p.position, p.time,
                )),
                None => {
                    if run.len() >= 2 {
                        local.push(Trajectory::new(
                            neat_repro::traj::TrajectoryId::new(next_id),
                            std::mem::take(&mut run),
                        )?);
                        next_id += 1;
                    } else {
                        run.clear();
                    }
                }
            }
        }
        if run.len() >= 2 {
            local.push(Trajectory::new(
                neat_repro::traj::TrajectoryId::new(next_id),
                run,
            )?);
            next_id += 1;
        }
    }
    println!(
        "district traffic: {} sub-trips, {} points",
        local.len(),
        local.total_points()
    );

    // Cluster the district and analyse its busiest corridors.
    let config = NeatConfig {
        min_card: 5,
        epsilon: 1500.0,
        ..NeatConfig::default()
    };
    let result = Neat::new(&local_net, config).run(&local, Mode::Base)?;
    println!("\nbusiest district segments (direction-split):");
    for cluster in result.base_clusters.iter().take(5) {
        let split = direction_split(&local_net, cluster);
        println!(
            "  {}: {} fragments, {:.0}% forward ({} fwd / {} bwd / {} flat)",
            cluster.segment(),
            cluster.density(),
            100.0 * split.forward_fraction(),
            split.forward,
            split.backward,
            split.undetermined
        );
    }

    let flows = Neat::new(&local_net, config).run(&local, Mode::Opt)?;
    print!("\n{}", flows.summary(&local_net));
    Ok(())
}
