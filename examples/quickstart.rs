//! Quickstart: simulate traffic on a small road network and cluster it
//! with all three NEAT versions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 15x15 jittered-grid road network (~2 km across).
    let net = generate_grid_network(&GridNetworkConfig::small_test(15, 15), 42);
    let stats = net.stats();
    println!(
        "network: {} junctions, {} segments, {:.1} km",
        stats.junctions, stats.segments, stats.total_length_km
    );

    // 2. 150 objects travelling from 2 hotspots to 3 destinations.
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: 150,
            ..SimConfig::default()
        },
        7,
        "quickstart",
    );
    println!(
        "dataset: {} trajectories, {} points",
        data.len(),
        data.total_points()
    );

    // 3. Cluster with each NEAT version.
    let config = NeatConfig {
        min_card: 5,
        epsilon: 400.0,
        ..NeatConfig::default()
    };
    let neat = Neat::new(&net, config);

    let base = neat.run(&data, Mode::Base)?;
    println!(
        "base-NEAT: {} t-fragments -> {} base clusters (dense-core density {})",
        base.fragment_count,
        base.base_clusters.len(),
        base.base_clusters.first().map_or(0, |c| c.density()),
    );

    let flow = neat.run(&data, Mode::Flow)?;
    println!(
        "flow-NEAT: {} flow clusters (minCard={}), {} discarded",
        flow.flow_clusters.len(),
        neat.config().min_card,
        flow.discarded_flows
    );
    for (i, f) in flow.flow_clusters.iter().take(5).enumerate() {
        println!(
            "  flow {}: {} segments, {:.0} m route, {} trajectories",
            i,
            f.members().len(),
            f.route_length(&net),
            f.trajectory_cardinality()
        );
    }

    let opt = neat.run(&data, Mode::Opt)?;
    println!(
        "opt-NEAT: {} final clusters (eps={} m) in {:.1} ms",
        opt.clusters.len(),
        neat.config().epsilon,
        opt.timings.total().as_secs_f64() * 1000.0
    );
    for (i, c) in opt.clusters.iter().enumerate() {
        println!(
            "  cluster {}: {} flows, {} trajectories, {:.1} km of routes",
            i,
            c.flows().len(),
            c.trajectory_cardinality(),
            c.total_route_length(&net) / 1000.0
        );
    }
    Ok(())
}
