//! End-to-end pipeline on raw GPS data: simulate → add noise → map-match
//! (SLAMM-style look-ahead) → NEAT.
//!
//! The paper preprocesses coordinate time series with map matching before
//! Phase 1 (Section III-A1); this example measures how well the matcher
//! recovers the ground-truth segments and shows that the clustering
//! result is essentially unchanged.
//!
//! ```sh
//! cargo run --release --example noisy_pipeline
//! ```

use neat_repro::mapmatch::{MapMatcher, MatchConfig};
use neat_repro::mobisim::noise::to_raw_traces;
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = generate_grid_network(&GridNetworkConfig::small_test(20, 20), 3);
    let truth = generate_dataset(
        &net,
        &SimConfig {
            num_objects: 100,
            ..SimConfig::default()
        },
        5,
        "truth",
    );

    // Degrade to raw GPS with 8 m noise, then match back onto the network.
    let raw = to_raw_traces(&truth, 8.0, 99)?;
    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let (matched, skipped) = matcher.match_traces(&raw, "matched")?;
    println!(
        "matched {} traces ({} skipped) through {} raw samples",
        matched.len(),
        skipped,
        raw.iter().map(Vec::len).sum::<usize>()
    );

    // Segment-level accuracy vs ground truth.
    let mut correct = 0usize;
    let mut total = 0usize;
    for (t, m) in truth.trajectories().iter().zip(matched.trajectories()) {
        for (tp, mp) in t.points().iter().zip(m.points()) {
            total += 1;
            if tp.segment == mp.segment {
                correct += 1;
            }
        }
    }
    println!(
        "map-matching accuracy: {:.1}% of {} samples on the correct segment",
        100.0 * correct as f64 / total as f64,
        total
    );

    // Cluster both and compare.
    let config = NeatConfig {
        min_card: 5,
        epsilon: 400.0,
        ..NeatConfig::default()
    };
    let neat = Neat::new(&net, config);
    let on_truth = neat.run(&truth, Mode::Opt)?;
    let on_matched = neat.run(&matched, Mode::Opt)?;
    println!(
        "NEAT on ground truth: {} flows -> {} clusters",
        on_truth.flow_clusters.len(),
        on_truth.clusters.len()
    );
    println!(
        "NEAT on matched GPS:  {} flows -> {} clusters",
        on_matched.flow_clusters.len(),
        on_matched.clusters.len()
    );
    Ok(())
}
