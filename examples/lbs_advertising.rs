//! Location-based advertising — the paper's second motivating application
//! (Section I): a local store wants to advertise to mobile devices
//! travelling the major traffic flows passing near it.
//!
//! The example clusters the traffic, then, for a handful of candidate
//! store sites, reports which flows pass within walking distance and how
//! many distinct potential customers they carry.
//!
//! ```sh
//! cargo run --release --example lbs_advertising
//! ```

use neat_repro::mobisim::presets::DatasetPreset;
use neat_repro::neat::{FlowIndex, Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::MapPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = DatasetPreset::new(MapPreset::SanJose, 300);
    let (net, data) = preset.generate(11);
    println!(
        "traffic sample: {} trips, {} points on {}",
        data.len(),
        data.total_points(),
        preset.label()
    );

    let config = NeatConfig {
        min_card: 10,
        ..NeatConfig::default()
    };
    let result = Neat::new(&net, config).run(&data, Mode::Flow)?;
    println!(
        "{} major traffic flows discovered",
        result.flow_clusters.len()
    );

    // Candidate store sites: two on busy corridors (a junction midway
    // along the two highest-ridership flows) and one in a quiet corner of
    // the map for contrast.
    let mut ranked: Vec<_> = result.flow_clusters.iter().collect();
    ranked.sort_by_key(|f| std::cmp::Reverse(f.trajectory_cardinality()));
    let mid_of = |f: &neat_repro::neat::FlowCluster| {
        let chain = f.node_chain();
        net.position(chain[chain.len() / 2])
    };
    let bbox = net.bbox()?;
    let sites = [
        ("main-corridor cafe", mid_of(ranked[0])),
        (
            "second-corridor fuel stop",
            mid_of(ranked.get(1).copied().unwrap_or(ranked[0])),
        ),
        ("remote corner store", bbox.min.lerp(bbox.max, 0.02)),
    ];
    const WALKING_DISTANCE_M: f64 = 400.0;

    let index = FlowIndex::build(&net, &result.flow_clusters);
    for (name, site) in sites {
        let flows_nearby = index.flows_near(&net, site, WALKING_DISTANCE_M).len();
        let reach = index.reach_near(&net, &result.flow_clusters, site, WALKING_DISTANCE_M);
        println!(
            "site `{name}` at {site}: {flows_nearby} flows within {WALKING_DISTANCE_M} m, \
             advertising reach ~{reach} travellers"
        );
    }
    Ok(())
}
