//! Public transit planning — the paper's first motivating application
//! (Section I): find the road-network routes with dense *and continuous*
//! traffic, which are the candidates for bus/rail lines.
//!
//! The example clusters commuter traffic on the synthetic Atlanta map,
//! ranks flow clusters by ridership (trajectory cardinality), and shows
//! how the selectivity weights change the discovered lines: the
//! density-only weighting finds where traffic is concentrated, the
//! speed-only weighting finds the fastest corridors.
//!
//! ```sh
//! cargo run --release --example transit_planning
//! ```

use neat_repro::mobisim::presets::DatasetPreset;
use neat_repro::neat::{Mode, Neat, NeatConfig, Weights};
use neat_repro::rnet::netgen::MapPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let preset = DatasetPreset::new(MapPreset::Atlanta, 300);
    let (net, data) = preset.generate(42);
    println!(
        "commuter dataset: {} trips, {} GPS points on {} ({} segments)",
        data.len(),
        data.total_points(),
        preset.label(),
        net.segment_count()
    );

    for (name, weights) in [
        ("balanced", Weights::balanced()),
        (
            "traffic monitoring (flow+density)",
            Weights::traffic_monitoring(),
        ),
        ("density only", Weights::density_only()),
        ("speed only", Weights::speed_only()),
    ] {
        let config = NeatConfig {
            weights,
            min_card: 10,
            ..NeatConfig::default()
        };
        let result = Neat::new(&net, config).run(&data, Mode::Flow)?;

        // Rank candidate transit lines by ridership.
        let mut lines: Vec<_> = result.flow_clusters.iter().collect();
        lines.sort_by(|a, b| {
            b.trajectory_cardinality()
                .cmp(&a.trajectory_cardinality())
                .then_with(|| b.route_length(&net).total_cmp(&a.route_length(&net)))
        });
        println!("\nweighting: {name} -> {} candidate lines", lines.len());
        for (i, f) in lines.iter().take(3).enumerate() {
            let avg_speed: f64 = f
                .route()
                .iter()
                .filter_map(|&s| net.segment(s).ok())
                .map(|s| s.speed_limit)
                .sum::<f64>()
                / f.members().len().max(1) as f64;
            println!(
                "  line {}: {:>5.1} km, {:>3} riders, {} stops (junctions), avg limit {:.0} km/h",
                i + 1,
                f.route_length(&net) / 1000.0,
                f.trajectory_cardinality(),
                f.node_chain().len(),
                avg_speed * 3.6
            );
        }
    }
    Ok(())
}
