//! Offline stand-in for `crossbeam`: the `thread::scope` subset this
//! workspace uses, implemented over `std::thread::scope` (stable since
//! Rust 1.63, which makes the original dependency unnecessary here).

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention:
    //! the spawn closure receives the scope, and `scope` returns a
    //! `Result` capturing panics from the closure body.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Scope handle passed to [`scope`] and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a scoped thread; joining returns the closure's value or
    /// the panic payload.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope (crossbeam convention), so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before return. `Err` carries the panic
    /// payload if `f` itself panics (panics of unjoined spawned threads
    /// propagate through the implicit join, as in crossbeam).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope(s)))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn body_panic_is_captured() {
        let r = crate::thread::scope(|_| panic!("boom"));
        assert!(r.is_err());
    }
}
