//! Offline stand-in for `serde_derive`.
//!
//! Nothing in this workspace serialises through the `serde` data model —
//! the only JSON produced is built explicitly with the vendored
//! `serde_json::json!` macro — so the derives only need to *parse*:
//! they accept `#[derive(Serialize, Deserialize)]` (including `#[serde]`
//! helper attributes) and expand to nothing. Types stay annotated, so a
//! future switch back to the real crates is a one-line Cargo change.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
