//! Offline stand-in for `criterion`.
//!
//! Keeps the API surface the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box`, `criterion_group!`, `criterion_main!` — and
//! reports median wall-clock time per iteration. No statistics engine,
//! no HTML reports, no CLI filtering: `cargo bench` runs every function
//! and prints one line each.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched setup output is sized; the stand-in treats all variants
/// identically (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn with_samples(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine`, one sample per call, keeping each return value
    /// opaque to the optimizer.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, unmeasured.
        black_box(routine());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::with_samples(self.sample_size);
        f(&mut bencher);
        match bencher.median() {
            Some(t) => println!(
                "{}/{}: median {:?} over {} samples",
                self.name,
                id,
                t,
                bencher.samples.len()
            ),
            None => println!("{}/{}: no samples recorded", self.name, id),
        }
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group (accepted for API compatibility; dropping the
    /// group without calling this is equivalent).
    pub fn finish(&mut self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Starts a named group; default sample count is 10.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::with_samples(10);
        f(&mut bencher);
        match bencher.median() {
            Some(t) => println!(
                "{}: median {:?} over {} samples",
                id,
                t,
                bencher.samples.len()
            ),
            None => println!("{id}: no samples recorded"),
        }
        self.benchmarks_run += 1;
        self
    }
}

/// Declares a benchmark group runner, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_benchmarks() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 2);
    }

    criterion_group!(sample_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.benchmark_group("noop")
            .sample_size(2)
            .bench_function("nothing", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macro_generated_group_runs() {
        sample_group();
    }
}
