//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, fully deterministic implementation of the
//! API subset it actually uses:
//!
//! * [`RngCore`] / [`Rng::gen_range`] over integer and float ranges,
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! * [`seq::SliceRandom::shuffle`] and [`seq::SliceRandom::choose`].
//!
//! The uniform-sampling algorithms are simple and unbiased-enough for the
//! simulator and tests (rejection sampling for integers, 53-bit mantissa
//! scaling for floats), but they do **not** reproduce upstream `rand`'s
//! exact value streams. Everything in this repository that depends on
//! random values goes through a seed, so results are reproducible within
//! this codebase.

pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator interface (matches `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`; `hi` is exclusive unless
    /// `inclusive` is set.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as $wide, hi as $wide);
                let span = if inclusive {
                    hi_w.wrapping_sub(lo_w).wrapping_add(1)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    hi_w.wrapping_sub(lo_w)
                };
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return rng.next_u64() as $t;
                }
                // Unbiased rejection sampling (Lemire-style threshold).
                let zone = u64::MAX - (u64::MAX - (span as u64) + 1) % (span as u64);
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return lo.wrapping_add((v % span as u64) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                         i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if !inclusive {
                    assert!(lo < hi, "cannot sample empty range");
                } else {
                    assert!(lo <= hi, "cannot sample empty range");
                }
                // 53-bit uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = lo + unit * (hi - lo);
                // Exclusive upper bound can only be hit through rounding;
                // nudge back inside.
                if !inclusive && v >= hi {
                    lo.max(<$t>::from_bits(hi.to_bits() - 1))
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing helpers layered over [`RngCore`] (matches `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_range(self, 0.0, 1.0, false) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from seeds (matches `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via splitmix64 expansion — the
    /// same convenience upstream offers (values differ from upstream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64 step.
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Lcg(9);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let w: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = Lcg(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Lcg(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
