//! Slice sampling helpers (the `rand::seq` subset this workspace uses).

use crate::{Rng, SampleUniform};

/// Extension trait over slices (matches `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_range(rng, 0, self.len(), false)])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i + 1, false);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Lcg(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = Lcg(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
