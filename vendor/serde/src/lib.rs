//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never drives them through a serde serializer (JSON output is built
//! explicitly via the vendored `serde_json::json!`). This crate therefore
//! re-exports no-op derive macros and keeps the trait names available for
//! bounds, letting every `use serde::{Serialize, Deserialize}` and
//! `#[derive(...)]` in the tree compile unchanged and without network
//! access.

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::*;

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Annotated {
        x: f64,
        name: String,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Mode {
        A,
        B(u32),
    }

    #[test]
    fn derives_parse_on_structs_and_enums() {
        // The derives emit nothing; the types simply keep working.
        let a = Annotated {
            x: 1.0,
            name: "n".into(),
        };
        assert_eq!(a, a);
        assert_ne!(Mode::A, Mode::B(1));
    }
}
