//! Offline stand-in for `serde_json`: the explicit-construction subset the
//! workspace uses — [`Value`], the [`json!`] macro and
//! [`to_string_pretty`]. No serde-data-model serializer is included; JSON
//! documents are built explicitly from fields, which is how every call
//! site in this repository already works.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact, printed without a decimal point).
    Int(i128),
    /// A float (printed via Rust's shortest roundtrip formatting).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Serialization errors. The explicit builder cannot fail structurally;
/// the only representable failure is a non-finite float.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i128)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) -> Result<(), Error> {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f}")));
            }
            let s = f.to_string();
            out.push_str(&s);
            // JSON floats keep a decimal point (serde_json prints 1.0).
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad_in);
                    write_pretty(item, indent + 1, out)?;
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (k, val)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad_in);
                    escape_into(k, out);
                    out.push_str(": ");
                    write_pretty(val, indent + 1, out)?;
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
    Ok(())
}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Returns [`Error`] if the document contains a non-finite float.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out)?;
    Ok(out)
}

/// Builds a [`Value`] with JSON-literal syntax: objects
/// (`{"key": expr, ...}`), arrays (`[expr, ...]`), `null`, or any
/// expression convertible into a `Value`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::Value::from($val))),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($elem)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrip_shape() {
        let doc = json!({
            "name": "atl",
            "count": 3usize,
            "ratio": 0.5,
            "ids": vec![1u64, 2, 3],
            "nested": json!({"ok": true}),
            "nothing": json!(null),
        });
        let text = to_string_pretty(&doc).unwrap();
        assert!(text.contains("\"name\": \"atl\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"ok\": true"));
        assert!(text.contains("\"nothing\": null"));
        // Array elements are indented one level deeper than the key.
        assert!(text.contains("\"ids\": [\n"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string_pretty(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string_pretty(&json!(2.5)).unwrap(), "2.5");
    }

    #[test]
    fn non_finite_float_is_an_error() {
        assert!(to_string_pretty(&json!(f64::NAN)).is_err());
        assert!(to_string_pretty(&json!(f64::INFINITY)).is_err());
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string_pretty(&json!("a\"b\\c\nd")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}
