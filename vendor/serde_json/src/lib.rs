//! Offline stand-in for `serde_json`: the subset the workspace uses —
//! [`Value`], the [`json!`] macro, [`to_string_pretty`], and a small
//! recursive-descent parser ([`from_str`]) with [`Value::get`]-style
//! accessors for reading documents back. No serde-data-model
//! serializer/deserializer is included; JSON documents are built and
//! read explicitly from fields, which is how every call site in this
//! repository already works.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact, printed without a decimal point).
    Int(i128),
    /// A float (printed via Rust's shortest roundtrip formatting).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Serialization errors. The explicit builder cannot fail structurally;
/// the only representable failure is a non-finite float.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i128)
            }
        }
    )*};
}

impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants or a
    /// missing key. The first occurrence wins, as in `serde_json`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`Error`] on malformed input (including trailing garbage).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogates are not paired — the writer never
                            // emits them; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        _ => return Err(Error(format!("invalid escape at byte {}", self.pos))),
                    }
                }
                None => return Err(Error("unterminated string".into())),
                _ => unreachable!("loop exits only on quote, backslash or EOF"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) -> Result<(), Error> {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f}")));
            }
            let s = f.to_string();
            out.push_str(&s);
            // JSON floats keep a decimal point (serde_json prints 1.0).
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad_in);
                    write_pretty(item, indent + 1, out)?;
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (k, val)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad_in);
                    escape_into(k, out);
                    out.push_str(": ");
                    write_pretty(val, indent + 1, out)?;
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
    Ok(())
}

/// Pretty-prints a [`Value`] with two-space indentation.
///
/// # Errors
///
/// Returns [`Error`] if the document contains a non-finite float.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out)?;
    Ok(out)
}

/// Builds a [`Value`] with JSON-literal syntax: objects
/// (`{"key": expr, ...}`), arrays (`[expr, ...]`), `null`, or any
/// expression convertible into a `Value`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::Value::from($val))),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($elem)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrip_shape() {
        let doc = json!({
            "name": "atl",
            "count": 3usize,
            "ratio": 0.5,
            "ids": vec![1u64, 2, 3],
            "nested": json!({"ok": true}),
            "nothing": json!(null),
        });
        let text = to_string_pretty(&doc).unwrap();
        assert!(text.contains("\"name\": \"atl\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"ok\": true"));
        assert!(text.contains("\"nothing\": null"));
        // Array elements are indented one level deeper than the key.
        assert!(text.contains("\"ids\": [\n"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string_pretty(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string_pretty(&json!(2.5)).unwrap(), "2.5");
    }

    #[test]
    fn non_finite_float_is_an_error() {
        assert!(to_string_pretty(&json!(f64::NAN)).is_err());
        assert!(to_string_pretty(&json!(f64::INFINITY)).is_err());
    }

    #[test]
    fn strings_are_escaped() {
        let s = to_string_pretty(&json!("a\"b\\c\nd")).unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }

    #[test]
    fn parser_round_trips_the_writer() {
        let doc = json!({
            "name": "a\"b\\c\nd",
            "count": 3usize,
            "ratio": -0.5,
            "big": 1e6,
            "ids": vec![1u64, 2, 3],
            "nested": json!({"ok": true, "nothing": json!(null)}),
            "empty_arr": Value::Array(vec![]),
            "empty_obj": Value::Object(vec![]),
        });
        let text = to_string_pretty(&doc).unwrap();
        assert_eq!(from_str(&text).unwrap(), doc);
    }

    #[test]
    fn accessors_read_nested_fields() {
        let doc = from_str(r#"{"a": {"b": 7, "c": 2.5, "s": "x", "t": true}}"#).unwrap();
        let a = doc.get("a").unwrap();
        assert_eq!(a.get("b").unwrap().as_u64(), Some(7));
        assert_eq!(a.get("b").unwrap().as_f64(), Some(7.0));
        assert_eq!(a.get("c").unwrap().as_f64(), Some(2.5));
        assert_eq!(a.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(a.get("t").unwrap().as_bool(), Some(true));
        assert!(a.get("missing").is_none());
        assert!(doc.get("a").unwrap().get("c").unwrap().as_u64().is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\": }",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "[01x]",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            from_str(r#""a\u00e9b""#).unwrap(),
            Value::String("a\u{e9}b".into())
        );
        // Raw UTF-8 passes through unchanged.
        assert_eq!(from_str("\"aéb\"").unwrap(), Value::String("aéb".into()));
    }
}
