//! Offline stand-in for `loom`.
//!
//! The real crate replaces `std::sync`/`std::thread` with instrumented
//! versions and exhaustively explores every legal interleaving of a
//! bounded concurrent program under the C11 memory model. This stand-in
//! keeps the *API* — `loom::model`, `loom::thread::spawn`,
//! `loom::sync::{Arc, Mutex, atomic}` — so model tests are written
//! exactly as they would be against real loom, but implements it as a
//! bounded stress runner over the plain std primitives: the model body
//! runs [`iterations`] times on real threads, re-sampling the OS
//! scheduler's interleavings each round.
//!
//! That is strictly weaker than loom (it samples interleavings instead
//! of enumerating them, and observes only SC-consistent executions),
//! but it is deterministic in *what it asserts*: any invariant the
//! tests check must hold on every sampled interleaving, and the suite
//! runs with no registry access. Swapping in the real crate is a
//! one-line Cargo change away because the surface matches; the Miri CI
//! job covers the weak-memory/UB angle the stand-in cannot.
//!
//! The iteration bound is read from `NEAT_LOOM_ITERS` (default 200) so
//! CI can pin a small bound while local soak runs crank it up.

/// Re-exports of the std synchronization primitives under the paths
/// loom models. Code under test written against `loom::sync` therefore
/// compiles against the real std types here.
pub mod sync {
    pub use std::sync::{Arc, Barrier, Condvar, Mutex, MutexGuard, RwLock};

    /// Atomic types under loom's path.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Thread spawning under loom's path.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Number of times [`model`] replays its body: `NEAT_LOOM_ITERS` when
/// set and parseable, 200 otherwise (clamped to at least 1).
pub fn iterations() -> usize {
    std::env::var("NEAT_LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(200)
        .max(1)
}

/// Runs `body` once per [`iterations`] round. Real loom explores every
/// interleaving of one logical execution; the stand-in re-executes the
/// body so each round samples a fresh OS-scheduler interleaving. A
/// panic in any round (a violated model assertion) fails the test with
/// the round number attached.
pub fn model<F>(body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let rounds = iterations();
    for round in 0..rounds {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&body));
        if let Err(payload) = result {
            eprintln!("loom model failed on sampled interleaving {round}/{rounds}");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_the_body_the_configured_number_of_times() {
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        super::model(move || {
            runs2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(runs.load(Ordering::SeqCst), super::iterations());
    }

    #[test]
    fn model_propagates_assertion_failures() {
        let failed = std::panic::catch_unwind(|| {
            super::model(|| panic!("violated invariant"));
        });
        assert!(failed.is_err());
    }

    #[test]
    fn threads_and_arcs_resolve_through_loom_paths() {
        super::model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let v = Arc::clone(&v);
                    super::thread::spawn(move || v.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            for h in handles {
                h.join().expect("model thread");
            }
            assert_eq!(v.load(Ordering::SeqCst), 2);
        });
    }
}
