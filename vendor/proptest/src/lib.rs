//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: numeric
//! range strategies, char-class string strategies (`"[ -~\n,]{0,400}"`),
//! tuple strategies, `collection::vec`, `ProptestConfig::with_cases`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` macros.
//!
//! Differences from the real crate, deliberate for an offline test rig:
//! generation is fully deterministic (seeded from the test name, so a
//! given test sees the same case sequence on every run), there is no
//! shrinking (the failing case is printed verbatim), and
//! `proptest-regressions` files are ignored.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator (splitmix64). Seeded from the test name so
/// every run of a test replays the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (the test name).
    pub fn from_label(label: &str) -> Self {
        // FNV-1a over the label, then a splitmix step to spread it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is < 2^-64 per draw, which is
        // irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The stand-in keeps the real crate's name so
/// `use proptest::prelude::*` imports resolve, but the interface is a
/// plain `generate` call with no shrinking machinery.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                *self.start() + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_strategy_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let f = self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64);
                f as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as f64;
                let hi = *self.end() as f64;
                // 2^53 draws make hitting the endpoint vanishingly rare
                // either way; treat inclusive as the closed interval.
                let f = lo + rng.unit_f64() * (hi - lo);
                f as $t
            }
        }
    )*};
}

impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

/// String strategy from a char-class pattern: `[class]{lo,hi}` where the
/// class holds literal chars, `a-b` ranges, and `\n`/`\r`/`\t`/`\\`
/// escapes. This covers the fuzz patterns used in the test suite; any
/// other regex shape is rejected loudly so a silently-wrong generator
/// never masquerades as coverage.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_char_class_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string strategy {self:?}: {e}"));
        let span = (hi - lo + 1) as u64;
        let len = lo + rng.below(span) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

type CharClass = (Vec<char>, usize, usize);

fn parse_char_class_pattern(pat: &str) -> Result<CharClass, String> {
    let mut it = pat.chars().peekable();
    if it.next() != Some('[') {
        return Err("expected pattern of the form [class]{lo,hi}".into());
    }
    let mut chars: Vec<char> = Vec::new();
    loop {
        let c = it.next().ok_or("unterminated char class")?;
        let c = match c {
            ']' => break,
            '\\' => match it.next().ok_or("dangling escape")? {
                'n' => '\n',
                'r' => '\r',
                't' => '\t',
                other @ ('\\' | '-' | ']' | '[') => other,
                other => return Err(format!("unsupported escape \\{other}")),
            },
            c => c,
        };
        // `a-b` range (a `-` immediately before `]` is a literal dash).
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next();
            if ahead.peek().is_some_and(|&n| n != ']') {
                it.next();
                let hi = match it.next().ok_or("unterminated range")? {
                    '\\' => match it.next().ok_or("dangling escape")? {
                        'n' => '\n',
                        other => other,
                    },
                    h => h,
                };
                if (hi as u32) < (c as u32) {
                    return Err(format!("inverted range {c}-{hi}"));
                }
                let lo_u = c as u32;
                let hi_u = hi as u32;
                chars.extend((lo_u..=hi_u).filter_map(char::from_u32));
                continue;
            }
        }
        chars.push(c);
    }
    let rest: String = it.collect();
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("expected {lo,hi} repetition")?;
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (
            a.trim().parse::<usize>().map_err(|e| e.to_string())?,
            b.trim().parse::<usize>().map_err(|e| e.to_string())?,
        ),
        None => {
            let n = body.trim().parse::<usize>().map_err(|e| e.to_string())?;
            (n, n)
        }
    };
    if chars.is_empty() {
        return Err("empty char class".into());
    }
    if hi < lo {
        return Err(format!("inverted repetition {{{lo},{hi}}}"));
    }
    Ok((chars, lo, hi))
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default; the heavy tests in this repo all set
        // an explicit lower count.
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carried by `prop_assert!` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runs one property: `cases` iterations of generate-then-check,
/// panicking with the offending inputs on the first failure.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<Option<String>, (String, TestCaseError)>,
{
    let mut rng = TestRng::from_label(name);
    for case_no in 0..config.cases {
        match case(&mut rng) {
            Ok(_) => {}
            Err((inputs, err)) => panic!(
                "property `{name}` failed at case {case_no}/{}\n  inputs: {inputs}\n  {err}",
                config.cases
            ),
        }
    }
}

/// Defines property tests: an optional `#![proptest_config(...)]` inner
/// attribute followed by `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  ",)+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => ::std::result::Result::Ok(None),
                    ::std::result::Result::Err(e) => ::std::result::Result::Err((__inputs, e)),
                }
            });
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body; failure aborts the
/// case with the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Rejects the current case when an assumption fails. The stand-in has
/// no rejection bookkeeping; the case simply passes vacuously.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_label("bounds");
        for _ in 0..2000 {
            let u = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
            let f = (-2.0..3.0f64).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let inc = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&inc));
        }
    }

    #[test]
    fn generation_is_deterministic_per_label() {
        let mut a = TestRng::from_label("same");
        let mut b = TestRng::from_label("same");
        let mut c = TestRng::from_label("different");
        let seq_a: Vec<u64> = (0..8).map(|_| (0u64..1000).generate(&mut a)).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| (0u64..1000).generate(&mut b)).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| (0u64..1000).generate(&mut c)).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn char_class_pattern_generates_within_class() {
        let mut rng = TestRng::from_label("class");
        let strat = "[ -~\n,]{0,40}";
        let mut saw_nonempty = false;
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().count() <= 40);
            saw_nonempty |= !s.is_empty();
            for ch in s.chars() {
                assert!(
                    ch == '\n' || ch == ',' || (' '..='~').contains(&ch),
                    "bad char {ch:?}"
                );
            }
        }
        assert!(saw_nonempty);
    }

    #[test]
    #[should_panic(expected = "unsupported string strategy")]
    fn unsupported_regex_is_rejected() {
        let mut rng = TestRng::from_label("reject");
        let _ = "(a|b)+".generate(&mut rng);
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_label("vec");
        for _ in 0..200 {
            let v = collection::vec((0u8..3, -1.0..1.0f64), 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_surface_compiles_and_runs(x in 0u64..100, y in -10i32..10,
                                           s in "[a-c]{1,5}",
                                           v in collection::vec(0usize..4, 0..8)) {
            prop_assert!(x < 100);
            prop_assert!((-10..10).contains(&y));
            prop_assert!(!s.is_empty() && s.len() <= 5);
            prop_assert_eq!(v.len(), v.iter().copied().count());
            prop_assert_ne!(s.len(), 0usize);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let failed = std::panic::catch_unwind(|| {
            run_property("always_fails", &ProptestConfig::with_cases(4), |rng| {
                let x = (0u64..10).generate(rng);
                Err((format!("x = {x:?}"), TestCaseError("forced".into())))
            });
        });
        assert!(failed.is_err());
    }
}
