//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream RNG.
//!
//! Implements the ChaCha block function (D. J. Bernstein) with 8 rounds
//! over the vendored [`rand`] traits. The keystream matches the ChaCha
//! specification for a given 32-byte key (zero nonce), so values are
//! stable across platforms and releases — the property the workspace's
//! seeded determinism tests rely on. Note that `seed_from_u64` expands
//! seeds with splitmix64 (see the vendored `rand`), so streams differ
//! from upstream `rand_chacha` for the same `u64` seed.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha with 8 rounds, the generator the whole workspace seeds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter + nonce, in ChaCha state layout.
    state: [u32; 16],
    /// Current 64-byte keystream block, as sixteen u32 words.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (b, (xi, si)) in self.block.iter_mut().zip(x.iter().zip(&self.state)) {
            *b = xi.wrapping_add(*si);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn words_are_not_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first = rng.next_u32();
        assert!((0..100).any(|_| rng.next_u32() != first));
    }

    #[test]
    fn stream_continues_across_blocks() {
        // 16 words per block: word 17 must come from a fresh block.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let block1: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let w17 = rng.next_u32();
        assert!(!block1.contains(&w17) || block1.iter().filter(|&&w| w == w17).count() < 16);
    }

    #[test]
    fn clone_replays_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
