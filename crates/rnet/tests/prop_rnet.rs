//! Property-based tests over the road-network substrate: the grid index
//! agrees with brute force, generated networks honour their invariants,
//! and the network I/O round-trips arbitrary generated maps.

use neat_rnet::geometry::point_segment_distance;
use neat_rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_rnet::{Point, SegmentIndex};
use proptest::prelude::*;

fn net_for(seed: u64, ratio: f64) -> neat_rnet::RoadNetwork {
    let mut cfg = GridNetworkConfig::small_test(7, 9);
    cfg.segment_ratio = ratio;
    generate_grid_network(&cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn index_nearest_matches_brute_force(seed in 0u64..20,
                                         x in -200.0..1100.0f64,
                                         y in -200.0..900.0f64,
                                         cell in 40.0..260.0f64) {
        let net = net_for(seed, 1.6);
        let idx = SegmentIndex::build(&net, cell);
        let p = Point::new(x, y);
        let fast = idx.nearest(&net, p).unwrap();
        let brute = net
            .segments()
            .map(|s| (s.id, point_segment_distance(p, net.position(s.a), net.position(s.b))))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .unwrap();
        prop_assert!((fast.distance - brute.1).abs() < 1e-9,
            "distance mismatch at {p}: {} vs {}", fast.distance, brute.1);
    }

    #[test]
    fn index_within_matches_brute_force(seed in 0u64..10,
                                        x in 0.0..800.0f64,
                                        y in 0.0..600.0f64,
                                        radius in 10.0..400.0f64) {
        let net = net_for(seed, 1.5);
        let idx = SegmentIndex::build(&net, 90.0);
        let p = Point::new(x, y);
        let fast: Vec<_> = idx.within(&net, p, radius).iter().map(|h| h.segment).collect();
        let mut brute: Vec<_> = net
            .segments()
            .filter(|s| {
                point_segment_distance(p, net.position(s.a), net.position(s.b)) <= radius
            })
            .map(|s| s.id)
            .collect();
        let mut fast_sorted = fast.clone();
        fast_sorted.sort();
        brute.sort();
        prop_assert_eq!(fast_sorted, brute);
    }

    #[test]
    fn rtree_matches_brute_force(seed in 0u64..15,
                                 x in -200.0..1100.0f64,
                                 y in -200.0..900.0f64,
                                 radius in 20.0..500.0f64) {
        let net = net_for(seed, 1.5);
        let tree = neat_rnet::SegmentRTree::build(&net);
        let p = Point::new(x, y);
        let brute_nearest = net
            .segments()
            .map(|s| (s.id, point_segment_distance(p, net.position(s.a), net.position(s.b))))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .unwrap();
        let fast = tree.nearest(&net, p).unwrap();
        prop_assert!((fast.distance - brute_nearest.1).abs() < 1e-9);
        let mut brute_within: Vec<_> = net
            .segments()
            .filter(|s| point_segment_distance(p, net.position(s.a), net.position(s.b)) <= radius)
            .map(|s| s.id)
            .collect();
        brute_within.sort();
        let mut fast_within: Vec<_> = tree.within(&net, p, radius).iter().map(|h| h.segment).collect();
        fast_within.sort();
        prop_assert_eq!(fast_within, brute_within);
    }

    #[test]
    fn generated_networks_are_valid(seed in 0u64..30, ratio in 1.1..1.9f64) {
        let net = net_for(seed, ratio);
        prop_assert!(net.is_connected());
        // No duplicate (a, b) segment pairs in either orientation.
        let mut pairs = std::collections::HashSet::new();
        for s in net.segments() {
            let key = if s.a < s.b { (s.a, s.b) } else { (s.b, s.a) };
            prop_assert!(pairs.insert(key), "duplicate segment between {} {}", s.a, s.b);
            // Length equals at least the chord.
            let chord = net.position(s.a).distance(net.position(s.b));
            prop_assert!(s.length >= chord - 1e-6);
            prop_assert!(s.speed_limit > 0.0);
        }
        // Segment ratio controls segment count exactly, up to the number
        // of 4-neighbour grid edges available (2rc − r − c for a 7×9 grid
        // with no hub diagonals).
        let grid_edges = 2 * 7 * 9 - 7 - 9;
        let expect = ((ratio * net.node_count() as f64).round() as usize)
            .max(net.node_count() - 1)
            .min(grid_edges);
        prop_assert_eq!(net.segment_count(), expect);
    }

    #[test]
    fn network_io_roundtrip(seed in 0u64..20) {
        let net = net_for(seed, 1.4);
        let mut buf = Vec::new();
        neat_rnet::io::write_network(&net, &mut buf).unwrap();
        let back = neat_rnet::io::read_network(buf.as_slice()).unwrap();
        prop_assert_eq!(net.node_count(), back.node_count());
        prop_assert_eq!(net.segment_count(), back.segment_count());
        let same = net.segments().zip(back.segments()).all(|(a, b)| a == b);
        prop_assert!(same);
    }
}
