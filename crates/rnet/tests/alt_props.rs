//! Property tests for the ALT landmark lower bound (satellite of the
//! deterministic-parallelism PR): on arbitrary generated networks the
//! bound must never exceed the true network distance, and the combined
//! phase-3 filter bound `max(euclidean, alt)` must never undercut the
//! Euclidean bound it tightens — together, zero loss of exactness.

use neat_rnet::alt::AltLandmarks;
use neat_rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_rnet::path::{ShortestPathEngine, TravelMode};
use neat_rnet::NodeId;
use proptest::prelude::*;

fn net_for(rows: usize, cols: usize, seed: u64, ratio: f64) -> neat_rnet::RoadNetwork {
    let mut cfg = GridNetworkConfig::small_test(rows, cols);
    cfg.segment_ratio = ratio; // low ratios delete edges, even splitting the graph
    generate_grid_network(&cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alt_bound_is_sandwiched(seed in 0u64..50,
                               rows in 3usize..8,
                               cols in 3usize..8,
                               ratio in 1.2..2.0f64,
                               k in 1usize..6,
                               pair_seed in 0usize..1000) {
        let net = net_for(rows, cols, seed, ratio);
        let n = net.node_count();
        prop_assume!(n >= 2);
        let mut engine = ShortestPathEngine::new(&net);
        let alt = AltLandmarks::build(&net, &mut engine, k);

        let a = NodeId::new(pair_seed % n);
        let b = NodeId::new((pair_seed * 7 + 3) % n);
        let lb = alt.lower_bound(a, b);
        let euclid = net.position(a).distance(net.position(b));
        let combined = euclid.max(lb);

        // Never undercuts the Euclidean bound it is layered on.
        prop_assert!(combined >= euclid);
        prop_assert!(lb >= 0.0 && lb.is_finite());

        match engine.distance(&net, a, b, TravelMode::Undirected) {
            Some(d) => {
                // Exactness: both bounds stay below the true distance.
                prop_assert!(lb <= d + 1e-9,
                    "ALT bound {lb} exceeds network distance {d}");
                prop_assert!(combined <= d + 1e-9,
                    "combined bound {combined} exceeds network distance {d}");
            }
            None => {
                // Unreachable pair: every finite bound is valid.
                prop_assert!(lb.is_finite());
            }
        }
    }

    #[test]
    fn one_to_many_table_agrees_with_point_queries(seed in 0u64..30,
                                                   rows in 3usize..7,
                                                   cols in 3usize..7,
                                                   bound in 100.0..900.0f64,
                                                   src in 0usize..1000) {
        let net = net_for(rows, cols, seed, 1.6);
        let n = net.node_count();
        prop_assume!(n >= 2);
        let from = NodeId::new(src % n);
        let mut engine = ShortestPathEngine::new(&net);
        let table = engine.distances_within(&net, from, TravelMode::Undirected, bound);
        for i in 0..n {
            let node = NodeId::new(i);
            let direct = engine.distance(&net, from, node, TravelMode::Undirected);
            match table.get(node) {
                Some(d) => prop_assert_eq!(Some(d), direct),
                None => prop_assert!(direct.is_none_or(|d| d > bound)),
            }
        }
    }
}
