//! Seeded synthetic road-network generators.
//!
//! The paper evaluates on three real maps (Table I): North-West Atlanta
//! (USGS), West San Jose (USGS) and Miami-Dade (TIGER/Line). Those
//! shapefiles are not redistributable here, so this module generates
//! *perturbed-grid* networks calibrated to reproduce each map's published
//! statistics — junction count, segment count, total length, average
//! segment length and junction degree. NEAT's behaviour depends on the
//! topology and scale statistics of the network, not on exact GIS geometry,
//! so this substitution preserves the experiments (see DESIGN.md §1).
//!
//! Generation is fully deterministic given the seed.

use crate::geometry::Point;
use crate::graph::{NetworkStats, RoadNetwork, RoadNetworkBuilder};
use crate::ids::NodeId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Miles-per-hour to metres-per-second conversion for readable speed limits.
pub const MPH: f64 = 0.44704;

/// Configuration for the perturbed-grid generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GridNetworkConfig {
    /// Grid rows (junction rows).
    pub rows: usize,
    /// Grid columns (junction columns).
    pub cols: usize,
    /// Nominal spacing between adjacent junctions in metres; also the
    /// expected segment length.
    pub spacing_m: f64,
    /// Node-position jitter as a fraction of `spacing_m` (uniform in
    /// `[-j, j]` per axis).
    pub jitter_frac: f64,
    /// Target ratio of segments to junctions (controls average degree:
    /// `avg_degree = 2 × ratio`).
    pub segment_ratio: f64,
    /// Number of hub junctions that receive diagonal segments, raising the
    /// maximum degree above the grid's natural 4.
    pub hub_count: usize,
    /// Diagonal segments added per hub (max degree ≈ 4 + this).
    pub hub_extra_degree: usize,
    /// Every `arterial_period`-th row and column is an arterial with the
    /// higher speed limit. `0` disables arterials.
    pub arterial_period: usize,
    /// Speed limit of local streets in m/s.
    pub local_speed: f64,
    /// Speed limit of arterial streets in m/s.
    pub arterial_speed: f64,
}

impl GridNetworkConfig {
    /// A small fully-kept grid for unit tests and examples: no edge
    /// deletion (ratio high enough to keep every grid edge), mild jitter.
    pub fn small_test(rows: usize, cols: usize) -> Self {
        GridNetworkConfig {
            rows,
            cols,
            spacing_m: 100.0,
            jitter_frac: 0.1,
            segment_ratio: 2.0, // keep all grid edges
            hub_count: 0,
            hub_extra_degree: 0,
            arterial_period: 4,
            local_speed: 30.0 * MPH,
            arterial_speed: 55.0 * MPH,
        }
    }
}

/// The three road networks of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapPreset {
    /// North-West Atlanta, GA (USGS): 6 979 junctions, 9 187 segments,
    /// 1 384.4 km, avg 150.7 m, degree avg 2.6 / max 6.
    Atlanta,
    /// West San Jose, CA (USGS): 10 929 junctions, 14 600 segments,
    /// 1 821.2 km, avg 124.7 m, degree avg 2.7 / max 6.
    SanJose,
    /// Miami-Dade, FL (TIGER/Line): 103 377 junctions, 154 681 segments,
    /// 26 148.3 km, avg 169.0 m, degree avg 3.0 / max 9.
    Miami,
}

impl MapPreset {
    /// Short name used in dataset labels ("ATL", "SJ", "MIA").
    pub fn code(self) -> &'static str {
        match self {
            MapPreset::Atlanta => "ATL",
            MapPreset::SanJose => "SJ",
            MapPreset::Miami => "MIA",
        }
    }

    /// All three presets, in the paper's order.
    pub fn all() -> [MapPreset; 3] {
        [MapPreset::Atlanta, MapPreset::SanJose, MapPreset::Miami]
    }

    /// The statistics the paper reports for the real map (Table I).
    pub fn paper_stats(self) -> NetworkStats {
        match self {
            MapPreset::Atlanta => NetworkStats {
                junctions: 6979,
                segments: 9187,
                total_length_km: 1384.4,
                avg_segment_length_m: 150.7,
                avg_degree: 2.6,
                max_degree: 6,
            },
            MapPreset::SanJose => NetworkStats {
                junctions: 10929,
                segments: 14600,
                total_length_km: 1821.2,
                avg_segment_length_m: 124.7,
                avg_degree: 2.7,
                max_degree: 6,
            },
            MapPreset::Miami => NetworkStats {
                junctions: 103377,
                segments: 154681,
                total_length_km: 26148.3,
                avg_segment_length_m: 169.0,
                avg_degree: 3.0,
                max_degree: 9,
            },
        }
    }

    /// Generator configuration calibrated to [`MapPreset::paper_stats`].
    pub fn config(self) -> GridNetworkConfig {
        let paper = self.paper_stats();
        // Pick a near-square grid with about the right junction count and
        // hub parameters reaching the paper's max degree.
        let (rows, cols, hubs, hub_extra) = match self {
            MapPreset::Atlanta => (83, 84, 30, 2),
            MapPreset::SanJose => (104, 105, 40, 2),
            MapPreset::Miami => (321, 322, 200, 5),
        };
        // Jitter elongates segments slightly (E[len] ≈ spacing·(1+j²/3) for
        // per-axis jitter j·spacing); shrink the spacing to compensate.
        let jitter = 0.12f64;
        let spacing = paper.avg_segment_length_m / (1.0 + jitter * jitter / 2.0);
        GridNetworkConfig {
            rows,
            cols,
            spacing_m: spacing,
            jitter_frac: jitter,
            segment_ratio: paper.segments as f64 / paper.junctions as f64,
            hub_count: hubs,
            hub_extra_degree: hub_extra,
            arterial_period: 8,
            local_speed: 30.0 * MPH,
            arterial_speed: 55.0 * MPH,
        }
    }

    /// Generates the calibrated synthetic stand-in network.
    pub fn generate(self, seed: u64) -> RoadNetwork {
        generate_grid_network(&self.config(), seed)
    }
}

/// Disjoint-set forest used to keep the generated network connected.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

/// Generates a perturbed-grid road network.
///
/// The generator:
/// 1. places `rows × cols` junctions on a jittered grid,
/// 2. builds a random spanning tree from the 4-neighbour grid edges
///    (guaranteeing connectivity),
/// 3. adds further shuffled grid edges until `segment_ratio × junctions`
///    segments exist,
/// 4. adds diagonal segments at `hub_count` randomly chosen interior hubs
///    (raising the maximum junction degree), and
/// 5. marks every `arterial_period`-th row/column as an arterial with the
///    higher speed limit.
///
/// Deterministic for a given `(config, seed)` pair.
///
/// # Panics
///
/// Panics if the grid has fewer than 2×2 junctions.
pub fn generate_grid_network(config: &GridNetworkConfig, seed: u64) -> RoadNetwork {
    assert!(
        config.rows >= 2 && config.cols >= 2,
        "grid must be at least 2x2"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = config.rows * config.cols;
    let mut b = RoadNetworkBuilder::with_capacity(n, (config.segment_ratio * n as f64) as usize);

    // 1. Jittered junctions.
    let jitter = config.jitter_frac * config.spacing_m;
    let mut ids = Vec::with_capacity(n);
    for r in 0..config.rows {
        for c in 0..config.cols {
            let dx = rng.gen_range(-jitter..=jitter);
            let dy = rng.gen_range(-jitter..=jitter);
            ids.push(b.add_node(Point::new(
                c as f64 * config.spacing_m + dx,
                r as f64 * config.spacing_m + dy,
            )));
        }
    }
    let at = |r: usize, c: usize| ids[r * config.cols + c];

    // Candidate 4-neighbour edges, tagged with whether they lie on an
    // arterial row/column.
    let is_arterial =
        |i: usize| config.arterial_period > 0 && i.is_multiple_of(config.arterial_period);
    let mut candidates: Vec<(NodeId, NodeId, bool)> = Vec::with_capacity(2 * n);
    for r in 0..config.rows {
        for c in 0..config.cols {
            if c + 1 < config.cols {
                candidates.push((at(r, c), at(r, c + 1), is_arterial(r)));
            }
            if r + 1 < config.rows {
                candidates.push((at(r, c), at(r + 1, c), is_arterial(c)));
            }
        }
    }
    candidates.shuffle(&mut rng);

    let speed = |arterial: bool, cfg: &GridNetworkConfig| {
        if arterial {
            cfg.arterial_speed
        } else {
            cfg.local_speed
        }
    };

    // 2. Random spanning tree.
    let mut uf = UnionFind::new(n);
    let mut extras = Vec::new();
    for (a, c, arterial) in candidates {
        // lint:allow(L4) reason=node ids wrap u32, so index() round-trips losslessly
        if uf.union(a.index() as u32, c.index() as u32) {
            b.add_segment(a, c, speed(arterial, config))
                .expect("grid edge is valid"); // lint:allow(L1) reason=grid edges connect distinct freshly created nodes
        } else {
            extras.push((a, c, arterial));
        }
    }

    // 4. Hub diagonals (added before the fill so they always fit within the
    // segment budget).
    let mut target = ((config.segment_ratio * n as f64).round() as usize).max(n - 1);
    let mut hub_cells: Vec<(usize, usize)> = (1..config.rows.saturating_sub(1))
        .flat_map(|r| (1..config.cols.saturating_sub(1)).map(move |c| (r, c)))
        .collect();
    hub_cells.shuffle(&mut rng);
    for &(r, c) in hub_cells.iter().take(config.hub_count) {
        let diagonals = [
            (r + 1, c + 1),
            (r.wrapping_sub(1), c.wrapping_sub(1)),
            (r + 1, c.wrapping_sub(1)),
            (r.wrapping_sub(1), c + 1),
            // A fifth, longer spoke for very-high-degree hubs.
            (r + 1, c + 2),
        ];
        for &(rr, cc) in diagonals.iter().take(config.hub_extra_degree) {
            if rr < config.rows && cc < config.cols && b.segment_count() < target {
                b.add_segment(at(r, c), at(rr, cc), config.local_speed)
                    .expect("diagonal edge is valid"); // lint:allow(L1) reason=diagonal edges connect distinct freshly created nodes
            }
        }
    }

    // 3. Fill with leftover grid edges until the target segment count.
    target = target.max(b.segment_count());
    for (a, c, arterial) in extras {
        if b.segment_count() >= target {
            break;
        }
        b.add_segment(a, c, speed(arterial, config))
            .expect("grid edge is valid"); // lint:allow(L1) reason=grid edges connect distinct freshly created nodes
    }

    b.build().expect("generated network is valid") // lint:allow(L1) reason=the generator always adds nodes and segments first
}

/// Configuration of the radial (ring-and-spoke) generator — a different
/// topology family from the perturbed grid, useful for testing that the
/// clustering algorithms do not overfit grid structure.
#[derive(Debug, Clone, PartialEq)]
pub struct RadialNetworkConfig {
    /// Number of concentric rings (≥ 1).
    pub rings: usize,
    /// Junctions per ring (≥ 3).
    pub spokes: usize,
    /// Radial spacing between rings in metres.
    pub ring_spacing_m: f64,
    /// Node-position jitter as a fraction of the ring spacing.
    pub jitter_frac: f64,
    /// Speed limit of ring roads in m/s.
    pub ring_speed: f64,
    /// Speed limit of spoke (radial) roads in m/s.
    pub spoke_speed: f64,
}

impl Default for RadialNetworkConfig {
    fn default() -> Self {
        RadialNetworkConfig {
            rings: 6,
            spokes: 12,
            ring_spacing_m: 300.0,
            jitter_frac: 0.08,
            ring_speed: 30.0 * MPH,
            spoke_speed: 45.0 * MPH,
        }
    }
}

/// Generates a ring-and-spoke road network: a centre junction, `rings`
/// concentric rings of `spokes` junctions each, ring roads joining
/// neighbours on a ring and spoke roads joining consecutive rings.
/// Always connected; deterministic for a given `(config, seed)`.
///
/// # Panics
///
/// Panics when `rings == 0` or `spokes < 3`.
pub fn generate_radial_network(config: &RadialNetworkConfig, seed: u64) -> RoadNetwork {
    assert!(config.rings >= 1, "need at least one ring");
    assert!(config.spokes >= 3, "need at least three spokes");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = RoadNetworkBuilder::new();
    let jitter = config.jitter_frac * config.ring_spacing_m;
    let jit = |rng: &mut ChaCha8Rng| rng.gen_range(-jitter..=jitter);

    let centre = b.add_node(Point::new(jit(&mut rng), jit(&mut rng)));
    let mut rings: Vec<Vec<NodeId>> = Vec::with_capacity(config.rings);
    for r in 1..=config.rings {
        let radius = r as f64 * config.ring_spacing_m;
        let ring: Vec<NodeId> = (0..config.spokes)
            .map(|s| {
                let angle = std::f64::consts::TAU * s as f64 / config.spokes as f64;
                b.add_node(Point::new(
                    radius * angle.cos() + jit(&mut rng),
                    radius * angle.sin() + jit(&mut rng),
                ))
            })
            .collect();
        rings.push(ring);
    }
    // Ring roads.
    for ring in &rings {
        for i in 0..ring.len() {
            b.add_segment(ring[i], ring[(i + 1) % ring.len()], config.ring_speed)
                .expect("ring segment valid"); // lint:allow(L1) reason=ring edges connect distinct freshly created nodes
        }
    }
    // Spokes: centre to the first ring, then ring to ring.
    for (i, &n) in rings[0].iter().enumerate() {
        // Connect every other innermost junction to the centre so the
        // centre's degree stays road-like rather than `spokes`.
        if i % 2 == 0 {
            b.add_segment(centre, n, config.spoke_speed)
                .expect("spoke segment valid"); // lint:allow(L1) reason=spoke edges connect distinct freshly created nodes
        }
    }
    for w in rings.windows(2) {
        for (inner, outer) in w[0].iter().zip(&w[1]) {
            b.add_segment(*inner, *outer, config.spoke_speed)
                .expect("spoke segment valid"); // lint:allow(L1) reason=spoke edges connect distinct freshly created nodes
        }
    }
    b.build().expect("radial network valid") // lint:allow(L1) reason=the generator always adds nodes and segments first
}

/// Builds a simple linear chain network of `n` junctions spaced
/// `spacing_m` apart — handy for tests and examples.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn chain_network(n: usize, spacing_m: f64, speed: f64) -> RoadNetwork {
    assert!(n >= 2, "chain needs at least two junctions");
    let mut b = RoadNetworkBuilder::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node(Point::new(i as f64 * spacing_m, 0.0)))
        .collect();
    for w in ids.windows(2) {
        b.add_segment(w[0], w[1], speed).expect("chain edge valid"); // lint:allow(L1) reason=chain edges connect consecutive distinct nodes
    }
    b.build().expect("chain network valid") // lint:allow(L1) reason=the generator always adds nodes and segments first
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = GridNetworkConfig::small_test(10, 10);
        let a = generate_grid_network(&cfg, 7);
        let b = generate_grid_network(&cfg, 7);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.segment_count(), b.segment_count());
        for (sa, sb) in a.segments().zip(b.segments()) {
            assert_eq!(sa, sb);
        }
        let c = generate_grid_network(&cfg, 8);
        // Different seed gives different jitter.
        let pa = a.position(NodeId::new(0));
        let pc = c.position(NodeId::new(0));
        assert!(pa != pc);
    }

    #[test]
    fn generated_network_is_connected() {
        for seed in 0..5 {
            let net = generate_grid_network(&GridNetworkConfig::small_test(8, 12), seed);
            assert!(net.is_connected(), "seed {seed} disconnected");
        }
    }

    #[test]
    fn ratio_controls_segment_count() {
        let mut cfg = GridNetworkConfig::small_test(20, 20);
        cfg.segment_ratio = 1.3;
        let net = generate_grid_network(&cfg, 1);
        assert_eq!(net.node_count(), 400);
        assert_eq!(net.segment_count(), 520);
        assert!(net.is_connected());
    }

    #[test]
    fn atlanta_preset_matches_table1_within_tolerance() {
        let net = MapPreset::Atlanta.generate(42);
        let got = net.stats();
        let want = MapPreset::Atlanta.paper_stats();
        assert!(
            (got.junctions as f64 - want.junctions as f64).abs() / (want.junctions as f64) < 0.01,
            "junctions {got:?}"
        );
        assert!((got.segments as f64 - want.segments as f64).abs() / (want.segments as f64) < 0.01);
        assert!((got.avg_segment_length_m - want.avg_segment_length_m).abs() < 8.0);
        assert!((got.avg_degree - want.avg_degree).abs() < 0.15);
        assert!(got.max_degree >= 5 && got.max_degree <= 7);
        assert!((got.total_length_km - want.total_length_km).abs() / want.total_length_km < 0.06);
        assert!(net.is_connected());
    }

    #[test]
    fn san_jose_preset_matches_table1_within_tolerance() {
        let net = MapPreset::SanJose.generate(42);
        let got = net.stats();
        let want = MapPreset::SanJose.paper_stats();
        assert!(
            (got.junctions as f64 - want.junctions as f64).abs() / (want.junctions as f64) < 0.01
        );
        assert!((got.segments as f64 - want.segments as f64).abs() / (want.segments as f64) < 0.01);
        assert!((got.avg_degree - want.avg_degree).abs() < 0.15);
        assert!(net.is_connected());
    }

    #[test]
    fn miami_preset_matches_table1_within_tolerance() {
        let net = MapPreset::Miami.generate(42);
        let got = net.stats();
        let want = MapPreset::Miami.paper_stats();
        assert!(
            (got.junctions as f64 - want.junctions as f64).abs() / (want.junctions as f64) < 0.01
        );
        assert!((got.segments as f64 - want.segments as f64).abs() / (want.segments as f64) < 0.01);
        assert!((got.avg_degree - want.avg_degree).abs() < 0.15);
        assert!((got.avg_segment_length_m - want.avg_segment_length_m).abs() < 8.0);
        assert!(got.max_degree >= 8 && got.max_degree <= 11);
        assert!(net.is_connected());
    }

    #[test]
    fn preset_codes() {
        assert_eq!(MapPreset::Atlanta.code(), "ATL");
        assert_eq!(MapPreset::SanJose.code(), "SJ");
        assert_eq!(MapPreset::Miami.code(), "MIA");
        assert_eq!(MapPreset::all().len(), 3);
    }

    #[test]
    fn chain_network_shape() {
        let net = chain_network(5, 100.0, 10.0);
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.segment_count(), 4);
        assert_eq!(net.degree(NodeId::new(0)), 1);
        assert_eq!(net.degree(NodeId::new(2)), 2);
        assert!(net.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn chain_too_short_panics() {
        let _ = chain_network(1, 100.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn tiny_grid_panics() {
        let cfg = GridNetworkConfig::small_test(1, 5);
        let _ = generate_grid_network(&cfg, 0);
    }

    #[test]
    fn arterials_have_higher_speed() {
        let cfg = GridNetworkConfig::small_test(9, 9);
        let net = generate_grid_network(&cfg, 3);
        let speeds: Vec<f64> = net.segments().map(|s| s.speed_limit).collect();
        assert!(speeds.contains(&cfg.local_speed));
        assert!(speeds.contains(&cfg.arterial_speed));
    }

    #[test]
    fn radial_network_is_connected_and_sized() {
        let cfg = RadialNetworkConfig::default();
        let net = generate_radial_network(&cfg, 3);
        // 1 centre + rings × spokes junctions.
        assert_eq!(net.node_count(), 1 + cfg.rings * cfg.spokes);
        // Segments: rings × spokes ring roads + spokes/2 centre spokes +
        // (rings−1) × spokes radial roads.
        let expect = cfg.rings * cfg.spokes + cfg.spokes.div_ceil(2) + (cfg.rings - 1) * cfg.spokes;
        assert_eq!(net.segment_count(), expect);
        assert!(net.is_connected());
    }

    #[test]
    fn radial_network_deterministic() {
        let cfg = RadialNetworkConfig::default();
        let a = generate_radial_network(&cfg, 7);
        let b = generate_radial_network(&cfg, 7);
        assert!(a.segments().zip(b.segments()).all(|(x, y)| x == y));
        let c = generate_radial_network(&cfg, 8);
        assert!(a.position(NodeId::new(0)) != c.position(NodeId::new(0)));
    }

    #[test]
    fn radial_speeds_differ_between_rings_and_spokes() {
        let cfg = RadialNetworkConfig::default();
        let net = generate_radial_network(&cfg, 1);
        let speeds: std::collections::BTreeSet<u64> = net
            .segments()
            .map(|s| (s.speed_limit * 1000.0) as u64)
            .collect();
        assert_eq!(speeds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "three spokes")]
    fn radial_too_few_spokes_panics() {
        let cfg = RadialNetworkConfig {
            spokes: 2,
            ..RadialNetworkConfig::default()
        };
        let _ = generate_radial_network(&cfg, 0);
    }

    #[test]
    fn hubs_raise_max_degree() {
        let mut cfg = GridNetworkConfig::small_test(20, 20);
        cfg.segment_ratio = 1.6;
        cfg.hub_count = 10;
        cfg.hub_extra_degree = 4;
        let net = generate_grid_network(&cfg, 5);
        assert!(net.stats().max_degree > 4);
    }
}
