//! Sort-Tile-Recursive (STR) bulk-loaded R-tree over road segments.
//!
//! An alternative to the uniform-grid [`crate::SegmentIndex`]: the grid is
//! ideal for evenly spread urban networks (the paper's maps), while an
//! R-tree degrades more gracefully on skewed geometry. Both implement the
//! same nearest/within queries, and `benches/shortest_path.rs`'s sibling
//! `clustering` bench group compares them.
//!
//! The tree is immutable (bulk-loaded once per network), deterministic,
//! and uses best-first search with bounding-box lower bounds for
//! `nearest`.

use crate::geometry::{point_segment_distance, Bbox, Point};
use crate::graph::RoadNetwork;
use crate::ids::SegmentId;
use crate::index::SegmentHit;

const NODE_CAPACITY: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf { entries: Vec<(Bbox, SegmentId)> },
    Inner { children: Vec<(Bbox, usize)> },
}

/// Immutable STR-packed R-tree over the chords of a network's segments.
///
/// ```
/// use neat_rnet::{Point, RoadNetworkBuilder};
/// use neat_rnet::rtree::SegmentRTree;
///
/// # fn main() -> Result<(), neat_rnet::RnetError> {
/// let mut b = RoadNetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(100.0, 0.0));
/// let s = b.add_segment(n0, n1, 13.9)?;
/// let net = b.build()?;
/// let tree = SegmentRTree::build(&net);
/// let hit = tree.nearest(&net, Point::new(40.0, 5.0)).unwrap();
/// assert_eq!(hit.segment, s);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SegmentRTree {
    nodes: Vec<Node>,
    root: Option<usize>,
}

fn bbox_distance(b: &Bbox, p: Point) -> f64 {
    let dx = (b.min.x - p.x).max(0.0).max(p.x - b.max.x);
    let dy = (b.min.y - p.y).max(0.0).max(p.y - b.max.y);
    dx.hypot(dy)
}

fn bbox_union(boxes: impl Iterator<Item = Bbox>) -> Bbox {
    let mut out = Bbox::empty();
    for b in boxes {
        out.expand(b.min);
        out.expand(b.max);
    }
    out
}

impl SegmentRTree {
    /// Bulk-loads the tree with Sort-Tile-Recursive packing.
    pub fn build(net: &RoadNetwork) -> Self {
        let mut entries: Vec<(Bbox, SegmentId)> = net
            .segments()
            .map(|s| {
                (
                    Bbox::from_corners(net.position(s.a), net.position(s.b)),
                    s.id,
                )
            })
            .collect();
        if entries.is_empty() {
            return SegmentRTree {
                nodes: Vec::new(),
                root: None,
            };
        }

        // STR: sort by centre-x, slice into vertical strips of
        // √(n/capacity) leaves each, sort each strip by centre-y, pack.
        let n_leaves = entries.len().div_ceil(NODE_CAPACITY);
        let strips = (n_leaves as f64).sqrt().ceil() as usize;
        let per_strip = entries.len().div_ceil(strips.max(1));
        entries.sort_by(|a, b| {
            let ax = (a.0.min.x + a.0.max.x, a.1);
            let bx = (b.0.min.x + b.0.max.x, b.1);
            ax.0.total_cmp(&bx.0).then_with(|| ax.1.cmp(&bx.1))
        });

        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<(Bbox, usize)> = Vec::new();
        for strip in entries.chunks_mut(per_strip.max(1)) {
            strip.sort_by(|a, b| {
                let ay = (a.0.min.y + a.0.max.y, a.1);
                let by = (b.0.min.y + b.0.max.y, b.1);
                ay.0.total_cmp(&by.0).then_with(|| ay.1.cmp(&by.1))
            });
            for chunk in strip.chunks(NODE_CAPACITY) {
                let bbox = bbox_union(chunk.iter().map(|e| e.0));
                nodes.push(Node::Leaf {
                    entries: chunk.to_vec(),
                });
                level.push((bbox, nodes.len() - 1));
            }
        }

        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            let mut next = Vec::new();
            for chunk in level.chunks(NODE_CAPACITY) {
                let bbox = bbox_union(chunk.iter().map(|e| e.0));
                nodes.push(Node::Inner {
                    children: chunk.to_vec(),
                });
                next.push((bbox, nodes.len() - 1));
            }
            level = next;
        }
        let root = Some(level[0].1);
        SegmentRTree { nodes, root }
    }

    /// The nearest segment to `p`, or `None` for an empty network.
    /// Best-first search pruned by bounding-box distances; ties on exact
    /// distance break towards the smaller segment id (matching the grid
    /// index).
    pub fn nearest(&self, net: &RoadNetwork, p: Point) -> Option<SegmentHit> {
        let root = self.root?;
        // Max-heap on Reverse(priority): implement with a Vec-based
        // binary heap over (dist, is_segment, id) keyed by f64.
        #[derive(Debug)]
        enum Item {
            Node(usize),
            Seg(SegmentId, f64),
        }
        let mut heap: std::collections::BinaryHeap<HeapKey> = std::collections::BinaryHeap::new();
        let mut items: Vec<Item> = Vec::new();

        #[derive(Debug, PartialEq)]
        struct HeapKey {
            dist: f64,
            idx: usize,
        }
        impl Eq for HeapKey {}
        impl Ord for HeapKey {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .dist
                    .total_cmp(&self.dist)
                    .then_with(|| other.idx.cmp(&self.idx))
            }
        }
        impl PartialOrd for HeapKey {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        items.push(Item::Node(root));
        heap.push(HeapKey { dist: 0.0, idx: 0 });
        let mut best: Option<SegmentHit> = None;
        while let Some(HeapKey { dist, idx }) = heap.pop() {
            if let Some(b) = &best {
                if dist > b.distance {
                    break;
                }
            }
            match &items[idx] {
                Item::Seg(sid, d) => {
                    let better = match &best {
                        None => true,
                        Some(b) => *d < b.distance || (*d == b.distance && *sid < b.segment),
                    };
                    if better {
                        best = Some(SegmentHit {
                            segment: *sid,
                            distance: *d,
                        });
                    }
                }
                Item::Node(n) => match &self.nodes[*n] {
                    Node::Leaf { entries } => {
                        for (_, sid) in entries {
                            let seg = net.segment(*sid).expect("indexed segment"); // lint:allow(L1) reason=tree leaves only hold segment ids of the indexed network
                            let d =
                                point_segment_distance(p, net.position(seg.a), net.position(seg.b));
                            items.push(Item::Seg(*sid, d));
                            heap.push(HeapKey {
                                dist: d,
                                idx: items.len() - 1,
                            });
                        }
                    }
                    Node::Inner { children } => {
                        for (bb, child) in children {
                            items.push(Item::Node(*child));
                            heap.push(HeapKey {
                                dist: bbox_distance(bb, p),
                                idx: items.len() - 1,
                            });
                        }
                    }
                },
            }
        }
        best
    }

    /// All segments within `radius` of `p`, sorted by distance then id
    /// (same contract as the grid index).
    pub fn within(&self, net: &RoadNetwork, p: Point, radius: f64) -> Vec<SegmentHit> {
        let mut hits = Vec::new();
        let Some(root) = self.root else {
            return hits;
        };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n] {
                Node::Leaf { entries } => {
                    for (bb, sid) in entries {
                        if bbox_distance(bb, p) > radius {
                            continue;
                        }
                        let seg = net.segment(*sid).expect("indexed segment"); // lint:allow(L1) reason=tree leaves only hold segment ids of the indexed network
                        let d = point_segment_distance(p, net.position(seg.a), net.position(seg.b));
                        if d <= radius {
                            hits.push(SegmentHit {
                                segment: *sid,
                                distance: d,
                            });
                        }
                    }
                }
                Node::Inner { children } => {
                    for (bb, child) in children {
                        if bbox_distance(bb, p) <= radius {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
        hits.sort_by(|x, y| {
            x.distance
                .total_cmp(&y.distance)
                .then_with(|| x.segment.cmp(&y.segment))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::SegmentIndex;
    use crate::netgen::{generate_grid_network, GridNetworkConfig};
    use crate::RoadNetworkBuilder;

    fn net() -> RoadNetwork {
        generate_grid_network(&GridNetworkConfig::small_test(9, 11), 4)
    }

    /// Regression (neat-lint L3): a NaN query point used to be able to
    /// panic the traversal heap via `partial_cmp().unwrap()`; with
    /// `total_cmp` ordering it must return without panicking.
    #[test]
    fn nan_query_point_does_not_panic() {
        let net = net();
        let tree = SegmentRTree::build(&net);
        let poisoned = Point::new(f64::NAN, f64::NAN);
        let _ = tree.nearest(&net, poisoned);
        assert!(
            tree.within(&net, poisoned, 100.0).is_empty(),
            "no segment is within a finite radius of a NaN point"
        );
    }

    #[test]
    fn nearest_agrees_with_grid_index() {
        let net = net();
        let tree = SegmentRTree::build(&net);
        let grid = SegmentIndex::build(&net, 80.0);
        for &(x, y) in &[
            (0.0, 0.0),
            (333.0, 512.0),
            (-120.0, 900.0),
            (1050.0, -60.0),
            (505.0, 405.0),
        ] {
            let p = Point::new(x, y);
            let a = tree.nearest(&net, p).unwrap();
            let b = grid.nearest(&net, p).unwrap();
            assert_eq!(a.segment, b.segment, "at {p}");
            assert!((a.distance - b.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn within_agrees_with_grid_index() {
        let net = net();
        let tree = SegmentRTree::build(&net);
        let grid = SegmentIndex::build(&net, 80.0);
        for radius in [30.0, 120.0, 400.0] {
            let p = Point::new(450.0, 380.0);
            let a: Vec<_> = tree
                .within(&net, p, radius)
                .iter()
                .map(|h| h.segment)
                .collect();
            let b: Vec<_> = grid
                .within(&net, p, radius)
                .iter()
                .map(|h| h.segment)
                .collect();
            assert_eq!(a, b, "radius {radius}");
        }
    }

    #[test]
    fn empty_network() {
        let net = RoadNetworkBuilder::new().build().unwrap();
        let tree = SegmentRTree::build(&net);
        assert!(tree.nearest(&net, Point::new(0.0, 0.0)).is_none());
        assert!(tree.within(&net, Point::new(0.0, 0.0), 100.0).is_empty());
    }

    #[test]
    fn single_segment() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let s = b.add_segment(a, c, 10.0).unwrap();
        let net = b.build().unwrap();
        let tree = SegmentRTree::build(&net);
        let hit = tree.nearest(&net, Point::new(50.0, 40.0)).unwrap();
        assert_eq!(hit.segment, s);
        assert!((hit.distance - 40.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_construction() {
        let net = net();
        let a = SegmentRTree::build(&net);
        let b = SegmentRTree::build(&net);
        // Same queries, same answers — structure equality is implied by
        // the deterministic packing.
        for i in 0..20 {
            let p = Point::new(i as f64 * 53.0, i as f64 * 31.0);
            assert_eq!(
                a.nearest(&net, p).map(|h| h.segment),
                b.nearest(&net, p).map(|h| h.segment)
            );
        }
    }
}
