//! Road-network locations (Section II-A of the paper).
//!
//! A location is `(sid, x, y, t)` — the segment on which a mobile object
//! resides, its planar coordinates and the recording timestamp. The paper's
//! alternative `(sid, p, t)` offset representation is supported via
//! [`RoadLocation::offset_on`] and [`RoadLocation::at_offset`].

use crate::geometry::{project_onto_segment, Point};
use crate::graph::RoadNetwork;
use crate::ids::SegmentId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A timestamped position on a road segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadLocation {
    /// Road segment on which the object resides.
    pub segment: SegmentId,
    /// Planar position in metres.
    pub position: Point,
    /// Timestamp in seconds since the start of the trace.
    pub time: f64,
}

impl RoadLocation {
    /// Creates a location from its parts.
    pub fn new(segment: SegmentId, position: Point, time: f64) -> Self {
        RoadLocation {
            segment,
            position,
            time,
        }
    }

    /// Converts to the paper's `(sid, p, t)` representation: the offset `p`
    /// in metres from the segment's start junction `a`, measured along the
    /// segment chord after projecting the position onto it.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RnetError::UnknownSegment`] if the location's
    /// segment is not part of `net`.
    pub fn offset_on(&self, net: &RoadNetwork) -> Result<f64, crate::RnetError> {
        let seg = net.segment(self.segment)?;
        let a = net.position(seg.a);
        let b = net.position(seg.b);
        let pr = project_onto_segment(self.position, a, b);
        Ok(pr.t * seg.length)
    }

    /// Builds a location from the paper's `(sid, p, t)` representation.
    /// The offset is clamped to `[0, length]`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RnetError::UnknownSegment`] if `segment` is not
    /// part of `net`.
    pub fn at_offset(
        net: &RoadNetwork,
        segment: SegmentId,
        offset: f64,
        time: f64,
    ) -> Result<Self, crate::RnetError> {
        let seg = net.segment(segment)?;
        let a = net.position(seg.a);
        let b = net.position(seg.b);
        let t = (offset / seg.length).clamp(0.0, 1.0);
        Ok(RoadLocation::new(segment, a.lerp(b, t), time))
    }
}

impl fmt::Display for RoadLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, t={:.1}s)",
            self.segment, self.position, self.time
        )
    }
}

/// A raw GPS sample before map matching: planar coordinates plus timestamp,
/// with no segment association yet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawSample {
    /// Observed planar position in metres (possibly noisy).
    pub position: Point,
    /// Timestamp in seconds since the start of the trace.
    pub time: f64,
}

impl RawSample {
    /// Creates a raw sample.
    pub fn new(position: Point, time: f64) -> Self {
        RawSample { position, time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    fn one_segment_net() -> (RoadNetwork, SegmentId) {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(200.0, 0.0));
        let s = b.add_segment(a, c, 13.9).unwrap();
        (b.build().unwrap(), s)
    }

    #[test]
    fn offset_roundtrip() {
        let (net, s) = one_segment_net();
        let loc = RoadLocation::at_offset(&net, s, 50.0, 3.0).unwrap();
        assert_eq!(loc.position, Point::new(50.0, 0.0));
        assert_eq!(loc.time, 3.0);
        assert!((loc.offset_on(&net).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn offset_clamps() {
        let (net, s) = one_segment_net();
        let loc = RoadLocation::at_offset(&net, s, 1e9, 0.0).unwrap();
        assert_eq!(loc.position, Point::new(200.0, 0.0));
        let loc = RoadLocation::at_offset(&net, s, -5.0, 0.0).unwrap();
        assert_eq!(loc.position, Point::new(0.0, 0.0));
    }

    #[test]
    fn offset_of_off_segment_point_projects() {
        let (net, s) = one_segment_net();
        // 10 m above the midpoint of the segment.
        let loc = RoadLocation::new(s, Point::new(100.0, 10.0), 0.0);
        assert!((loc.offset_on(&net).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_segment_errors() {
        let (net, _) = one_segment_net();
        let ghost = SegmentId::new(99);
        assert!(RoadLocation::at_offset(&net, ghost, 0.0, 0.0).is_err());
        let loc = RoadLocation::new(ghost, Point::new(0.0, 0.0), 0.0);
        assert!(loc.offset_on(&net).is_err());
    }

    #[test]
    fn display_contains_segment() {
        let loc = RoadLocation::new(SegmentId::new(3), Point::new(1.0, 2.0), 4.5);
        let s = loc.to_string();
        assert!(s.contains("s3"));
        assert!(s.contains("4.5"));
    }
}
