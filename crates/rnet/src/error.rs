//! Error types for road-network construction and queries.

use crate::ids::{NodeId, SegmentId};
use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a road network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RnetError {
    /// A referenced node id is out of range.
    UnknownNode(NodeId),
    /// A referenced segment id is out of range.
    UnknownSegment(SegmentId),
    /// A segment was declared with identical endpoints.
    SelfLoop(NodeId),
    /// A segment's declared length is shorter than the straight-line
    /// distance between its endpoints.
    LengthShorterThanChord {
        /// Offending segment.
        segment: SegmentId,
        /// Declared polyline length in metres.
        declared: f64,
        /// Straight-line (chord) distance in metres.
        chord: f64,
    },
    /// A segment's speed limit is not strictly positive.
    NonPositiveSpeed(SegmentId),
    /// No path exists between the requested nodes.
    NoPath {
        /// Source junction.
        from: NodeId,
        /// Target junction.
        to: NodeId,
    },
    /// The network has no nodes, so the requested operation is undefined.
    EmptyNetwork,
}

impl fmt::Display for RnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            RnetError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            RnetError::SelfLoop(n) => write!(f, "segment endpoints are both {n}"),
            RnetError::LengthShorterThanChord {
                segment,
                declared,
                chord,
            } => write!(
                f,
                "segment {segment} length {declared:.2}m is shorter than its chord {chord:.2}m"
            ),
            RnetError::NonPositiveSpeed(s) => {
                write!(f, "segment {s} speed limit must be positive")
            }
            RnetError::NoPath { from, to } => write!(f, "no path from {from} to {to}"),
            RnetError::EmptyNetwork => write!(f, "road network has no nodes"),
        }
    }
}

impl Error for RnetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            RnetError::UnknownNode(NodeId::new(1)),
            RnetError::UnknownSegment(SegmentId::new(2)),
            RnetError::SelfLoop(NodeId::new(3)),
            RnetError::LengthShorterThanChord {
                segment: SegmentId::new(4),
                declared: 1.0,
                chord: 2.0,
            },
            RnetError::NonPositiveSpeed(SegmentId::new(5)),
            RnetError::NoPath {
                from: NodeId::new(0),
                to: NodeId::new(1),
            },
            RnetError::EmptyNetwork,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RnetError>();
    }
}
