//! ALT landmark lower bounds (Goldberg & Harrelson's A*-landmarks
//! technique, reduced to its bound).
//!
//! A landmark `L` with a precomputed distance table gives, by the
//! triangle inequality, `d(a, b) ≥ |d(L, a) − d(L, b)|` on an
//! undirected metric (and `d(a, b) ≥ d(L, b) − d(L, a)` on a directed
//! one). The maximum over a handful of well-spread landmarks is a
//! cheap, often tight lower bound on the true network distance —
//! strictly at least as tight as nothing, and in phase 3 it is layered
//! *on top of* the paper's Euclidean lower bound (the final filter is
//! `max(euclidean, alt)`), so it can only skip more pairs, never
//! different ones.
//!
//! Preprocessing cost: exactly `k` full single-source Dijkstra
//! expansions and `k × node_count` stored doubles. Landmarks are picked
//! by deterministic farthest-point sampling (first landmark = node 0,
//! each next = the node maximising its distance to the chosen set, ties
//! to the smallest id), so the tables — and every bound computed from
//! them — are identical across runs and thread counts.

use crate::graph::RoadNetwork;
use crate::ids::NodeId;
use crate::path::{ShortestPathEngine, TravelMode};
use neat_runctl::{Control, Interrupt};

/// Precomputed landmark distance tables for ALT lower bounds.
#[derive(Clone, Debug, Default)]
pub struct AltLandmarks {
    landmarks: Vec<NodeId>,
    /// `dist[l][n]` = network distance landmark `l` → node `n`
    /// (`INFINITY` when unreachable).
    dist: Vec<Vec<f64>>,
    mode: TravelModeKind,
}

/// Whether the tables were built on the undirected metric (symmetric
/// bound valid) or the directed one (one-sided bound only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum TravelModeKind {
    #[default]
    Undirected,
    Directed,
}

impl AltLandmarks {
    /// Builds `k` landmark tables on `net` (uncontrolled).
    pub fn build(net: &RoadNetwork, engine: &mut ShortestPathEngine, k: usize) -> Self {
        // Infallible without a control.
        Self::build_ctl(net, engine, k, TravelMode::Undirected, None)
            .unwrap_or_else(|_| AltLandmarks::default())
    }

    /// Budget-aware build: every Dijkstra settlement of the `k`
    /// preprocessing expansions is charged against `ctl`, so landmark
    /// preprocessing participates in op/settled budgets exactly like
    /// the query-time searches it replaces.
    ///
    /// # Errors
    ///
    /// Returns the first interrupt observed; no partial table escapes.
    pub fn build_ctl(
        net: &RoadNetwork,
        engine: &mut ShortestPathEngine,
        k: usize,
        mode: TravelMode,
        ctl: Option<&Control>,
    ) -> Result<Self, Interrupt> {
        let n = net.node_count();
        let mut out = AltLandmarks {
            landmarks: Vec::new(),
            dist: Vec::new(),
            mode: match mode {
                TravelMode::Undirected => TravelModeKind::Undirected,
                TravelMode::Directed => TravelModeKind::Directed,
            },
        };
        if n == 0 || k == 0 {
            return Ok(out);
        }
        // Farthest-point sampling, seeded at node 0: deterministic and
        // spreads landmarks towards the periphery, where they bound the
        // most pairs.
        let mut min_to_chosen = vec![f64::INFINITY; n];
        let mut next = NodeId::new(0);
        for _ in 0..k.min(n) {
            let table = match ctl {
                Some(c) => engine.distances_from_ctl(net, next, mode, c)?,
                None => Ok::<_, Interrupt>(engine.distances_from(net, next, mode))?,
            };
            for (i, &d) in table.iter().enumerate() {
                if d < min_to_chosen[i] {
                    min_to_chosen[i] = d;
                }
            }
            out.landmarks.push(next);
            out.dist.push(table);
            // Next landmark: the node farthest from every chosen one
            // (ties to the smallest id; unreachable components sort
            // first and get their own landmark).
            let mut best = -1.0;
            let mut best_node = None;
            for (i, &d) in min_to_chosen.iter().enumerate() {
                if d > best {
                    best = d;
                    best_node = Some(NodeId::new(i));
                }
            }
            match best_node {
                Some(b) if best > 0.0 => next = b,
                _ => break, // every node is a chosen landmark already
            }
        }
        Ok(out)
    }

    /// The chosen landmark nodes, in selection order.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Number of landmark tables held.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// True when no landmark was built (every bound is 0).
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// A lower bound on the network distance `d(a, b)`, from the
    /// triangle inequality over every landmark. Never negative; `0.0`
    /// when no landmark reaches both nodes. Exact distances are never
    /// exceeded, so filtering with this bound loses nothing.
    pub fn lower_bound(&self, a: NodeId, b: NodeId) -> f64 {
        let (ai, bi) = (a.index(), b.index());
        let mut best = 0.0f64;
        for table in &self.dist {
            let (da, db) = (table[ai], table[bi]);
            if !da.is_finite() || !db.is_finite() {
                continue;
            }
            let lb = match self.mode {
                TravelModeKind::Undirected => (da - db).abs(),
                // Directed: only d(L,b) ≤ d(L,a) + d(a,b) is usable.
                TravelModeKind::Directed => db - da,
            };
            if lb > best {
                best = lb;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadNetworkBuilder;
    use crate::netgen::{generate_grid_network, GridNetworkConfig};

    fn grid(rows: usize, cols: usize, seed: u64) -> RoadNetwork {
        generate_grid_network(&GridNetworkConfig::small_test(rows, cols), seed)
    }

    #[test]
    fn bound_never_exceeds_true_distance_on_grids() {
        let net = grid(6, 7, 13);
        let mut engine = ShortestPathEngine::new(&net);
        let alt = AltLandmarks::build(&net, &mut engine, 4);
        assert_eq!(alt.len(), 4);
        let n = net.node_count();
        for a in 0..n {
            for b in (a..n).step_by(5) {
                let (na, nb) = (NodeId::new(a), NodeId::new(b));
                let lb = alt.lower_bound(na, nb);
                assert!(lb >= 0.0);
                if let Some(d) = engine.distance(&net, na, nb, TravelMode::Undirected) {
                    assert!(
                        lb <= d + 1e-9,
                        "ALT bound {lb} exceeds true distance {d} for {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn bound_is_exact_from_a_landmark_itself() {
        let net = grid(4, 4, 7);
        let mut engine = ShortestPathEngine::new(&net);
        let alt = AltLandmarks::build(&net, &mut engine, 3);
        let l0 = alt.landmarks()[0];
        for b in 0..net.node_count() {
            let nb = NodeId::new(b);
            if let Some(d) = engine.distance(&net, l0, nb, TravelMode::Undirected) {
                // d(L0, b) ≥ |d(L0, L0) − d(L0, b)| = d with equality.
                assert!((alt.lower_bound(l0, nb) - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn landmark_selection_is_deterministic() {
        let net = grid(5, 5, 99);
        let mut e1 = ShortestPathEngine::new(&net);
        let mut e2 = ShortestPathEngine::new(&net);
        let a = AltLandmarks::build(&net, &mut e1, 5);
        let b = AltLandmarks::build(&net, &mut e2, 5);
        assert_eq!(a.landmarks(), b.landmarks());
    }

    #[test]
    fn disconnected_components_each_get_a_landmark() {
        // Two disjoint 2-node chains.
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 5_000.0));
        let n3 = b.add_node(Point::new(100.0, 5_000.0));
        b.add_segment(n0, n1, 13.9).expect("distinct nodes");
        b.add_segment(n2, n3, 13.9).expect("distinct nodes");
        let net = b.build().expect("valid network");
        let mut engine = ShortestPathEngine::new(&net);
        let alt = AltLandmarks::build(&net, &mut engine, 2);
        assert_eq!(alt.len(), 2);
        // One landmark per component: both in-component bounds are live.
        assert!(alt.lower_bound(n0, n1) > 0.0);
        assert!(alt.lower_bound(n2, n3) > 0.0);
        // Cross-component pairs share no landmark coverage: bound 0.
        assert_eq!(alt.lower_bound(n0, n2), 0.0);
    }

    #[test]
    fn empty_and_zero_k_are_harmless() {
        let net = grid(3, 3, 1);
        let mut engine = ShortestPathEngine::new(&net);
        let alt = AltLandmarks::build(&net, &mut engine, 0);
        assert!(alt.is_empty());
        assert_eq!(alt.lower_bound(NodeId::new(0), NodeId::new(5)), 0.0);
    }
}
