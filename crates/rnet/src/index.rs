//! Uniform-grid spatial index over road segments.
//!
//! The map matcher must find candidate road segments near each GPS sample;
//! a uniform grid over segment bounding boxes answers nearest-segment and
//! radius queries in near-constant time for road networks, whose segments
//! are short (~125–170 m on the paper's maps) and evenly spread.
//!
//! The grid is stored in compressed-sparse-row form: one flat entry array
//! bucketed by cell, with the chord endpoint coordinates inlined next to
//! each entry. A radius query therefore streams contiguous memory instead
//! of chasing `Vec<Vec<_>>` and `net.segment()` pointers, and the
//! distance evaluation runs through the widened
//! [`crate::geometry::point_to_segments_distances`] kernel over the
//! gathered candidate run. [`SegmentIndex::within_into`] exposes the
//! allocation-free variant used by the map-matching hot loop, with a
//! caller-owned [`GridScratch`] whose epoch-stamped `seen` array replaces
//! the per-query `HashSet` dedup.

use crate::geometry::{point_segment_distance, point_to_segments_distances, Bbox, Point};
use crate::graph::RoadNetwork;
use crate::ids::SegmentId;

/// A candidate segment returned by a proximity query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentHit {
    /// The segment.
    pub segment: SegmentId,
    /// Distance from the query point to the segment chord, in metres.
    pub distance: f64,
}

/// Reusable scratch buffers for [`SegmentIndex::within_into`].
///
/// One instance amortizes every per-query allocation of a radius lookup:
/// the segment-dedup table (epoch-stamped, so clearing is O(1)) and the
/// gathered candidate run fed to the batched distance kernel. A scratch
/// is not tied to one index; it resizes itself to whatever index it is
/// used with.
#[derive(Debug, Clone, Default)]
pub struct GridScratch {
    /// `seen[sid] == epoch` marks segment `sid` as already gathered
    /// during the current query.
    seen: Vec<u32>,
    epoch: u32,
    cand_sid: Vec<SegmentId>,
    cand_ax: Vec<f64>,
    cand_ay: Vec<f64>,
    cand_bx: Vec<f64>,
    cand_by: Vec<f64>,
    dist: Vec<f64>,
}

impl GridScratch {
    /// A fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new query epoch, resizing the dedup table to cover
    /// `seg_count` segments. O(1) except on growth or epoch wraparound.
    fn begin(&mut self, seg_count: usize) {
        if self.seen.len() < seg_count {
            self.seen.resize(seg_count, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wraparound (once per 2^32 queries): stale stamps could
            // collide with the restarted epoch, so clear them all.
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.cand_sid.clear();
        self.cand_ax.clear();
        self.cand_ay.clear();
        self.cand_bx.clear();
        self.cand_by.clear();
    }
}

/// Uniform-grid index over the chords of all segments in a network.
///
/// ```
/// use neat_rnet::{Point, RoadNetworkBuilder, SegmentIndex};
///
/// # fn main() -> Result<(), neat_rnet::RnetError> {
/// let mut b = RoadNetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(100.0, 0.0));
/// let s = b.add_segment(n0, n1, 13.9)?;
/// let net = b.build()?;
/// let idx = SegmentIndex::build(&net, 50.0);
/// let hit = idx.nearest(&net, Point::new(40.0, 5.0)).unwrap();
/// assert_eq!(hit.segment, s);
/// assert!((hit.distance - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    origin: Point,
    cell: f64,
    cols: usize,
    rows: usize,
    /// Number of segments in the indexed network (dedup-table size).
    seg_count: usize,
    /// CSR bucket boundaries: cell `i` owns entries
    /// `cell_starts[i]..cell_starts[i + 1]`; always `cols * rows + 1`
    /// entries.
    cell_starts: Vec<u32>,
    /// Flat per-cell segment ids, bucketed by `cell_starts`.
    entries: Vec<SegmentId>,
    /// Chord endpoints aligned with `entries`, inlined so queries never
    /// touch the network graph.
    ax: Vec<f64>,
    ay: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
}

impl SegmentIndex {
    /// Builds an index with the given cell size in metres.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let bbox = net.bbox().unwrap_or(Bbox {
            min: Point::new(0.0, 0.0),
            max: Point::new(0.0, 0.0),
        });
        let cols = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bbox.height() / cell_size).ceil() as usize).max(1);
        let mut idx = SegmentIndex {
            origin: bbox.min,
            cell: cell_size,
            cols,
            rows,
            seg_count: net.segment_count(),
            cell_starts: vec![0u32; cols * rows + 1],
            entries: Vec::new(),
            ax: Vec::new(),
            ay: Vec::new(),
            bx: Vec::new(),
            by: Vec::new(),
        };
        // Pass 1: count entries per cell into cell_starts[c + 1].
        let mut total = 0usize;
        for seg in net.segments() {
            let sb = Bbox::from_corners(net.position(seg.a), net.position(seg.b));
            let (c0, r0) = idx.cell_of(sb.min);
            let (c1, r1) = idx.cell_of(sb.max);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    idx.cell_starts[r * idx.cols + c + 1] += 1;
                    total += 1;
                }
            }
        }
        for i in 1..idx.cell_starts.len() {
            idx.cell_starts[i] += idx.cell_starts[i - 1];
        }
        // Pass 2: fill each bucket in segment-iteration order via a
        // per-cell cursor, preserving the order a Vec<Vec<_>> build
        // would produce.
        idx.entries.resize(total, SegmentId::new(0));
        idx.ax.resize(total, 0.0);
        idx.ay.resize(total, 0.0);
        idx.bx.resize(total, 0.0);
        idx.by.resize(total, 0.0);
        let mut cursor: Vec<u32> = idx.cell_starts[..cols * rows].to_vec();
        for seg in net.segments() {
            let a = net.position(seg.a);
            let b = net.position(seg.b);
            let sb = Bbox::from_corners(a, b);
            let (c0, r0) = idx.cell_of(sb.min);
            let (c1, r1) = idx.cell_of(sb.max);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    let slot = cursor[r * idx.cols + c] as usize;
                    cursor[r * idx.cols + c] += 1;
                    idx.entries[slot] = seg.id;
                    idx.ax[slot] = a.x;
                    idx.ay[slot] = a.y;
                    idx.bx[slot] = b.x;
                    idx.by[slot] = b.y;
                }
            }
        }
        idx
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = (((p.x - self.origin.x) / self.cell).floor() as isize)
            .clamp(0, self.cols as isize - 1) as usize;
        let r = (((p.y - self.origin.y) / self.cell).floor() as isize)
            .clamp(0, self.rows as isize - 1) as usize;
        (c, r)
    }

    /// The entry range of cell `(c, r)`.
    fn bucket(&self, c: usize, r: usize) -> (usize, usize) {
        let i = r * self.cols + c;
        (
            self.cell_starts[i] as usize,
            self.cell_starts[i + 1] as usize,
        )
    }

    /// All segments whose chord lies within `radius` of `p`, sorted by
    /// distance then segment id (deterministic). Convenience wrapper
    /// over [`SegmentIndex::within_into`] that allocates fresh buffers.
    pub fn within(&self, _net: &RoadNetwork, p: Point, radius: f64) -> Vec<SegmentHit> {
        let mut scratch = GridScratch::new();
        let mut hits = Vec::new();
        self.within_into(p, radius, &mut scratch, &mut hits);
        hits
    }

    /// Allocation-reusing radius query: fills `out` with all segments
    /// whose chord lies within `radius` of `p`, sorted by distance then
    /// segment id. `out` is cleared first. Produces exactly the hits of
    /// [`SegmentIndex::within`] — same candidates, same bit-exact
    /// distances, same order.
    pub fn within_into(
        &self,
        p: Point,
        radius: f64,
        scratch: &mut GridScratch,
        out: &mut Vec<SegmentHit>,
    ) {
        out.clear();
        scratch.begin(self.seg_count);
        let rings = (radius / self.cell).ceil() as isize + 1;
        let (pc, pr) = self.cell_of(p);
        let r0 = (pr as isize - rings).max(0) as usize;
        let r1 = ((pr as isize + rings).min(self.rows as isize - 1)).max(0) as usize;
        let c0 = (pc as isize - rings).max(0) as usize;
        let c1 = ((pc as isize + rings).min(self.cols as isize - 1)).max(0) as usize;
        // Gather the deduplicated candidate run cell by cell in row-major
        // order (contiguous CSR reads), then evaluate all distances in
        // one widened-kernel pass.
        for r in r0..=r1 {
            let (lo, hi) = (self.bucket(c0, r).0, self.bucket(c1, r).1);
            for e in lo..hi {
                let sid = self.entries[e];
                let stamp = &mut scratch.seen[sid.index()];
                if *stamp == scratch.epoch {
                    continue;
                }
                *stamp = scratch.epoch;
                scratch.cand_sid.push(sid);
                scratch.cand_ax.push(self.ax[e]);
                scratch.cand_ay.push(self.ay[e]);
                scratch.cand_bx.push(self.bx[e]);
                scratch.cand_by.push(self.by[e]);
            }
        }
        point_to_segments_distances(
            p,
            &scratch.cand_ax,
            &scratch.cand_ay,
            &scratch.cand_bx,
            &scratch.cand_by,
            &mut scratch.dist,
        );
        for (i, &d) in scratch.dist.iter().enumerate() {
            if d <= radius {
                out.push(SegmentHit {
                    segment: scratch.cand_sid[i],
                    distance: d,
                });
            }
        }
        out.sort_by(|x, y| {
            x.distance
                .total_cmp(&y.distance)
                .then_with(|| x.segment.cmp(&y.segment))
        });
    }

    /// The nearest segment to `p`, searching outward ring by ring.
    /// Returns `None` only for a network with no segments.
    pub fn nearest(&self, _net: &RoadNetwork, p: Point) -> Option<SegmentHit> {
        let max_rings = self.cols.max(self.rows) as isize + 1;
        let mut best: Option<SegmentHit> = None;
        let (pc, pr) = self.cell_of(p);
        for ring in 0..=max_rings {
            // Once we have a hit, we can stop after searching one ring
            // beyond the ring whose inner boundary exceeds the best distance.
            if let Some(b) = best {
                if (ring - 1) as f64 * self.cell > b.distance {
                    break;
                }
            }
            let mut candidates: Vec<(SegmentId, u32)> = Vec::new();
            for dr in -ring..=ring {
                for dc in -ring..=ring {
                    if dr.abs() != ring && dc.abs() != ring {
                        continue; // only the ring boundary
                    }
                    let r = pr as isize + dr;
                    let c = pc as isize + dc;
                    if r < 0 || c < 0 || r >= self.rows as isize || c >= self.cols as isize {
                        continue;
                    }
                    let (lo, hi) = self.bucket(c as usize, r as usize);
                    for e in lo..hi {
                        candidates.push((self.entries[e], e as u32)); // lint:allow(L4) reason=entry count bounded by 4x segment count, far below u32::MAX
                    }
                }
            }
            candidates.sort_by_key(|&(sid, _)| sid);
            candidates.dedup_by_key(|&mut (sid, _)| sid);
            for (sid, e) in candidates {
                let e = e as usize;
                let d = point_segment_distance(
                    p,
                    Point::new(self.ax[e], self.ay[e]),
                    Point::new(self.bx[e], self.by[e]),
                );
                let better = match best {
                    None => true,
                    Some(b) => d < b.distance || (d == b.distance && sid < b.segment),
                };
                if better {
                    best = Some(SegmentHit {
                        segment: sid,
                        distance: d,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    fn cross_net() -> (RoadNetwork, Vec<SegmentId>) {
        // Horizontal road y=0 and vertical road x=500, both 1000 m long.
        let mut b = RoadNetworkBuilder::new();
        let w = b.add_node(Point::new(0.0, 0.0));
        let mid = b.add_node(Point::new(500.0, 0.0));
        let e = b.add_node(Point::new(1000.0, 0.0));
        let n = b.add_node(Point::new(500.0, 500.0));
        let s = b.add_node(Point::new(500.0, -500.0));
        let s0 = b.add_segment(w, mid, 13.9).unwrap();
        let s1 = b.add_segment(mid, e, 13.9).unwrap();
        let s2 = b.add_segment(mid, n, 13.9).unwrap();
        let s3 = b.add_segment(mid, s, 13.9).unwrap();
        (b.build().unwrap(), vec![s0, s1, s2, s3])
    }

    #[test]
    fn nearest_picks_closest_chord() {
        let (net, segs) = cross_net();
        let idx = SegmentIndex::build(&net, 100.0);
        let hit = idx.nearest(&net, Point::new(250.0, 30.0)).unwrap();
        assert_eq!(hit.segment, segs[0]);
        assert!((hit.distance - 30.0).abs() < 1e-9);
        let hit = idx.nearest(&net, Point::new(510.0, 250.0)).unwrap();
        assert_eq!(hit.segment, segs[2]);
    }

    #[test]
    fn nearest_far_from_everything_still_answers() {
        let (net, _) = cross_net();
        let idx = SegmentIndex::build(&net, 100.0);
        let hit = idx.nearest(&net, Point::new(-5000.0, 4000.0)).unwrap();
        assert!(hit.distance > 1000.0);
    }

    #[test]
    fn within_radius_returns_sorted_hits() {
        let (net, _) = cross_net();
        let idx = SegmentIndex::build(&net, 100.0);
        // The junction point is on all four chords.
        let hits = idx.within(&net, Point::new(500.0, 0.0), 10.0);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|h| h.distance == 0.0));
        // Sorted by id on distance ties.
        for w in hits.windows(2) {
            assert!(w[0].segment < w[1].segment);
        }
    }

    #[test]
    fn within_small_radius_excludes_far_segments() {
        let (net, segs) = cross_net();
        let idx = SegmentIndex::build(&net, 100.0);
        let hits = idx.within(&net, Point::new(100.0, 20.0), 25.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].segment, segs[0]);
    }

    #[test]
    fn empty_network_has_no_nearest() {
        let net = RoadNetworkBuilder::new().build().unwrap();
        let idx = SegmentIndex::build(&net, 100.0);
        assert!(idx.nearest(&net, Point::new(0.0, 0.0)).is_none());
        assert!(idx.within(&net, Point::new(0.0, 0.0), 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let net = RoadNetworkBuilder::new().build().unwrap();
        let _ = SegmentIndex::build(&net, 0.0);
    }

    #[test]
    fn nearest_agrees_with_exhaustive_scan() {
        let (net, _) = cross_net();
        let idx = SegmentIndex::build(&net, 73.0); // odd cell size
        for &(x, y) in &[
            (0.0, 0.0),
            (333.0, -77.0),
            (505.0, 499.0),
            (999.0, 1.0),
            (-200.0, -200.0),
            (500.0, 0.0),
        ] {
            let p = Point::new(x, y);
            let brute = net
                .segments()
                .map(|s| SegmentHit {
                    segment: s.id,
                    distance: point_segment_distance(p, net.position(s.a), net.position(s.b)),
                })
                .min_by(|a, b| {
                    a.distance
                        .total_cmp(&b.distance)
                        .then_with(|| a.segment.cmp(&b.segment))
                })
                .unwrap();
            let fast = idx.nearest(&net, p).unwrap();
            assert_eq!(fast.segment, brute.segment, "at {p}");
            assert!((fast.distance - brute.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn within_into_reuses_buffers_and_matches_within() {
        let (net, _) = cross_net();
        let idx = SegmentIndex::build(&net, 73.0);
        let mut scratch = GridScratch::new();
        let mut hits = Vec::new();
        for &(x, y, radius) in &[
            (500.0, 0.0, 10.0),
            (100.0, 20.0, 25.0),
            (333.0, -77.0, 300.0),
            (-200.0, -200.0, 5.0),
            (505.0, 499.0, 1200.0),
        ] {
            let p = Point::new(x, y);
            idx.within_into(p, radius, &mut scratch, &mut hits);
            let fresh = idx.within(&net, p, radius);
            assert_eq!(hits.len(), fresh.len(), "at {p} r={radius}");
            for (a, b) in hits.iter().zip(&fresh) {
                assert_eq!(a.segment, b.segment);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
    }
}
