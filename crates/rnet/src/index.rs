//! Uniform-grid spatial index over road segments.
//!
//! The map matcher must find candidate road segments near each GPS sample;
//! a uniform grid over segment bounding boxes answers nearest-segment and
//! radius queries in near-constant time for road networks, whose segments
//! are short (~125–170 m on the paper's maps) and evenly spread.

use crate::geometry::{point_segment_distance, Bbox, Point};
use crate::graph::RoadNetwork;
use crate::ids::SegmentId;

/// A candidate segment returned by a proximity query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentHit {
    /// The segment.
    pub segment: SegmentId,
    /// Distance from the query point to the segment chord, in metres.
    pub distance: f64,
}

/// Uniform-grid index over the chords of all segments in a network.
///
/// ```
/// use neat_rnet::{Point, RoadNetworkBuilder, SegmentIndex};
///
/// # fn main() -> Result<(), neat_rnet::RnetError> {
/// let mut b = RoadNetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(100.0, 0.0));
/// let s = b.add_segment(n0, n1, 13.9)?;
/// let net = b.build()?;
/// let idx = SegmentIndex::build(&net, 50.0);
/// let hit = idx.nearest(&net, Point::new(40.0, 5.0)).unwrap();
/// assert_eq!(hit.segment, s);
/// assert!((hit.distance - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SegmentIndex {
    origin: Point,
    cell: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<SegmentId>>,
}

impl SegmentIndex {
    /// Builds an index with the given cell size in metres.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let bbox = net.bbox().unwrap_or(Bbox {
            min: Point::new(0.0, 0.0),
            max: Point::new(0.0, 0.0),
        });
        let cols = ((bbox.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bbox.height() / cell_size).ceil() as usize).max(1);
        let mut idx = SegmentIndex {
            origin: bbox.min,
            cell: cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
        };
        for seg in net.segments() {
            let a = net.position(seg.a);
            let b = net.position(seg.b);
            let sb = Bbox::from_corners(a, b);
            let (c0, r0) = idx.cell_of(sb.min);
            let (c1, r1) = idx.cell_of(sb.max);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    idx.cells[r * idx.cols + c].push(seg.id);
                }
            }
        }
        idx
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = (((p.x - self.origin.x) / self.cell).floor() as isize)
            .clamp(0, self.cols as isize - 1) as usize;
        let r = (((p.y - self.origin.y) / self.cell).floor() as isize)
            .clamp(0, self.rows as isize - 1) as usize;
        (c, r)
    }

    /// All segments whose chord lies within `radius` of `p`, sorted by
    /// distance then segment id (deterministic).
    pub fn within(&self, net: &RoadNetwork, p: Point, radius: f64) -> Vec<SegmentHit> {
        let mut hits = Vec::new();
        let rings = (radius / self.cell).ceil() as isize + 1;
        let (pc, pr) = self.cell_of(p);
        let mut seen = std::collections::HashSet::new();
        for dr in -rings..=rings {
            for dc in -rings..=rings {
                let r = pr as isize + dr;
                let c = pc as isize + dc;
                if r < 0 || c < 0 || r >= self.rows as isize || c >= self.cols as isize {
                    continue;
                }
                for &sid in &self.cells[r as usize * self.cols + c as usize] {
                    if !seen.insert(sid) {
                        continue;
                    }
                    let seg = net.segment(sid).expect("indexed segment exists"); // lint:allow(L1) reason=grid cells only hold segment ids of the indexed network
                    let d = point_segment_distance(p, net.position(seg.a), net.position(seg.b));
                    if d <= radius {
                        hits.push(SegmentHit {
                            segment: sid,
                            distance: d,
                        });
                    }
                }
            }
        }
        hits.sort_by(|x, y| {
            x.distance
                .total_cmp(&y.distance)
                .then_with(|| x.segment.cmp(&y.segment))
        });
        hits
    }

    /// The nearest segment to `p`, searching outward ring by ring.
    /// Returns `None` only for a network with no segments.
    pub fn nearest(&self, net: &RoadNetwork, p: Point) -> Option<SegmentHit> {
        let max_rings = self.cols.max(self.rows) as isize + 1;
        let mut best: Option<SegmentHit> = None;
        let (pc, pr) = self.cell_of(p);
        for ring in 0..=max_rings {
            // Once we have a hit, we can stop after searching one ring
            // beyond the ring whose inner boundary exceeds the best distance.
            if let Some(b) = best {
                if (ring - 1) as f64 * self.cell > b.distance {
                    break;
                }
            }
            let mut candidates: Vec<SegmentId> = Vec::new();
            for dr in -ring..=ring {
                for dc in -ring..=ring {
                    if dr.abs() != ring && dc.abs() != ring {
                        continue; // only the ring boundary
                    }
                    let r = pr as isize + dr;
                    let c = pc as isize + dc;
                    if r < 0 || c < 0 || r >= self.rows as isize || c >= self.cols as isize {
                        continue;
                    }
                    candidates.extend(&self.cells[r as usize * self.cols + c as usize]);
                }
            }
            candidates.sort();
            candidates.dedup();
            for sid in candidates {
                let seg = net.segment(sid).expect("indexed segment exists"); // lint:allow(L1) reason=grid cells only hold segment ids of the indexed network
                let d = point_segment_distance(p, net.position(seg.a), net.position(seg.b));
                let better = match best {
                    None => true,
                    Some(b) => d < b.distance || (d == b.distance && sid < b.segment),
                };
                if better {
                    best = Some(SegmentHit {
                        segment: sid,
                        distance: d,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadNetworkBuilder;

    fn cross_net() -> (RoadNetwork, Vec<SegmentId>) {
        // Horizontal road y=0 and vertical road x=500, both 1000 m long.
        let mut b = RoadNetworkBuilder::new();
        let w = b.add_node(Point::new(0.0, 0.0));
        let mid = b.add_node(Point::new(500.0, 0.0));
        let e = b.add_node(Point::new(1000.0, 0.0));
        let n = b.add_node(Point::new(500.0, 500.0));
        let s = b.add_node(Point::new(500.0, -500.0));
        let s0 = b.add_segment(w, mid, 13.9).unwrap();
        let s1 = b.add_segment(mid, e, 13.9).unwrap();
        let s2 = b.add_segment(mid, n, 13.9).unwrap();
        let s3 = b.add_segment(mid, s, 13.9).unwrap();
        (b.build().unwrap(), vec![s0, s1, s2, s3])
    }

    #[test]
    fn nearest_picks_closest_chord() {
        let (net, segs) = cross_net();
        let idx = SegmentIndex::build(&net, 100.0);
        let hit = idx.nearest(&net, Point::new(250.0, 30.0)).unwrap();
        assert_eq!(hit.segment, segs[0]);
        assert!((hit.distance - 30.0).abs() < 1e-9);
        let hit = idx.nearest(&net, Point::new(510.0, 250.0)).unwrap();
        assert_eq!(hit.segment, segs[2]);
    }

    #[test]
    fn nearest_far_from_everything_still_answers() {
        let (net, _) = cross_net();
        let idx = SegmentIndex::build(&net, 100.0);
        let hit = idx.nearest(&net, Point::new(-5000.0, 4000.0)).unwrap();
        assert!(hit.distance > 1000.0);
    }

    #[test]
    fn within_radius_returns_sorted_hits() {
        let (net, _) = cross_net();
        let idx = SegmentIndex::build(&net, 100.0);
        // The junction point is on all four chords.
        let hits = idx.within(&net, Point::new(500.0, 0.0), 10.0);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|h| h.distance == 0.0));
        // Sorted by id on distance ties.
        for w in hits.windows(2) {
            assert!(w[0].segment < w[1].segment);
        }
    }

    #[test]
    fn within_small_radius_excludes_far_segments() {
        let (net, segs) = cross_net();
        let idx = SegmentIndex::build(&net, 100.0);
        let hits = idx.within(&net, Point::new(100.0, 20.0), 25.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].segment, segs[0]);
    }

    #[test]
    fn empty_network_has_no_nearest() {
        let net = RoadNetworkBuilder::new().build().unwrap();
        let idx = SegmentIndex::build(&net, 100.0);
        assert!(idx.nearest(&net, Point::new(0.0, 0.0)).is_none());
        assert!(idx.within(&net, Point::new(0.0, 0.0), 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_panics() {
        let net = RoadNetworkBuilder::new().build().unwrap();
        let _ = SegmentIndex::build(&net, 0.0);
    }

    #[test]
    fn nearest_agrees_with_exhaustive_scan() {
        let (net, _) = cross_net();
        let idx = SegmentIndex::build(&net, 73.0); // odd cell size
        for &(x, y) in &[
            (0.0, 0.0),
            (333.0, -77.0),
            (505.0, 499.0),
            (999.0, 1.0),
            (-200.0, -200.0),
            (500.0, 0.0),
        ] {
            let p = Point::new(x, y);
            let brute = net
                .segments()
                .map(|s| SegmentHit {
                    segment: s.id,
                    distance: point_segment_distance(p, net.position(s.a), net.position(s.b)),
                })
                .min_by(|a, b| {
                    a.distance
                        .total_cmp(&b.distance)
                        .then_with(|| a.segment.cmp(&b.segment))
                })
                .unwrap();
            let fast = idx.nearest(&net, p).unwrap();
            assert_eq!(fast.segment, brute.segment, "at {p}");
            assert!((fast.distance - brute.distance).abs() < 1e-9);
        }
    }
}
