//! The road-network graph `G = (V, E)` of Section II-A.
//!
//! Junction nodes carry planar coordinates; road segments connect two
//! junctions and carry a length, a speed limit and a direction flag. A
//! bidirectional road is a single [`Segment`] (both directed edges share one
//! `sid`, as in the paper). The adjacency operators of the paper are
//! provided directly: `L(e)` is [`RoadNetwork::adjacent_segments`],
//! `L_n(e)` is [`RoadNetwork::adjacent_segments_at`], and `I(ei, ej)` is
//! [`RoadNetwork::intersection_of`].

use crate::error::RnetError;
use crate::geometry::{Bbox, Point};
use crate::ids::{NodeId, SegmentId};
use serde::{Deserialize, Serialize};

/// A junction node of the road network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier (dense index).
    pub id: NodeId,
    /// Planar position of the junction in metres.
    pub position: Point,
}

/// A road segment connecting two junctions.
///
/// The segment direction of travel is `a → b`; when `oneway` is `false` the
/// segment may also be travelled `b → a` (the paper's edge pair
/// `(sid, ni nj)`, `(sid, nj ni)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Identifier (the paper's `sid`).
    pub id: SegmentId,
    /// Start junction.
    pub a: NodeId,
    /// End junction.
    pub b: NodeId,
    /// Polyline length in metres (≥ the chord between `a` and `b`).
    pub length: f64,
    /// Speed limit in metres per second.
    pub speed_limit: f64,
    /// `true` if travel is only permitted from `a` to `b`.
    pub oneway: bool,
}

impl Segment {
    /// The endpoint opposite `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this segment.
    pub fn other_endpoint(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n} is not an endpoint of segment {}", self.id) // lint:allow(L1) reason=documented precondition: n must be one of the segment's endpoints
        }
    }

    /// Whether `n` is one of this segment's endpoints.
    pub fn has_endpoint(&self, n: NodeId) -> bool {
        n == self.a || n == self.b
    }

    /// Whether the segment can be travelled from `from` towards the other
    /// endpoint, honouring the one-way restriction.
    pub fn traversable_from(&self, from: NodeId) -> bool {
        from == self.a || (!self.oneway && from == self.b)
    }

    /// Free-flow travel time over the full segment in seconds.
    pub fn travel_time(&self) -> f64 {
        self.length / self.speed_limit
    }
}

/// Aggregate statistics of a road network, matching the columns of Table I
/// in the paper (junctions, segments, total and average segment length,
/// junction degree).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Number of junction nodes.
    pub junctions: usize,
    /// Number of road segments.
    pub segments: usize,
    /// Sum of segment lengths in kilometres.
    pub total_length_km: f64,
    /// Mean segment length in metres.
    pub avg_segment_length_m: f64,
    /// Mean junction degree (segments incident per junction).
    pub avg_degree: f64,
    /// Maximum junction degree.
    pub max_degree: usize,
}

/// An immutable road-network graph.
///
/// Build one with [`RoadNetworkBuilder`]:
///
/// ```
/// use neat_rnet::{Point, RoadNetworkBuilder};
///
/// # fn main() -> Result<(), neat_rnet::RnetError> {
/// let mut b = RoadNetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(100.0, 0.0));
/// let n2 = b.add_node(Point::new(100.0, 100.0));
/// b.add_segment(n0, n1, 13.9)?;
/// b.add_segment(n1, n2, 13.9)?;
/// let net = b.build()?;
/// assert_eq!(net.node_count(), 3);
/// assert_eq!(net.segment_count(), 2);
/// assert_eq!(net.degree(n1), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadNetwork {
    nodes: Vec<Node>,
    segments: Vec<Segment>,
    /// Segments incident to each node, sorted by segment id.
    incident: Vec<Vec<SegmentId>>,
}

impl RoadNetwork {
    /// Number of junction nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of road segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`RnetError::UnknownNode`] if the id is out of range.
    pub fn node(&self, id: NodeId) -> Result<&Node, RnetError> {
        self.nodes.get(id.index()).ok_or(RnetError::UnknownNode(id))
    }

    /// Looks up a segment.
    ///
    /// # Errors
    ///
    /// Returns [`RnetError::UnknownSegment`] if the id is out of range.
    pub fn segment(&self, id: SegmentId) -> Result<&Segment, RnetError> {
        self.segments
            .get(id.index())
            .ok_or(RnetError::UnknownSegment(id))
    }

    /// Position of a node. Panics on an invalid id; use [`RoadNetwork::node`]
    /// for fallible lookup.
    pub fn position(&self, id: NodeId) -> Point {
        self.nodes[id.index()].position
    }

    /// Iterates over all nodes in id order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterates over all segments in id order.
    pub fn segments(&self) -> impl ExactSizeIterator<Item = &Segment> {
        self.segments.iter()
    }

    /// Segments incident to junction `n`, sorted by id.
    pub fn incident_segments(&self, n: NodeId) -> &[SegmentId] {
        &self.incident[n.index()]
    }

    /// Junction degree of `n` (number of incident segments).
    pub fn degree(&self, n: NodeId) -> usize {
        self.incident[n.index()].len()
    }

    /// The paper's `L_n(e)`: segments adjacent to `seg` that connect to it
    /// at junction `n` (excluding `seg` itself). Empty when `n` is a
    /// dead-end endpoint of `seg`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of `seg`.
    pub fn adjacent_segments_at(&self, seg: SegmentId, n: NodeId) -> Vec<SegmentId> {
        let s = &self.segments[seg.index()];
        assert!(
            s.has_endpoint(n),
            "node {n} is not an endpoint of segment {seg}"
        );
        self.incident[n.index()]
            .iter()
            .copied()
            .filter(|&other| other != seg)
            .collect()
    }

    /// The paper's `L(e) = L_a(e) ∪ L_b(e)`: all segments sharing an
    /// endpoint with `seg`.
    pub fn adjacent_segments(&self, seg: SegmentId) -> Vec<SegmentId> {
        let s = &self.segments[seg.index()];
        let mut out = self.adjacent_segments_at(seg, s.a);
        for other in self.adjacent_segments_at(seg, s.b) {
            // A parallel segment can touch `seg` at both endpoints; list it once.
            if !out.contains(&other) {
                out.push(other);
            }
        }
        out
    }

    /// The paper's `I(ei, ej)`: the junction shared by two adjacent
    /// segments, or `None` when they do not touch. When two segments share
    /// both endpoints (parallel roads) the endpoint with the smaller id is
    /// returned, keeping the operator deterministic.
    pub fn intersection_of(&self, ei: SegmentId, ej: SegmentId) -> Option<NodeId> {
        let (si, sj) = (&self.segments[ei.index()], &self.segments[ej.index()]);
        // Allocation-free (this sits on the phase-1 transition hot path):
        // of the up-to-two shared endpoints, return the smallest id —
        // exactly what collect-sort-first used to produce.
        let a = sj.has_endpoint(si.a).then_some(si.a);
        let b = sj.has_endpoint(si.b).then_some(si.b);
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    /// Whether the ordered list of segments forms a route (Section II-A): a
    /// network path where each consecutive pair is adjacent, and consecutive
    /// pairs connect end-to-end rather than pivoting on a shared junction.
    ///
    /// An empty list and a single segment are trivially routes.
    pub fn is_route(&self, segs: &[SegmentId]) -> bool {
        if segs.len() < 2 {
            return true;
        }
        // Determine the junction chain: each consecutive pair must share a
        // junction, and the shared junctions must alternate along the route
        // (the route must leave each segment via the endpoint it did not
        // enter from).
        let mut entry: Option<NodeId> = None;
        for w in segs.windows(2) {
            if w[0] == w[1] {
                // A segment is not adjacent to itself: L(e) excludes e.
                return false;
            }
            let shared = match self.intersection_of(w[0], w[1]) {
                Some(n) => n,
                None => return false,
            };
            let s0 = &self.segments[w[0].index()];
            if let Some(e) = entry {
                // Must exit w[0] via the endpoint opposite where we entered.
                if s0.other_endpoint(e) != shared {
                    // Parallel segments share both endpoints; allow exiting
                    // via the other shared junction when available.
                    let s1 = &self.segments[w[1].index()];
                    let alt = s0.other_endpoint(e);
                    if !s1.has_endpoint(alt) {
                        return false;
                    }
                    entry = Some(alt);
                    continue;
                }
            }
            entry = Some(shared);
        }
        true
    }

    /// Straight-line distance between two junctions — the Euclidean lower
    /// bound (ELB) of the network distance used in Phase 3 of NEAT.
    pub fn euclidean_distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance(self.position(b))
    }

    /// Bounding box of all node positions.
    ///
    /// # Errors
    ///
    /// Returns [`RnetError::EmptyNetwork`] when the network has no nodes.
    pub fn bbox(&self) -> Result<Bbox, RnetError> {
        if self.nodes.is_empty() {
            return Err(RnetError::EmptyNetwork);
        }
        let mut b = Bbox::empty();
        for n in &self.nodes {
            b.expand(n.position);
        }
        Ok(b)
    }

    /// Extracts the sub-network inside `clip`: the nodes whose positions
    /// lie in the box, and the segments with *both* endpoints retained.
    /// Node and segment ids are re-assigned densely; the returned map
    /// gives, for each new segment id, the original segment id (index =
    /// new id).
    ///
    /// Useful for studying a district of a large map, or shrinking a
    /// generated network to a region of interest.
    pub fn clip(&self, clip: Bbox) -> (RoadNetwork, Vec<SegmentId>) {
        let mut builder = RoadNetworkBuilder::new();
        let mut node_map: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for n in &self.nodes {
            if clip.contains(n.position) {
                node_map[n.id.index()] = Some(builder.add_node(n.position));
            }
        }
        let mut segment_map = Vec::new();
        for s in &self.segments {
            if let (Some(a), Some(b)) = (node_map[s.a.index()], node_map[s.b.index()]) {
                builder
                    .add_segment_detailed(a, b, s.length, s.speed_limit, s.oneway)
                    .expect("clipped segment stays valid"); // lint:allow(L1) reason=clipping preserves segment validity (distinct endpoints, positive length)
                segment_map.push(s.id);
            }
        }
        (
            builder.build().expect("clipped network is valid"), // lint:allow(L1) reason=the clipped network is a subgraph of an already-valid network
            segment_map,
        )
    }

    /// Computes the Table-I style aggregate statistics of this network.
    pub fn stats(&self) -> NetworkStats {
        let total: f64 = self.segments.iter().map(|s| s.length).sum();
        let degrees: Vec<usize> = self.incident.iter().map(Vec::len).collect();
        let junctions = self.nodes.len();
        NetworkStats {
            junctions,
            segments: self.segments.len(),
            total_length_km: total / 1000.0,
            avg_segment_length_m: if self.segments.is_empty() {
                0.0
            } else {
                total / self.segments.len() as f64
            },
            avg_degree: if junctions == 0 {
                0.0
            } else {
                degrees.iter().sum::<usize>() as f64 / junctions as f64
            },
            max_degree: degrees.into_iter().max().unwrap_or(0),
        }
    }

    /// Whether every node can reach every other node ignoring one-way
    /// restrictions (the generators guarantee this).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(n) = stack.pop() {
            for &sid in self.incident_segments(n) {
                let other = self.segments[sid.index()].other_endpoint(n);
                if !seen[other.index()] {
                    seen[other.index()] = true;
                    count += 1;
                    stack.push(other);
                }
            }
        }
        count == self.nodes.len()
    }
}

/// Incremental builder for [`RoadNetwork`].
///
/// Nodes and segments are validated as they are added; [`RoadNetworkBuilder::build`]
/// finalises the adjacency structure.
#[derive(Debug, Clone, Default)]
pub struct RoadNetworkBuilder {
    nodes: Vec<Node>,
    segments: Vec<Segment>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with preallocated capacity.
    pub fn with_capacity(nodes: usize, segments: usize) -> Self {
        RoadNetworkBuilder {
            nodes: Vec::with_capacity(nodes),
            segments: Vec::with_capacity(segments),
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of segments added so far.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Adds a junction at `position`, returning its id.
    pub fn add_node(&mut self, position: Point) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node { id, position });
        id
    }

    /// Adds a bidirectional segment between `a` and `b` whose length is the
    /// straight-line distance between the endpoints.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is unknown, the segment is a
    /// self-loop or the speed limit is non-positive.
    pub fn add_segment(
        &mut self,
        a: NodeId,
        b: NodeId,
        speed_limit: f64,
    ) -> Result<SegmentId, RnetError> {
        let length = self.chord(a, b)?;
        self.add_segment_detailed(a, b, length, speed_limit, false)
    }

    /// Adds a segment with explicit length, speed limit and direction.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is unknown, the segment is a
    /// self-loop, the length is shorter than the chord between the
    /// endpoints, or the speed limit is non-positive.
    pub fn add_segment_detailed(
        &mut self,
        a: NodeId,
        b: NodeId,
        length: f64,
        speed_limit: f64,
        oneway: bool,
    ) -> Result<SegmentId, RnetError> {
        let chord = self.chord(a, b)?;
        if a == b {
            return Err(RnetError::SelfLoop(a));
        }
        let id = SegmentId::new(self.segments.len());
        if length < chord - 1e-6 {
            return Err(RnetError::LengthShorterThanChord {
                segment: id,
                declared: length,
                chord,
            });
        }
        if speed_limit <= 0.0 {
            return Err(RnetError::NonPositiveSpeed(id));
        }
        self.segments.push(Segment {
            id,
            a,
            b,
            length,
            speed_limit,
            oneway,
        });
        Ok(id)
    }

    fn chord(&self, a: NodeId, b: NodeId) -> Result<f64, RnetError> {
        let pa = self
            .nodes
            .get(a.index())
            .ok_or(RnetError::UnknownNode(a))?
            .position;
        let pb = self
            .nodes
            .get(b.index())
            .ok_or(RnetError::UnknownNode(b))?
            .position;
        Ok(pa.distance(pb))
    }

    /// Finalises the network, computing per-node incidence lists.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (all validation happens during
    /// insertion) but returns `Result` so future invariants can be added
    /// without breaking callers.
    pub fn build(self) -> Result<RoadNetwork, RnetError> {
        let mut incident = vec![Vec::new(); self.nodes.len()];
        for s in &self.segments {
            incident[s.a.index()].push(s.id);
            incident[s.b.index()].push(s.id);
        }
        for list in &mut incident {
            list.sort();
        }
        Ok(RoadNetwork {
            nodes: self.nodes,
            segments: self.segments,
            incident,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the small network of Figure 1(b): a hub n2 connected to
    /// n1, n3, n4 and n5.
    fn star_network() -> (RoadNetwork, Vec<NodeId>, Vec<SegmentId>) {
        let mut b = RoadNetworkBuilder::new();
        let n1 = b.add_node(Point::new(-100.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 0.0));
        let n3 = b.add_node(Point::new(100.0, 50.0));
        let n4 = b.add_node(Point::new(100.0, 0.0));
        let n5 = b.add_node(Point::new(100.0, -50.0));
        let s12 = b.add_segment(n1, n2, 13.9).unwrap();
        let s23 = b.add_segment(n2, n3, 13.9).unwrap();
        let s24 = b.add_segment(n2, n4, 13.9).unwrap();
        let s25 = b.add_segment(n2, n5, 13.9).unwrap();
        let net = b.build().unwrap();
        (net, vec![n1, n2, n3, n4, n5], vec![s12, s23, s24, s25])
    }

    #[test]
    fn build_counts_and_degrees() {
        let (net, nodes, _) = star_network();
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.segment_count(), 4);
        assert_eq!(net.degree(nodes[1]), 4);
        assert_eq!(net.degree(nodes[0]), 1);
    }

    #[test]
    fn adjacency_at_junction_matches_paper_operator() {
        let (net, nodes, segs) = star_network();
        // L_{n2}(s12) = {s23, s24, s25}
        let adj = net.adjacent_segments_at(segs[0], nodes[1]);
        assert_eq!(adj, vec![segs[1], segs[2], segs[3]]);
        // L_{n1}(s12) = ∅ (dead end)
        assert!(net.adjacent_segments_at(segs[0], nodes[0]).is_empty());
        // L(s12) = union of both.
        assert_eq!(net.adjacent_segments(segs[0]).len(), 3);
    }

    #[test]
    fn intersection_operator() {
        let (net, nodes, segs) = star_network();
        assert_eq!(net.intersection_of(segs[0], segs[1]), Some(nodes[1]));
        assert_eq!(net.intersection_of(segs[1], segs[3]), Some(nodes[1]));
        // Non-adjacent pair: none. (All pairs share n2 here, so build a
        // two-component case instead.)
        let mut b = RoadNetworkBuilder::new();
        let a0 = b.add_node(Point::new(0.0, 0.0));
        let a1 = b.add_node(Point::new(1.0, 0.0));
        let a2 = b.add_node(Point::new(5.0, 5.0));
        let a3 = b.add_node(Point::new(6.0, 5.0));
        let s0 = b.add_segment(a0, a1, 10.0).unwrap();
        let s1 = b.add_segment(a2, a3, 10.0).unwrap();
        let net2 = b.build().unwrap();
        assert_eq!(net2.intersection_of(s0, s1), None);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let n = b.add_node(Point::new(0.0, 0.0));
        assert_eq!(b.add_segment(n, n, 10.0), Err(RnetError::SelfLoop(n)));
    }

    #[test]
    fn short_length_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let err = b.add_segment_detailed(a, c, 50.0, 10.0, false).unwrap_err();
        assert!(matches!(err, RnetError::LengthShorterThanChord { .. }));
    }

    #[test]
    fn longer_than_chord_accepted() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        // A curved road 120 m long between junctions 100 m apart.
        let s = b.add_segment_detailed(a, c, 120.0, 10.0, false).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.segment(s).unwrap().length, 120.0);
    }

    #[test]
    fn non_positive_speed_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        assert!(matches!(
            b.add_segment(a, c, 0.0),
            Err(RnetError::NonPositiveSpeed(_))
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let ghost = NodeId::new(99);
        assert_eq!(
            b.add_segment(a, ghost, 10.0),
            Err(RnetError::UnknownNode(ghost))
        );
    }

    #[test]
    fn route_detection() {
        let mut b = RoadNetworkBuilder::new();
        let n: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        let spur = b.add_node(Point::new(100.0, 100.0));
        let s01 = b.add_segment(n[0], n[1], 10.0).unwrap();
        let s12 = b.add_segment(n[1], n[2], 10.0).unwrap();
        let s23 = b.add_segment(n[2], n[3], 10.0).unwrap();
        let s1s = b.add_segment(n[1], spur, 10.0).unwrap();
        let net = b.build().unwrap();
        assert!(net.is_route(&[s01, s12, s23]));
        assert!(net.is_route(&[s01]));
        assert!(net.is_route(&[]));
        // s01 then s23 skips a segment: not a route.
        assert!(!net.is_route(&[s01, s23]));
        // s01 → s1s is a valid turn at n1.
        assert!(net.is_route(&[s01, s1s]));
        // Entering n1 via s01 and "continuing" via s01 again is not a route.
        assert!(!net.is_route(&[s01, s01, s12]));
        // Pivot: s12 then s1s enters n1 twice — s01→s12 then back out s1s
        // would pivot on n1 after traversing to n2; s01, s12, s1s is invalid
        // because s1s does not touch n2.
        assert!(!net.is_route(&[s01, s12, s1s]));
    }

    #[test]
    fn traversable_respects_oneway() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let s = b.add_segment_detailed(a, c, 100.0, 10.0, true).unwrap();
        let net = b.build().unwrap();
        let seg = net.segment(s).unwrap();
        assert!(seg.traversable_from(a));
        assert!(!seg.traversable_from(c));
        assert_eq!(seg.travel_time(), 10.0);
    }

    #[test]
    fn stats_match_hand_computation() {
        let (net, _, _) = star_network();
        let st = net.stats();
        assert_eq!(st.junctions, 5);
        assert_eq!(st.segments, 4);
        // Degrees: n2 has 4, leaves have 1 → avg = 8/5.
        assert!((st.avg_degree - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(st.max_degree, 4);
        let expected_total = (100.0 + 100.0f64.hypot(50.0) + 100.0 + 100.0f64.hypot(50.0)) / 1000.0;
        assert!((st.total_length_km - expected_total).abs() < 1e-9);
    }

    #[test]
    fn connectivity_check() {
        let (net, _, _) = star_network();
        assert!(net.is_connected());
        let mut b = RoadNetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        b.add_node(Point::new(10.0, 0.0));
        let net2 = b.build().unwrap();
        assert!(!net2.is_connected());
    }

    #[test]
    fn bbox_and_empty_network() {
        let (net, _, _) = star_network();
        let bb = net.bbox().unwrap();
        assert_eq!(bb.min, Point::new(-100.0, -50.0));
        assert_eq!(bb.max, Point::new(100.0, 50.0));
        let empty = RoadNetworkBuilder::new().build().unwrap();
        assert_eq!(empty.bbox(), Err(RnetError::EmptyNetwork));
        assert!(empty.is_connected());
    }

    #[test]
    fn clip_keeps_interior_segments() {
        // 1x3 chain at y=0, x = 0,100,200,300; clip to x in [50, 250].
        let mut b = RoadNetworkBuilder::new();
        let n: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        for w in n.windows(2) {
            b.add_segment(w[0], w[1], 10.0).unwrap();
        }
        let net = b.build().unwrap();
        let (clipped, map) = net.clip(Bbox {
            min: Point::new(50.0, -10.0),
            max: Point::new(250.0, 10.0),
        });
        // Nodes at x=100 and x=200 survive; only the middle segment does.
        assert_eq!(clipped.node_count(), 2);
        assert_eq!(clipped.segment_count(), 1);
        assert_eq!(map, vec![SegmentId::new(1)]);
        // Properties carried over.
        let seg = clipped.segments().next().unwrap();
        assert_eq!(seg.length, 100.0);
        assert_eq!(seg.speed_limit, 10.0);
    }

    #[test]
    fn clip_of_everything_is_identity_shaped() {
        let (net, _, _) = star_network();
        let bb = net.bbox().unwrap();
        let (clipped, map) = net.clip(bb);
        assert_eq!(clipped.node_count(), net.node_count());
        assert_eq!(clipped.segment_count(), net.segment_count());
        assert_eq!(map.len(), net.segment_count());
    }

    #[test]
    fn clip_of_nothing_is_empty() {
        let (net, _, _) = star_network();
        let (clipped, map) = net.clip(Bbox {
            min: Point::new(9000.0, 9000.0),
            max: Point::new(9100.0, 9100.0),
        });
        assert_eq!(clipped.node_count(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn other_endpoint_both_directions() {
        let (net, nodes, segs) = star_network();
        let s = net.segment(segs[0]).unwrap();
        assert_eq!(s.other_endpoint(nodes[0]), nodes[1]);
        assert_eq!(s.other_endpoint(nodes[1]), nodes[0]);
    }

    #[test]
    #[should_panic]
    fn other_endpoint_panics_for_foreign_node() {
        let (net, nodes, segs) = star_network();
        let s = net.segment(segs[0]).unwrap();
        let _ = s.other_endpoint(nodes[4]);
    }
}
