//! Planar geometry primitives.
//!
//! The paper works in projected map coordinates (metres). All geometry here
//! is 2-D Euclidean: points, distances and point-to-segment projection,
//! which the map matcher and the Euclidean-lower-bound (ELB) filter of NEAT
//! Phase 3 rely on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in projected planar coordinates (metres).
///
/// ```
/// use neat_rnet::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from metre coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance — avoids the square root for comparisons.
    pub fn distance_sq(self, other: Point) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Length of this point treated as a vector from the origin.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product with `other` treated as vectors.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component) with `other` treated as vectors.
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t == 0`, `other` at `t == 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// Result of projecting a point onto a line segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Closest point on the segment.
    pub point: Point,
    /// Parameter along the segment, clamped to `[0, 1]`.
    pub t: f64,
    /// Euclidean distance from the query point to [`Projection::point`].
    pub distance: f64,
}

/// Projects `p` onto the segment `a`–`b`, clamping to the endpoints.
///
/// Used by the map matcher to snap GPS samples onto candidate road segments
/// and by the spatial index for distance queries.
///
/// ```
/// use neat_rnet::Point;
/// use neat_rnet::geometry::project_onto_segment;
/// let pr = project_onto_segment(Point::new(1.0, 1.0), Point::new(0.0, 0.0), Point::new(2.0, 0.0));
/// assert_eq!(pr.point, Point::new(1.0, 0.0));
/// assert_eq!(pr.distance, 1.0);
/// assert_eq!(pr.t, 0.5);
/// ```
pub fn project_onto_segment(p: Point, a: Point, b: Point) -> Projection {
    let ab = b - a;
    let len_sq = ab.dot(ab);
    let t = if len_sq <= f64::EPSILON {
        0.0
    } else {
        ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0)
    };
    let point = a.lerp(b, t);
    Projection {
        point,
        t,
        distance: p.distance(point),
    }
}

/// Distance from point `p` to the segment `a`–`b`.
pub fn point_segment_distance(p: Point, a: Point, b: Point) -> f64 {
    project_onto_segment(p, a, b).distance
}

/// Projects a *run* of points onto one segment chord — the widened,
/// slice-in/slice-out form of [`project_onto_segment`] used to snap
/// consecutive samples that share a matched segment.
///
/// `out_x`/`out_y` are cleared and filled with the snapped coordinates.
/// Each element goes through exactly the floating-point operations of
/// [`project_onto_segment`] in the same order, so the results are
/// bit-identical to point-at-a-time calls; the segment-dependent terms
/// (`b − a`, its squared length and the degeneracy test) are hoisted out
/// of the loop, which they do not vary across, leaving a branch-light
/// body the compiler can unroll and vectorise.
pub fn project_run_onto_segment(
    xs: &[f64],
    ys: &[f64],
    a: Point,
    b: Point,
    out_x: &mut Vec<f64>,
    out_y: &mut Vec<f64>,
) {
    debug_assert_eq!(xs.len(), ys.len());
    let ab = b - a;
    let len_sq = ab.dot(ab);
    out_x.clear();
    out_y.clear();
    out_x.reserve(xs.len());
    out_y.reserve(xs.len());
    if len_sq <= f64::EPSILON {
        // Degenerate chord: every point snaps to t = 0. Evaluated through
        // the same `a + ab·t` arithmetic as the scalar path so signed
        // zeros round-trip bit-identically.
        out_x.extend(xs.iter().map(|_| a.x + ab.x * 0.0));
        out_y.extend(ys.iter().map(|_| a.y + ab.y * 0.0));
        return;
    }
    for (&px, &py) in xs.iter().zip(ys) {
        let t = (((px - a.x) * ab.x + (py - a.y) * ab.y) / len_sq).clamp(0.0, 1.0);
        out_x.push(a.x + ab.x * t);
        out_y.push(a.y + ab.y * t);
    }
}

/// Distances from one point to a *run* of segment chords — the widened
/// form of [`point_segment_distance`] used by the grid index to score a
/// cell's candidate segments from their inlined endpoint arrays.
///
/// `out` is cleared and filled with one distance per chord. Per element
/// the floating-point operations replicate [`project_onto_segment`]
/// followed by [`Point::distance`] exactly (including the final
/// `hypot`, kept for bit-identity even though it costs a libm call per
/// element), so results match point-at-a-time evaluation bit for bit.
pub fn point_to_segments_distances(
    p: Point,
    ax: &[f64],
    ay: &[f64],
    bx: &[f64],
    by: &[f64],
    out: &mut Vec<f64>,
) {
    debug_assert!(ax.len() == ay.len() && ax.len() == bx.len() && ax.len() == by.len());
    out.clear();
    out.reserve(ax.len());
    for i in 0..ax.len() {
        let (ax_i, ay_i) = (ax[i], ay[i]);
        let abx = bx[i] - ax_i;
        let aby = by[i] - ay_i;
        let len_sq = abx * abx + aby * aby;
        let t = if len_sq <= f64::EPSILON {
            0.0
        } else {
            (((p.x - ax_i) * abx + (p.y - ay_i) * aby) / len_sq).clamp(0.0, 1.0)
        };
        let qx = ax_i + abx * t;
        let qy = ay_i + aby * t;
        out.push((p.x - qx).hypot(p.y - qy));
    }
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bbox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Bbox {
    /// An empty (inverted) box ready to be [`Bbox::expand`]ed.
    pub fn empty() -> Self {
        Bbox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Box spanning exactly the two corner points.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Bbox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Width in metres (zero for an empty box).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height in metres (zero for an empty box).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Whether the box contains the point (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether this box is valid (non-inverted).
    pub fn is_valid(&self) -> bool {
        self.min.x <= self.max.x && self.min.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let before = project_onto_segment(Point::new(-5.0, 3.0), a, b);
        assert_eq!(before.point, a);
        assert_eq!(before.t, 0.0);
        let after = project_onto_segment(Point::new(9.0, -2.0), a, b);
        assert_eq!(after.point, b);
        assert_eq!(after.t, 1.0);
    }

    #[test]
    fn projection_of_degenerate_segment() {
        let a = Point::new(2.0, 2.0);
        let pr = project_onto_segment(Point::new(5.0, 6.0), a, a);
        assert_eq!(pr.point, a);
        assert_eq!(pr.distance, 5.0);
    }

    #[test]
    fn bbox_expansion_and_contains() {
        let mut b = Bbox::empty();
        assert!(!b.is_valid());
        b.expand(Point::new(1.0, 1.0));
        b.expand(Point::new(-1.0, 4.0));
        assert!(b.is_valid());
        assert!(b.contains(Point::new(0.0, 2.0)));
        assert!(!b.contains(Point::new(2.0, 2.0)));
        assert_eq!(b.width(), 2.0);
        assert_eq!(b.height(), 3.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn cross_sign_orientation() {
        let e1 = Point::new(1.0, 0.0);
        let e2 = Point::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0);
        assert!(e2.cross(e1) < 0.0);
    }

    #[test]
    fn run_projection_handles_degenerate_chord() {
        let a = Point::new(2.0, 2.0);
        let (mut ox, mut oy) = (Vec::new(), Vec::new());
        project_run_onto_segment(&[5.0, -1.0], &[6.0, 2.0], a, a, &mut ox, &mut oy);
        for i in 0..2 {
            let pr = project_onto_segment(Point::new([5.0, -1.0][i], [6.0, 2.0][i]), a, a);
            assert_eq!(ox[i].to_bits(), pr.point.x.to_bits());
            assert_eq!(oy[i].to_bits(), pr.point.y.to_bits());
        }
    }

    proptest! {
        #[test]
        fn prop_run_projection_is_bit_identical(
            pts in proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64), 0..40),
            ax in -1e4..1e4f64, ay in -1e4..1e4f64,
            bx in -1e4..1e4f64, by in -1e4..1e4f64,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            let (mut ox, mut oy) = (Vec::new(), Vec::new());
            project_run_onto_segment(&xs, &ys, a, b, &mut ox, &mut oy);
            for (i, &(px, py)) in pts.iter().enumerate() {
                let pr = project_onto_segment(Point::new(px, py), a, b);
                prop_assert_eq!(ox[i].to_bits(), pr.point.x.to_bits());
                prop_assert_eq!(oy[i].to_bits(), pr.point.y.to_bits());
            }
        }

        #[test]
        fn prop_segments_distances_are_bit_identical(
            segs in proptest::collection::vec(
                (-1e4..1e4f64, -1e4..1e4f64, -1e4..1e4f64, -1e4..1e4f64), 0..40),
            px in -1e4..1e4f64, py in -1e4..1e4f64,
        ) {
            let p = Point::new(px, py);
            let ax: Vec<f64> = segs.iter().map(|s| s.0).collect();
            let ay: Vec<f64> = segs.iter().map(|s| s.1).collect();
            let bx: Vec<f64> = segs.iter().map(|s| s.2).collect();
            let by: Vec<f64> = segs.iter().map(|s| s.3).collect();
            let mut out = Vec::new();
            point_to_segments_distances(p, &ax, &ay, &bx, &by, &mut out);
            for (i, &(sax, say, sbx, sby)) in segs.iter().enumerate() {
                let d = point_segment_distance(p, Point::new(sax, say), Point::new(sbx, sby));
                prop_assert_eq!(out[i].to_bits(), d.to_bits());
            }
        }

        #[test]
        fn prop_triangle_inequality(ax in -1e4..1e4f64, ay in -1e4..1e4f64,
                                    bx in -1e4..1e4f64, by in -1e4..1e4f64,
                                    cx in -1e4..1e4f64, cy in -1e4..1e4f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        #[test]
        fn prop_projection_is_closest_point(px in -100.0..100.0f64, py in -100.0..100.0f64,
                                            t in 0.0..1.0f64) {
            let a = Point::new(-50.0, 10.0);
            let b = Point::new(60.0, -20.0);
            let p = Point::new(px, py);
            let pr = project_onto_segment(p, a, b);
            // Any other point on the segment is at least as far away.
            let other = a.lerp(b, t);
            prop_assert!(pr.distance <= p.distance(other) + 1e-9);
        }

        #[test]
        fn prop_projection_point_is_on_segment(px in -100.0..100.0f64, py in -100.0..100.0f64) {
            let a = Point::new(0.0, 0.0);
            let b = Point::new(100.0, 50.0);
            let pr = project_onto_segment(Point::new(px, py), a, b);
            prop_assert!(pr.t >= 0.0 && pr.t <= 1.0);
            // The projected point must satisfy the segment parametrisation.
            let expect = a.lerp(b, pr.t);
            prop_assert!(pr.point.distance(expect) < 1e-9);
        }
    }
}
