//! Plain-text road-network I/O.
//!
//! Networks are stored in a simple line format so generated maps can be
//! exchanged with external tools (and so experiments can pin the exact
//! network they ran on):
//!
//! ```text
//! # comments / blank lines are skipped
//! node,<id>,<x>,<y>
//! segment,<id>,<a>,<b>,<length>,<speed_limit>,<oneway 0|1>
//! ```
//!
//! Node and segment ids must be dense and in order (the builder assigns
//! them that way).

use crate::error::RnetError;
use crate::geometry::Point;
use crate::graph::{RoadNetwork, RoadNetworkBuilder};
use crate::ids::NodeId;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while reading a network file.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetIoError {
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A structural invariant failed while rebuilding the network.
    Invalid(RnetError),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for NetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetIoError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetIoError::Invalid(e) => write!(f, "invalid network: {e}"),
            NetIoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for NetIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetIoError::Io(e) => Some(e),
            NetIoError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetIoError {
    fn from(e: std::io::Error) -> Self {
        NetIoError::Io(e)
    }
}

impl From<RnetError> for NetIoError {
    fn from(e: RnetError) -> Self {
        NetIoError::Invalid(e)
    }
}

/// Writes a network in the line format described in the module docs.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_network<W: Write>(net: &RoadNetwork, mut w: W) -> Result<(), NetIoError> {
    writeln!(
        w,
        "# road network: {} nodes, {} segments",
        net.node_count(),
        net.segment_count()
    )?;
    for n in net.nodes() {
        writeln!(w, "node,{},{},{}", n.id.index(), n.position.x, n.position.y)?;
    }
    for s in net.segments() {
        writeln!(
            w,
            "segment,{},{},{},{},{},{}",
            s.id.index(),
            s.a.index(),
            s.b.index(),
            s.length,
            s.speed_limit,
            u8::from(s.oneway)
        )?;
    }
    Ok(())
}

/// Reads a network written by [`write_network`].
///
/// # Errors
///
/// Returns [`NetIoError::Parse`] with the line number for malformed input
/// and [`NetIoError::Invalid`] for structurally invalid networks.
pub fn read_network<R: BufRead>(r: R) -> Result<RoadNetwork, NetIoError> {
    let mut b = RoadNetworkBuilder::new();
    for (lineno, line) in r.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| NetIoError::Parse {
            line: lineno,
            message,
        };
        let fields: Vec<&str> = line.split(',').collect();
        match fields.first().copied() {
            Some("node") => {
                if fields.len() != 4 {
                    return Err(err(format!("node needs 4 fields, got {}", fields.len())));
                }
                let id: usize = fields[1]
                    .parse()
                    .map_err(|_| err(format!("bad node id `{}`", fields[1])))?;
                if id != b.node_count() {
                    return Err(err(format!(
                        "node ids must be dense and ordered; expected {}, got {id}",
                        b.node_count()
                    )));
                }
                let x: f64 = fields[2]
                    .parse()
                    .map_err(|_| err(format!("bad x `{}`", fields[2])))?;
                let y: f64 = fields[3]
                    .parse()
                    .map_err(|_| err(format!("bad y `{}`", fields[3])))?;
                b.add_node(Point::new(x, y));
            }
            Some("segment") => {
                if fields.len() != 7 {
                    return Err(err(format!("segment needs 7 fields, got {}", fields.len())));
                }
                let id: usize = fields[1]
                    .parse()
                    .map_err(|_| err(format!("bad segment id `{}`", fields[1])))?;
                if id != b.segment_count() {
                    return Err(err(format!(
                        "segment ids must be dense and ordered; expected {}, got {id}",
                        b.segment_count()
                    )));
                }
                let a: usize = fields[2]
                    .parse()
                    .map_err(|_| err(format!("bad endpoint `{}`", fields[2])))?;
                let bb: usize = fields[3]
                    .parse()
                    .map_err(|_| err(format!("bad endpoint `{}`", fields[3])))?;
                let length: f64 = fields[4]
                    .parse()
                    .map_err(|_| err(format!("bad length `{}`", fields[4])))?;
                let speed: f64 = fields[5]
                    .parse()
                    .map_err(|_| err(format!("bad speed `{}`", fields[5])))?;
                let oneway = match fields[6] {
                    "0" => false,
                    "1" => true,
                    other => return Err(err(format!("bad oneway flag `{other}`"))),
                };
                b.add_segment_detailed(NodeId::new(a), NodeId::new(bb), length, speed, oneway)?;
            }
            other => {
                return Err(err(format!("unknown record type {other:?}")));
            }
        }
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netgen::{generate_grid_network, GridNetworkConfig};

    #[test]
    fn roundtrip_preserves_network() {
        let net = generate_grid_network(&GridNetworkConfig::small_test(6, 7), 9);
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let back = read_network(buf.as_slice()).unwrap();
        assert_eq!(net.node_count(), back.node_count());
        assert_eq!(net.segment_count(), back.segment_count());
        for (a, b) in net.segments().zip(back.segments()) {
            assert_eq!(a, b);
        }
        for (a, b) in net.nodes().zip(back.nodes()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn oneway_flag_roundtrips() {
        let mut b = RoadNetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        b.add_segment_detailed(n0, n1, 120.0, 10.0, true).unwrap();
        let net = b.build().unwrap();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let back = read_network(buf.as_slice()).unwrap();
        let seg = back.segments().next().unwrap();
        assert!(seg.oneway);
        assert_eq!(seg.length, 120.0);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "node,0,0.0,0.0\nnode,1,nan_x,0.0\n";
        let err = read_network(text.as_bytes()).unwrap_err();
        assert!(matches!(err, NetIoError::Parse { line: 2, .. }));
    }

    #[test]
    fn non_dense_ids_rejected() {
        let text = "node,5,0.0,0.0\n";
        assert!(matches!(
            read_network(text.as_bytes()),
            Err(NetIoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn unknown_record_rejected() {
        let text = "edge,0,1,2\n";
        assert!(read_network(text.as_bytes()).is_err());
    }

    #[test]
    fn invalid_structure_is_reported() {
        // Segment referencing a missing node.
        let text = "node,0,0.0,0.0\nsegment,0,0,9,100.0,10.0,0\n";
        assert!(matches!(
            read_network(text.as_bytes()),
            Err(NetIoError::Invalid(_))
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hi\n\nnode,0,0.0,0.0\nnode,1,10.0,0.0\nsegment,0,0,1,10.0,5.0,0\n";
        let net = read_network(text.as_bytes()).unwrap();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.segment_count(), 1);
    }
}
