//! Shortest paths over the road network.
//!
//! NEAT needs network distances in three places: the mobility simulator
//! routes objects along shortest paths, the map matcher repairs gaps between
//! non-contiguous samples, and Phase 3 measures the modified Hausdorff
//! distance between flow-cluster endpoints (`d_N(a, b)` in Definition 11 —
//! the paper treats the graph as undirected there).
//!
//! [`ShortestPathEngine`] implements Dijkstra and A* (with the admissible
//! Euclidean heuristic — segment lengths are never shorter than their
//! chords) over reusable scratch buffers so repeated queries on large
//! networks (Miami-Dade has >100 k junctions) do not reallocate.

use crate::graph::RoadNetwork;
use crate::ids::{NodeId, SegmentId};
use neat_runctl::{Control, Interrupt};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Whether one-way restrictions are honoured during the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TravelMode {
    /// Respect `Segment::oneway` (used for routing vehicles).
    Directed,
    /// Ignore direction (used for Phase-3 proximity, as in the paper).
    Undirected,
}

/// What a path's cost measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostModel {
    /// Metres travelled (the paper's `d_N`).
    Distance,
    /// Seconds at the speed limit — lets the simulator route objects the
    /// way drivers do (fastest rather than shortest path).
    TravelTime,
}

impl CostModel {
    fn segment_cost(self, seg: &crate::graph::Segment) -> f64 {
        match self {
            CostModel::Distance => seg.length,
            CostModel::TravelTime => seg.travel_time(),
        }
    }
}

/// A shortest path: the junction chain, the segments travelled and the
/// total length in metres.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Junctions visited, from source to target (inclusive).
    pub nodes: Vec<NodeId>,
    /// Segments traversed; `segments.len() == nodes.len() - 1`.
    pub segments: Vec<SegmentId>,
    /// Total length in metres.
    pub length: f64,
}

impl Route {
    /// A zero-length route standing at `node`.
    pub fn trivial(node: NodeId) -> Self {
        Route {
            nodes: vec![node],
            segments: Vec::new(),
            length: 0.0,
        }
    }

    /// Number of segments in the route.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    priority: f64,
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on priority; tie-break on node id for determinism.
        other
            .priority
            .total_cmp(&self.priority)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable shortest-path solver.
///
/// The engine owns scratch arrays sized to one network; it is cheap to keep
/// one per thread and issue many queries.
///
/// ```
/// use neat_rnet::{Point, RoadNetworkBuilder, ShortestPathEngine};
/// use neat_rnet::path::TravelMode;
///
/// # fn main() -> Result<(), neat_rnet::RnetError> {
/// let mut b = RoadNetworkBuilder::new();
/// let n0 = b.add_node(Point::new(0.0, 0.0));
/// let n1 = b.add_node(Point::new(100.0, 0.0));
/// let n2 = b.add_node(Point::new(200.0, 0.0));
/// b.add_segment(n0, n1, 13.9)?;
/// b.add_segment(n1, n2, 13.9)?;
/// let net = b.build()?;
/// let mut sp = ShortestPathEngine::new(&net);
/// let d = sp.distance(&net, n0, n2, TravelMode::Undirected).unwrap();
/// assert_eq!(d, 200.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ShortestPathEngine {
    /// Fastest speed limit in the network (admissible time heuristic).
    max_speed: f64,
    dist: Vec<f64>,
    prev_node: Vec<u32>,
    prev_seg: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<HeapEntry>,
    /// Number of node settlements across all queries (for instrumentation).
    settled_total: u64,
}

const NO_PREV: u32 = u32::MAX;

impl ShortestPathEngine {
    /// Creates an engine sized for `net`.
    pub fn new(net: &RoadNetwork) -> Self {
        let n = net.node_count();
        let max_speed = net
            .segments()
            .map(|s| s.speed_limit)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        ShortestPathEngine {
            max_speed,
            dist: vec![f64::INFINITY; n],
            prev_node: vec![NO_PREV; n],
            prev_seg: vec![NO_PREV; n],
            stamp: vec![0; n],
            generation: 0,
            heap: BinaryHeap::new(),
            settled_total: 0,
        }
    }

    /// Total number of node settlements performed so far — used by the
    /// benchmarks to show how the ELB filter reduces search effort.
    pub fn settled_nodes(&self) -> u64 {
        self.settled_total
    }

    /// Resets the settlement counter.
    pub fn reset_counters(&mut self) {
        self.settled_total = 0;
    }

    fn begin(&mut self, net: &RoadNetwork) {
        assert_eq!(
            self.stamp.len(),
            net.node_count(),
            "engine was built for a different network"
        );
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrapped: clear everything once.
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
    }

    fn touch(&mut self, node: usize) {
        if self.stamp[node] != self.generation {
            self.stamp[node] = self.generation;
            self.dist[node] = f64::INFINITY;
            self.prev_node[node] = NO_PREV;
            self.prev_seg[node] = NO_PREV;
        }
    }

    /// Network distance `d_N(from, to)` in metres, or `None` if unreachable.
    ///
    /// Runs A* with the Euclidean heuristic, which is admissible because
    /// every segment's length is at least its chord.
    pub fn distance(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        mode: TravelMode,
    ) -> Option<f64> {
        self.search(
            net,
            from,
            Some(to),
            mode,
            f64::INFINITY,
            true,
            CostModel::Distance,
        )
    }

    /// Budget-aware [`ShortestPathEngine::distance`]: charges every node
    /// settlement against `ctl` and stops mid-expansion when a limit
    /// fires.
    ///
    /// # Errors
    ///
    /// Returns the latched [`Interrupt`] when the control stops the
    /// search; `Ok(None)` still means plain unreachability.
    pub fn distance_ctl(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        mode: TravelMode,
        ctl: &Control,
    ) -> Result<Option<f64>, Interrupt> {
        self.search_ctl(
            net,
            from,
            Some(to),
            mode,
            f64::INFINITY,
            true,
            CostModel::Distance,
            Some(ctl),
        )
    }

    /// Undirected network distance computed with plain Dijkstra network
    /// expansion (no heuristic) — the paper's baseline for the Phase-3
    /// ablation (`opt-NEAT-Dijkstra`, Figure 7).
    pub fn distance_plain(&mut self, net: &RoadNetwork, from: NodeId, to: NodeId) -> Option<f64> {
        self.search(
            net,
            from,
            Some(to),
            TravelMode::Undirected,
            f64::INFINITY,
            false,
            CostModel::Distance,
        )
    }

    /// Budget-aware [`ShortestPathEngine::distance_plain`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ShortestPathEngine::distance_ctl`].
    pub fn distance_plain_ctl(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        ctl: &Control,
    ) -> Result<Option<f64>, Interrupt> {
        self.search_ctl(
            net,
            from,
            Some(to),
            TravelMode::Undirected,
            f64::INFINITY,
            false,
            CostModel::Distance,
            Some(ctl),
        )
    }

    /// Like [`ShortestPathEngine::distance`] but abandons the search once
    /// the best reachable distance exceeds `bound`, returning `None`.
    ///
    /// Phase 3 of NEAT only needs to know whether `d_N ≤ ε`; bounding the
    /// search keeps the ε-neighbourhood queries cheap.
    pub fn distance_bounded(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        mode: TravelMode,
        bound: f64,
    ) -> Option<f64> {
        self.search(net, from, Some(to), mode, bound, true, CostModel::Distance)
    }

    /// Budget-aware [`ShortestPathEngine::distance_bounded`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ShortestPathEngine::distance_ctl`].
    pub fn distance_bounded_ctl(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        mode: TravelMode,
        bound: f64,
        ctl: &Control,
    ) -> Result<Option<f64>, Interrupt> {
        self.search_ctl(
            net,
            from,
            Some(to),
            mode,
            bound,
            true,
            CostModel::Distance,
            Some(ctl),
        )
    }

    /// Full shortest route, or `None` if unreachable.
    pub fn route(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        mode: TravelMode,
    ) -> Option<Route> {
        let length = self.search(
            net,
            from,
            Some(to),
            mode,
            f64::INFINITY,
            true,
            CostModel::Distance,
        )?;
        Some(self.rebuild_route(from, to, length))
    }

    /// Budget-aware [`ShortestPathEngine::route`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ShortestPathEngine::distance_ctl`].
    pub fn route_ctl(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        mode: TravelMode,
        ctl: &Control,
    ) -> Result<Option<Route>, Interrupt> {
        let length = self.search_ctl(
            net,
            from,
            Some(to),
            mode,
            f64::INFINITY,
            true,
            CostModel::Distance,
            Some(ctl),
        )?;
        Ok(length.map(|l| self.rebuild_route(from, to, l)))
    }

    /// Walks the predecessor arrays back from `to` after a successful
    /// search that reached it.
    fn rebuild_route(&self, from: NodeId, to: NodeId, length: f64) -> Route {
        let mut nodes = vec![to];
        let mut segments = Vec::new();
        let mut cur = to.index();
        while self.prev_node[cur] != NO_PREV {
            segments.push(SegmentId::new(self.prev_seg[cur] as usize));
            cur = self.prev_node[cur] as usize;
            nodes.push(NodeId::new(cur));
        }
        nodes.reverse();
        segments.reverse();
        debug_assert_eq!(nodes.first(), Some(&from));
        Route {
            nodes,
            segments,
            length,
        }
    }

    /// Fastest route by free-flow travel time, returning the route (with
    /// its length in metres) and the travel time in seconds — how the
    /// mobility simulator can route objects when drivers minimise time
    /// rather than distance.
    pub fn fastest_route(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        mode: TravelMode,
    ) -> Option<(Route, f64)> {
        let seconds = self.search(
            net,
            from,
            Some(to),
            mode,
            f64::INFINITY,
            true,
            CostModel::TravelTime,
        )?;
        let timed = self.rebuild_route(from, to, 0.0);
        // Invariant: every id in `segments` was written into `prev_seg` by
        // the search itself from `net.incident_segments`, so the lookup in
        // the same network cannot fail on any input.
        let length = timed
            .segments
            .iter()
            .map(|&s| net.segment(s).expect("route segment exists").length) // lint:allow(L1) reason=route segments come from this network's own search
            .sum();
        Some((Route { length, ..timed }, seconds))
    }

    /// Single-source distances to every reachable node (plain Dijkstra, no
    /// heuristic, no target). Entries for unreachable nodes are
    /// `f64::INFINITY`.
    pub fn distances_from(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        mode: TravelMode,
    ) -> Vec<f64> {
        self.search(
            net,
            from,
            None,
            mode,
            f64::INFINITY,
            false,
            CostModel::Distance,
        );
        self.collect_distances(net)
    }

    /// Budget-aware [`ShortestPathEngine::distances_from`]. An interrupt
    /// abandons the expansion entirely rather than returning a partially
    /// settled (and therefore misleading) distance table.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShortestPathEngine::distance_ctl`].
    pub fn distances_from_ctl(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        mode: TravelMode,
        ctl: &Control,
    ) -> Result<Vec<f64>, Interrupt> {
        self.search_ctl(
            net,
            from,
            None,
            mode,
            f64::INFINITY,
            false,
            CostModel::Distance,
            Some(ctl),
        )?;
        Ok(self.collect_distances(net))
    }

    /// Bounded one-to-many Dijkstra: exact distances from `from` to
    /// every node within `bound`, as a sparse table.
    ///
    /// One expansion answers *all* point queries `d(from, x) ≤ bound`
    /// exactly: a node absent from the table is strictly farther than
    /// `bound`. This replaces repeated point-to-point searches from a
    /// shared source (phase 3 asks for the distance from one
    /// representative-route endpoint to every candidate endpoint within
    /// ε) at the cost of a single ε-ball expansion.
    pub fn distances_within(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        mode: TravelMode,
        bound: f64,
    ) -> NodeDistances {
        // Infallible without a control.
        self.distances_within_ctl(net, from, mode, bound, None)
            .unwrap_or_else(|_| NodeDistances::empty())
    }

    /// Budget-aware [`ShortestPathEngine::distances_within`]; charges one
    /// settlement per finalised node, like every other search here. An
    /// interrupt abandons the expansion entirely rather than returning a
    /// partially settled table.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShortestPathEngine::distance_ctl`].
    pub fn distances_within_ctl(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        mode: TravelMode,
        bound: f64,
        ctl: Option<&Control>,
    ) -> Result<NodeDistances, Interrupt> {
        self.distances_within_targets_ctl(net, from, mode, bound, None, ctl)
    }

    /// Target-pruned bounded one-to-many Dijkstra: like
    /// [`ShortestPathEngine::distances_within_ctl`], but the expansion
    /// additionally stops as soon as every node in `targets` has been
    /// settled — often long before the `bound`-ball is exhausted.
    ///
    /// The truncated table still answers `d(from, x) ≤ bound` **exactly
    /// for every `x ∈ targets`**: either all targets settled (so each is
    /// present with its exact distance), or some target is farther than
    /// `bound` and the expansion ran the full ball (so absence proves
    /// `> bound`, as in the unpruned variant). For nodes *outside*
    /// `targets`, absence from a truncated table is inconclusive —
    /// callers must only query targets, or nodes independently proven
    /// farther than `bound`.
    ///
    /// Duplicate target entries are fine; `None` disables pruning.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShortestPathEngine::distance_ctl`].
    pub fn distances_within_targets_ctl(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        mode: TravelMode,
        bound: f64,
        targets: Option<&[NodeId]>,
        ctl: Option<&Control>,
    ) -> Result<NodeDistances, Interrupt> {
        // Sorted, deduplicated target indices for binary-search
        // membership tests; `remaining` counts how many are unsettled.
        let mut wanted: Vec<usize> = targets
            .map(|t| t.iter().map(|n| n.index()).collect())
            .unwrap_or_default();
        wanted.sort_unstable();
        wanted.dedup();
        let mut remaining = if targets.is_some() {
            wanted.len()
        } else {
            usize::MAX
        };
        if remaining == 0 {
            // Nothing will ever be looked up: every absent node is
            // already known (by the caller's own bound proof) to be
            // farther than `bound`.
            return Ok(NodeDistances::empty());
        }
        self.begin(net);
        let src = from.index();
        self.touch(src);
        self.dist[src] = 0.0;
        self.heap.push(HeapEntry {
            priority: 0.0,
            dist: 0.0,
            node: src as u32,
        });
        let mut pairs: Vec<(NodeId, f64)> = Vec::new();
        while let Some(HeapEntry { dist, node, .. }) = self.heap.pop() {
            let u = node as usize;
            if self.stamp[u] == self.generation && dist > self.dist[u] {
                continue; // stale entry
            }
            self.settled_total += 1;
            if let Some(c) = ctl {
                c.check_settled()?;
            }
            if dist > bound {
                break; // every remaining node is farther than the bound
            }
            pairs.push((NodeId::new(u), dist));
            if wanted.binary_search(&u).is_ok() {
                remaining -= 1;
                if remaining == 0 {
                    break; // every target is settled: the table is complete
                }
            }
            for &sid in net.incident_segments(NodeId::new(u)) {
                // Invariant: `sid` comes from `net`'s own adjacency lists,
                // so the segment is always present in the same network.
                let seg = net.segment(sid).expect("incident segment exists"); // lint:allow(L1) reason=documented invariant above: sid is from this network's adjacency lists
                if mode == TravelMode::Directed && !seg.traversable_from(NodeId::new(u)) {
                    continue;
                }
                let v = seg.other_endpoint(NodeId::new(u)).index();
                let nd = dist + seg.length;
                self.touch(v);
                if nd < self.dist[v] {
                    self.dist[v] = nd;
                    self.prev_node[v] = u as u32;
                    self.prev_seg[v] = sid.index() as u32; // lint:allow(L4) reason=SegmentId wraps u32, so index() round-trips losslessly
                    self.heap.push(HeapEntry {
                        priority: nd,
                        dist: nd,
                        node: v as u32,
                    });
                }
            }
        }
        self.heap.clear();
        pairs.sort_by_key(|(n, _)| n.index());
        Ok(NodeDistances { pairs })
    }

    fn collect_distances(&self, net: &RoadNetwork) -> Vec<f64> {
        let mut out = vec![f64::INFINITY; net.node_count()];
        for (i, d) in out.iter_mut().enumerate() {
            if self.stamp[i] == self.generation {
                *d = self.dist[i];
            }
        }
        out
    }

    /// Uncontrolled search core, kept infallible for the legacy entry
    /// points: with no control attached, [`ShortestPathEngine::search_ctl`]
    /// can never return an interrupt.
    #[allow(clippy::too_many_arguments)]
    fn search(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        target: Option<NodeId>,
        mode: TravelMode,
        bound: f64,
        use_heuristic: bool,
        cost: CostModel,
    ) -> Option<f64> {
        self.search_ctl(net, from, target, mode, bound, use_heuristic, cost, None)
            .unwrap_or(None)
    }

    /// Core search. Returns the distance to `target` when given, otherwise
    /// `None` after exhausting the graph. When a control is attached,
    /// every settlement is charged against it and the first interrupt
    /// aborts the expansion; without one the checks cost a single branch.
    #[allow(clippy::too_many_arguments)]
    fn search_ctl(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        target: Option<NodeId>,
        mode: TravelMode,
        bound: f64,
        use_heuristic: bool,
        cost: CostModel,
        ctl: Option<&Control>,
    ) -> Result<Option<f64>, Interrupt> {
        self.begin(net);
        let goal_pos = target.map(|t| net.position(t));
        // Heuristic stays admissible under both cost models: straight-line
        // metres, divided by the fastest speed limit for travel time.
        let h_scale = match cost {
            CostModel::Distance => 1.0,
            CostModel::TravelTime => 1.0 / self.max_speed,
        };
        let h = |net: &RoadNetwork, n: usize| -> f64 {
            match (use_heuristic, goal_pos) {
                (true, Some(g)) => net.position(NodeId::new(n)).distance(g) * h_scale,
                _ => 0.0,
            }
        };
        let src = from.index();
        self.touch(src);
        self.dist[src] = 0.0;
        self.heap.push(HeapEntry {
            priority: h(net, src),
            dist: 0.0,
            node: src as u32,
        });
        while let Some(HeapEntry { dist, node, .. }) = self.heap.pop() {
            let u = node as usize;
            if self.stamp[u] == self.generation && dist > self.dist[u] {
                continue; // stale entry
            }
            self.settled_total += 1;
            if let Some(c) = ctl {
                c.check_settled()?;
            }
            if dist > bound {
                return Ok(None);
            }
            if Some(NodeId::new(u)) == target {
                return Ok(Some(dist));
            }
            for &sid in net.incident_segments(NodeId::new(u)) {
                // Invariant: `sid` comes from `net`'s own adjacency lists,
                // so the segment is always present in the same network.
                let seg = net.segment(sid).expect("incident segment exists"); // lint:allow(L1) reason=documented invariant above: sid is from this network's adjacency lists
                if mode == TravelMode::Directed && !seg.traversable_from(NodeId::new(u)) {
                    continue;
                }
                let v = seg.other_endpoint(NodeId::new(u)).index();
                let nd = dist + cost.segment_cost(seg);
                self.touch(v);
                if nd < self.dist[v] {
                    self.dist[v] = nd;
                    self.prev_node[v] = u as u32;
                    self.prev_seg[v] = sid.index() as u32; // lint:allow(L4) reason=SegmentId wraps u32, so index() round-trips losslessly
                    self.heap.push(HeapEntry {
                        priority: nd + h(net, v),
                        dist: nd,
                        node: v as u32,
                    });
                }
            }
        }
        Ok(None)
    }
}

/// Sparse distance table from one source node: the exact network
/// distance to every node inside the expansion bound, sorted by node id
/// for binary-search lookups.
///
/// Produced by [`ShortestPathEngine::distances_within`]; a node absent
/// from the table is strictly farther from the source than the bound
/// the table was built with.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeDistances {
    /// `(node, distance)` pairs sorted by node index.
    pairs: Vec<(NodeId, f64)>,
}

impl NodeDistances {
    /// A table with no entries (every lookup misses).
    pub fn empty() -> Self {
        NodeDistances { pairs: Vec::new() }
    }

    /// The exact distance to `node`, or `None` when `node` lies outside
    /// the bound the table was built with.
    pub fn get(&self, node: NodeId) -> Option<f64> {
        self.pairs
            .binary_search_by_key(&node.index(), |(n, _)| n.index())
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// Number of nodes inside the bound.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no node was within the bound.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The sorted `(node, distance)` pairs.
    pub fn entries(&self) -> &[(NodeId, f64)] {
        &self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadNetworkBuilder;

    /// Regression (neat-lint L3): a NaN priority must neither panic nor
    /// destroy the heap's total order. `total_cmp` sorts NaN after every
    /// finite priority, so poisoned entries drain last, deterministically.
    #[test]
    fn heap_entry_tolerates_nan_priorities() {
        let mut heap = std::collections::BinaryHeap::new();
        for (i, priority) in [3.0, f64::NAN, 1.0, 2.0, f64::NAN].into_iter().enumerate() {
            heap.push(HeapEntry {
                priority,
                dist: priority,
                node: i as u32,
            });
        }
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop()).map(|e| e.node).collect();
        assert_eq!(order.len(), 5, "no entry lost to an inconsistent ordering");
        assert_eq!(&order[..3], &[2, 3, 0], "finite priorities pop in order");
        assert_eq!(&order[3..], &[1, 4], "NaN entries drain last, by node id");
    }

    /// 3×3 grid with unit spacing 100 m.
    fn grid3() -> (RoadNetwork, Vec<NodeId>) {
        let mut b = RoadNetworkBuilder::new();
        let mut ids = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                ids.push(b.add_node(Point::new(c as f64 * 100.0, r as f64 * 100.0)));
            }
        }
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    b.add_segment(ids[i], ids[i + 1], 13.9).unwrap();
                }
                if r + 1 < 3 {
                    b.add_segment(ids[i], ids[i + 3], 13.9).unwrap();
                }
            }
        }
        (b.build().unwrap(), ids)
    }

    #[test]
    fn distances_within_matches_point_queries_exactly() {
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        let bound = 250.0;
        let table = sp.distances_within(&net, ids[0], TravelMode::Undirected, bound);
        assert!(!table.is_empty());
        for i in 0..net.node_count() {
            let n = NodeId::new(i);
            let direct = sp.distance(&net, ids[0], n, TravelMode::Undirected);
            match table.get(n) {
                Some(d) => assert_eq!(Some(d), direct, "node {i}"),
                None => assert!(
                    direct.is_none_or(|d| d > bound),
                    "node {i} missing from table but within bound"
                ),
            }
        }
    }

    #[test]
    fn distances_within_ctl_charges_settlements_and_aborts() {
        use neat_runctl::{CancelToken, RunBudget};
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        let ctl = Control::unlimited();
        let t = sp
            .distances_within_ctl(&net, ids[0], TravelMode::Undirected, 1e9, Some(&ctl))
            .unwrap();
        assert_eq!(t.len(), 9, "whole grid within a huge bound");
        assert_eq!(ctl.settled(), 9, "one settlement charged per node");
        let tight = Control::new(
            RunBudget::unlimited().with_max_settled_nodes(3),
            CancelToken::new(),
        );
        let r = sp.distances_within_ctl(&net, ids[0], TravelMode::Undirected, 1e9, Some(&tight));
        assert!(r.is_err(), "budget aborts the expansion");
    }

    #[test]
    fn distance_on_grid() {
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        // Corner to corner: 4 hops of 100 m.
        let d = sp
            .distance(&net, ids[0], ids[8], TravelMode::Undirected)
            .unwrap();
        assert_eq!(d, 400.0);
        // Self distance is zero.
        assert_eq!(
            sp.distance(&net, ids[4], ids[4], TravelMode::Undirected),
            Some(0.0)
        );
    }

    #[test]
    fn route_reconstruction() {
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        let r = sp
            .route(&net, ids[0], ids[8], TravelMode::Undirected)
            .unwrap();
        assert_eq!(r.length, 400.0);
        assert_eq!(r.nodes.len(), 5);
        assert_eq!(r.segments.len(), 4);
        assert_eq!(r.nodes[0], ids[0]);
        assert_eq!(*r.nodes.last().unwrap(), ids[8]);
        assert!(net.is_route(&r.segments));
        // Consecutive nodes joined by the listed segment.
        for (w, &sid) in r.nodes.windows(2).zip(&r.segments) {
            let seg = net.segment(sid).unwrap();
            assert!(seg.has_endpoint(w[0]) && seg.has_endpoint(w[1]));
        }
    }

    #[test]
    fn oneway_blocks_directed_but_not_undirected() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        b.add_segment_detailed(a, c, 100.0, 10.0, true).unwrap();
        let net = b.build().unwrap();
        let mut sp = ShortestPathEngine::new(&net);
        assert_eq!(sp.distance(&net, a, c, TravelMode::Directed), Some(100.0));
        assert_eq!(sp.distance(&net, c, a, TravelMode::Directed), None);
        assert_eq!(sp.distance(&net, c, a, TravelMode::Undirected), Some(100.0));
    }

    #[test]
    fn bounded_search_gives_up() {
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        assert_eq!(
            sp.distance_bounded(&net, ids[0], ids[8], TravelMode::Undirected, 200.0),
            None
        );
        assert_eq!(
            sp.distance_bounded(&net, ids[0], ids[8], TravelMode::Undirected, 400.0),
            Some(400.0)
        );
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let net = b.build().unwrap();
        let mut sp = ShortestPathEngine::new(&net);
        assert_eq!(sp.distance(&net, a, c, TravelMode::Undirected), None);
        assert!(sp.route(&net, a, c, TravelMode::Undirected).is_none());
    }

    #[test]
    fn distances_from_all_nodes() {
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        let d = sp.distances_from(&net, ids[0], TravelMode::Undirected);
        assert_eq!(d[ids[0].index()], 0.0);
        assert_eq!(d[ids[4].index()], 200.0);
        assert_eq!(d[ids[8].index()], 400.0);
    }

    #[test]
    fn engine_reuse_across_queries_is_consistent() {
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        for _ in 0..100 {
            assert_eq!(
                sp.distance(&net, ids[0], ids[8], TravelMode::Undirected),
                Some(400.0)
            );
            assert_eq!(
                sp.distance(&net, ids[3], ids[5], TravelMode::Undirected),
                Some(200.0)
            );
        }
        assert!(sp.settled_nodes() > 0);
        sp.reset_counters();
        assert_eq!(sp.settled_nodes(), 0);
    }

    #[test]
    fn euclidean_lower_bound_holds_on_grid() {
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        for &a in &ids {
            for &b in &ids {
                let dn = sp.distance(&net, a, b, TravelMode::Undirected).unwrap();
                let de = net.euclidean_distance(a, b);
                assert!(
                    de <= dn + 1e-9,
                    "ELB violated: dE={de} > dN={dn} for {a}->{b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "different network")]
    fn engine_rejects_mismatched_network() {
        let (net, _) = grid3();
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let small = b.build().unwrap();
        let mut sp = ShortestPathEngine::new(&small);
        let _ = sp.distance(&net, a, a, TravelMode::Undirected);
    }

    #[test]
    fn fastest_route_prefers_highway_over_short_slow_road() {
        // Two ways from a to d: direct slow road (300 m at 5 m/s = 60 s)
        // vs a detour on a fast road (400 m at 25 m/s = 16 s).
        let mut b = RoadNetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let d = b.add_node(Point::new(300.0, 0.0));
        let m = b.add_node(Point::new(150.0, 130.0));
        b.add_segment_detailed(a, d, 300.0, 5.0, false).unwrap(); // slow direct
        b.add_segment(a, m, 25.0).unwrap(); // ~198 m highway legs
        b.add_segment(m, d, 25.0).unwrap();
        let net = b.build().unwrap();
        let mut sp = ShortestPathEngine::new(&net);
        // Shortest by distance: the direct road.
        let short = sp.route(&net, a, d, TravelMode::Undirected).unwrap();
        assert_eq!(short.segments.len(), 1);
        // Fastest by time: the highway detour.
        let (fast, seconds) = sp
            .fastest_route(&net, a, d, TravelMode::Undirected)
            .unwrap();
        assert_eq!(fast.segments.len(), 2);
        assert!(fast.length > short.length);
        assert!(seconds < 300.0 / 5.0);
        // Route length is in metres even under the time cost model.
        let sum: f64 = fast
            .segments
            .iter()
            .map(|&s| net.segment(s).unwrap().length)
            .sum();
        assert!((fast.length - sum).abs() < 1e-9);
    }

    #[test]
    fn fastest_route_matches_shortest_on_uniform_speeds() {
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        let short = sp
            .route(&net, ids[0], ids[8], TravelMode::Undirected)
            .unwrap();
        let (fast, _) = sp
            .fastest_route(&net, ids[0], ids[8], TravelMode::Undirected)
            .unwrap();
        assert_eq!(fast.length, short.length);
    }

    #[test]
    fn trivial_route() {
        let r = Route::trivial(NodeId::new(3));
        assert_eq!(r.length, 0.0);
        assert_eq!(r.segment_count(), 0);
        assert_eq!(r.nodes, vec![NodeId::new(3)]);
    }

    #[test]
    fn unlimited_control_matches_uncontrolled_search() {
        use neat_runctl::Control;
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        let ctl = Control::unlimited();
        assert_eq!(
            sp.distance_ctl(&net, ids[0], ids[8], TravelMode::Undirected, &ctl),
            Ok(Some(400.0))
        );
        assert_eq!(
            sp.distance_plain_ctl(&net, ids[0], ids[8], &ctl),
            Ok(Some(400.0))
        );
        assert_eq!(
            sp.distance_bounded_ctl(&net, ids[0], ids[8], TravelMode::Undirected, 200.0, &ctl),
            Ok(None)
        );
        let route = sp
            .route_ctl(&net, ids[0], ids[8], TravelMode::Undirected, &ctl)
            .unwrap()
            .unwrap();
        assert_eq!(
            route,
            sp.route(&net, ids[0], ids[8], TravelMode::Undirected)
                .unwrap()
        );
        let table = sp
            .distances_from_ctl(&net, ids[0], TravelMode::Undirected, &ctl)
            .unwrap();
        assert_eq!(
            table,
            sp.distances_from(&net, ids[0], TravelMode::Undirected)
        );
        assert!(ctl.settled() > 0, "settlements are charged to the control");
    }

    #[test]
    fn settled_node_budget_interrupts_search() {
        use neat_runctl::{CancelToken, Control, Interrupt, RunBudget};
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        let ctl = Control::new(
            RunBudget::unlimited().with_max_settled_nodes(2),
            CancelToken::new(),
        );
        assert_eq!(
            sp.distance_ctl(&net, ids[0], ids[8], TravelMode::Undirected, &ctl),
            Err(Interrupt::SettledNodeBudgetExhausted)
        );
        // The interrupt is latched: a fresh query through the same control
        // fails immediately…
        assert!(sp
            .distances_from_ctl(&net, ids[0], TravelMode::Undirected, &ctl)
            .is_err());
        // …but the engine itself stays healthy for uncontrolled queries.
        assert_eq!(
            sp.distance(&net, ids[0], ids[8], TravelMode::Undirected),
            Some(400.0)
        );
    }

    #[test]
    fn cancelled_token_interrupts_route() {
        use neat_runctl::{CancelToken, Control, Interrupt, RunBudget};
        let (net, ids) = grid3();
        let mut sp = ShortestPathEngine::new(&net);
        let token = CancelToken::new();
        token.cancel();
        let ctl = Control::new(RunBudget::unlimited(), token);
        assert_eq!(
            sp.route_ctl(&net, ids[0], ids[8], TravelMode::Undirected, &ctl),
            Err(Interrupt::Cancelled)
        );
    }
}
