//! Road-network substrate for the NEAT trajectory-clustering reproduction.
//!
//! This crate provides the road-network reference model of Section II-A of
//! *NEAT: Road Network Aware Trajectory Clustering* (ICDCS 2012):
//!
//! * a directed road-network graph of junction nodes and road segments
//!   ([`RoadNetwork`], [`Segment`], [`graph`]),
//! * road-network locations `(sid, x, y, t)` and offset arithmetic
//!   ([`location`]),
//! * shortest-path machinery (Dijkstra, bidirectional Dijkstra and A*) used
//!   by the simulator, the map matcher and NEAT Phase 3 ([`path`]),
//! * a uniform-grid spatial index for nearest-segment queries ([`index`]),
//! * seeded synthetic network generators calibrated to the paper's three
//!   real maps — North-West Atlanta, West San Jose and Miami-Dade
//!   ([`netgen`]).
//!
//! # Example
//!
//! ```
//! use neat_rnet::netgen::{GridNetworkConfig, generate_grid_network};
//!
//! let net = generate_grid_network(&GridNetworkConfig::small_test(7, 7), 42);
//! assert!(net.node_count() >= 45);
//! let stats = net.stats();
//! assert!(stats.avg_degree > 2.0);
//! ```

pub mod alt;
pub mod bidi;
pub mod error;
pub mod geometry;
pub mod graph;
pub mod ids;
pub mod index;
pub mod io;
pub mod location;
pub mod netgen;
pub mod path;
pub mod rtree;

pub use bidi::BidirectionalDijkstra;
pub use error::RnetError;
pub use geometry::Point;
pub use graph::{NetworkStats, RoadNetwork, RoadNetworkBuilder, Segment};
pub use ids::{NodeId, SegmentId};
pub use index::{GridScratch, SegmentIndex};
pub use location::RoadLocation;
pub use path::{Route, ShortestPathEngine};
pub use rtree::SegmentRTree;
