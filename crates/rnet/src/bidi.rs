//! Bidirectional Dijkstra — an alternative point-to-point solver used as
//! an ablation against the A* engine in `path` (DESIGN.md §7).
//!
//! The search expands balls from both endpoints simultaneously and stops
//! once the frontier sum exceeds the best meeting-point distance, settling
//! roughly half the nodes of a unidirectional Dijkstra on road networks.

use crate::graph::RoadNetwork;
use crate::ids::NodeId;
use crate::path::TravelMode;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    dist: f64,
    node: u32,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable bidirectional Dijkstra solver with its own scratch state.
#[derive(Debug, Clone)]
pub struct BidirectionalDijkstra {
    dist: [Vec<f64>; 2],
    stamp: [Vec<u32>; 2],
    generation: u32,
    /// Node settlements across all queries, for ablation reporting.
    settled_total: u64,
}

impl BidirectionalDijkstra {
    /// Creates a solver sized for `net`.
    pub fn new(net: &RoadNetwork) -> Self {
        let n = net.node_count();
        BidirectionalDijkstra {
            dist: [vec![f64::INFINITY; n], vec![f64::INFINITY; n]],
            stamp: [vec![0; n], vec![0; n]],
            generation: 0,
            settled_total: 0,
        }
    }

    /// Total node settlements performed so far.
    pub fn settled_nodes(&self) -> u64 {
        self.settled_total
    }

    fn touch(&mut self, side: usize, node: usize) {
        if self.stamp[side][node] != self.generation {
            self.stamp[side][node] = self.generation;
            self.dist[side][node] = f64::INFINITY;
        }
    }

    fn dist_of(&self, side: usize, node: usize) -> f64 {
        if self.stamp[side][node] == self.generation {
            self.dist[side][node]
        } else {
            f64::INFINITY
        }
    }

    /// Network distance `d_N(from, to)`, or `None` when unreachable.
    ///
    /// For [`TravelMode::Directed`], the backward ball relaxes segments in
    /// reverse, so one-way restrictions are honoured.
    pub fn distance(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        mode: TravelMode,
    ) -> Option<f64> {
        assert_eq!(
            self.stamp[0].len(),
            net.node_count(),
            "solver was built for a different network"
        );
        if from == to {
            return Some(0.0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp[0].fill(0);
            self.stamp[1].fill(0);
            self.generation = 1;
        }

        let mut heaps = [BinaryHeap::new(), BinaryHeap::new()];
        for (side, start) in [(0usize, from), (1usize, to)] {
            self.touch(side, start.index());
            self.dist[side][start.index()] = 0.0;
            heaps[side].push(Entry {
                dist: 0.0,
                node: start.index() as u32, // lint:allow(L4) reason=node indices originate from NodeId(u32), so index() round-trips
            });
        }

        let mut best = f64::INFINITY;
        loop {
            // Pick the side with the smaller frontier to expand.
            let side = match (heaps[0].peek(), heaps[1].peek()) {
                (None, None) => break,
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (Some(a), Some(b)) => {
                    if a.dist <= b.dist {
                        0
                    } else {
                        1
                    }
                }
            };
            // Termination: the two frontiers together cannot improve best.
            let top0 = heaps[0].peek().map_or(f64::INFINITY, |e| e.dist);
            let top1 = heaps[1].peek().map_or(f64::INFINITY, |e| e.dist);
            if top0 + top1 >= best {
                break;
            }
            let Entry { dist, node } = heaps[side].pop().expect("side chosen non-empty"); // lint:allow(L1) reason=the termination check above breaks before both heaps drain
            let u = node as usize;
            if dist > self.dist_of(side, u) {
                continue; // stale
            }
            self.settled_total += 1;
            for &sid in net.incident_segments(NodeId::new(u)) {
                let seg = net.segment(sid).expect("incident segment exists"); // lint:allow(L1) reason=incident segment ids come from this network's adjacency lists
                if mode == TravelMode::Directed {
                    // Forward ball follows direction; backward ball goes
                    // against it.
                    let ok = if side == 0 {
                        seg.traversable_from(NodeId::new(u))
                    } else {
                        seg.traversable_from(seg.other_endpoint(NodeId::new(u)))
                    };
                    if !ok {
                        continue;
                    }
                }
                let v = seg.other_endpoint(NodeId::new(u)).index();
                let nd = dist + seg.length;
                self.touch(side, v);
                if nd < self.dist[side][v] {
                    self.dist[side][v] = nd;
                    heaps[side].push(Entry {
                        dist: nd,
                        node: v as u32,
                    });
                    let other = self.dist_of(1 - side, v);
                    if nd + other < best {
                        best = nd + other;
                    }
                }
            }
        }
        best.is_finite().then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::graph::RoadNetworkBuilder;
    use crate::netgen::{generate_grid_network, GridNetworkConfig};
    use crate::path::ShortestPathEngine;

    /// Regression (neat-lint L3): NaN distances must not panic or
    /// mis-sort the frontier heap (`total_cmp` gives NaN a fixed place
    /// after all finite distances in this min-heap ordering).
    #[test]
    fn frontier_entry_tolerates_nan_distances() {
        let mut heap = std::collections::BinaryHeap::new();
        for (i, dist) in [f64::NAN, 0.5, 2.5, f64::NAN, 1.5].into_iter().enumerate() {
            heap.push(Entry {
                dist,
                node: i as u32,
            });
        }
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop()).map(|e| e.node).collect();
        assert_eq!(order.len(), 5, "no entry lost to an inconsistent ordering");
        assert_eq!(
            &order[..3],
            &[1, 4, 2],
            "finite distances pop nearest-first"
        );
        assert_eq!(&order[3..], &[0, 3], "NaN entries drain last, by node id");
    }

    #[test]
    fn agrees_with_unidirectional_on_grid() {
        let net = generate_grid_network(&GridNetworkConfig::small_test(9, 9), 3);
        let mut uni = ShortestPathEngine::new(&net);
        let mut bi = BidirectionalDijkstra::new(&net);
        for (a, b) in [(0usize, 80usize), (5, 41), (12, 12), (3, 77), (40, 44)] {
            let (a, b) = (NodeId::new(a), NodeId::new(b));
            let du = uni.distance(&net, a, b, TravelMode::Undirected);
            let db = bi.distance(&net, a, b, TravelMode::Undirected);
            match (du, db) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "{a}->{b}: {x} vs {y}"),
                (None, None) => {}
                other => panic!("reachability mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn directed_respects_oneway_both_ways() {
        let mut b = RoadNetworkBuilder::new();
        let x = b.add_node(Point::new(0.0, 0.0));
        let y = b.add_node(Point::new(100.0, 0.0));
        b.add_segment_detailed(x, y, 100.0, 10.0, true).unwrap();
        let net = b.build().unwrap();
        let mut bi = BidirectionalDijkstra::new(&net);
        assert_eq!(bi.distance(&net, x, y, TravelMode::Directed), Some(100.0));
        assert_eq!(bi.distance(&net, y, x, TravelMode::Directed), None);
        assert_eq!(bi.distance(&net, y, x, TravelMode::Undirected), Some(100.0));
    }

    #[test]
    fn unreachable_is_none_and_self_is_zero() {
        let mut b = RoadNetworkBuilder::new();
        let x = b.add_node(Point::new(0.0, 0.0));
        let y = b.add_node(Point::new(100.0, 0.0));
        let net = b.build().unwrap();
        let mut bi = BidirectionalDijkstra::new(&net);
        assert_eq!(bi.distance(&net, x, y, TravelMode::Undirected), None);
        assert_eq!(bi.distance(&net, x, x, TravelMode::Undirected), Some(0.0));
    }

    #[test]
    fn settles_fewer_nodes_than_plain_dijkstra_on_long_queries() {
        let net = generate_grid_network(&GridNetworkConfig::small_test(25, 25), 5);
        let mut uni = ShortestPathEngine::new(&net);
        let mut bi = BidirectionalDijkstra::new(&net);
        let (a, b) = (NodeId::new(0), NodeId::new(net.node_count() - 1));
        uni.reset_counters();
        let du = uni.distance_plain(&net, a, b).unwrap();
        let uni_settled = uni.settled_nodes();
        let db = bi.distance(&net, a, b, TravelMode::Undirected).unwrap();
        assert!((du - db).abs() < 1e-9);
        assert!(
            bi.settled_nodes() < uni_settled,
            "bidirectional settled {} vs plain {}",
            bi.settled_nodes(),
            uni_settled
        );
    }

    #[test]
    fn reusable_across_many_queries() {
        let net = generate_grid_network(&GridNetworkConfig::small_test(8, 8), 1);
        let mut bi = BidirectionalDijkstra::new(&net);
        let d1 = bi.distance(
            &net,
            NodeId::new(0),
            NodeId::new(63),
            TravelMode::Undirected,
        );
        for _ in 0..50 {
            assert_eq!(
                bi.distance(
                    &net,
                    NodeId::new(0),
                    NodeId::new(63),
                    TravelMode::Undirected
                ),
                d1
            );
        }
    }
}
