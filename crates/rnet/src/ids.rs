//! Typed identifiers for road-network entities.
//!
//! Newtypes keep node indices, segment identifiers and other `u32`-shaped
//! values statically distinct (the paper's `ni` junction identifiers and
//! `sid` road-segment identifiers).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a junction node in a [`RoadNetwork`](crate::RoadNetwork).
///
/// Node ids are dense indices assigned by the
/// [`RoadNetworkBuilder`](crate::RoadNetworkBuilder) in insertion order.
///
/// ```
/// use neat_rnet::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub fn new(index: usize) -> Self {
        debug_assert!(u32::try_from(index).is_ok(), "node index exceeds u32 range");
        NodeId(index as u32) // lint:allow(L4) reason=debug-asserted above to fit in u32; the builder assigns dense indices sequentially
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a road segment (the paper's `sid`).
///
/// A road segment connects two junctions. Bidirectional road segments are a
/// single [`Segment`](crate::Segment) with `oneway == false`; both directed
/// edges share the same `SegmentId`, exactly as the paper labels `e` and
/// `e'` with the same `sid`.
///
/// ```
/// use neat_rnet::SegmentId;
/// let s = SegmentId::new(7);
/// assert_eq!(s.index(), 7);
/// assert_eq!(s.to_string(), "s7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId(u32);

impl SegmentId {
    /// Creates a segment id from a dense index.
    pub fn new(index: usize) -> Self {
        debug_assert!(
            u32::try_from(index).is_ok(),
            "segment index exceeds u32 range"
        );
        SegmentId(index as u32) // lint:allow(L4) reason=debug-asserted above to fit in u32; the builder assigns dense indices sequentially
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 42, 1_000_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn segment_id_roundtrip() {
        for i in [0usize, 1, 42, 1_000_000] {
            assert_eq!(SegmentId::new(i).index(), i);
        }
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<NodeId> = (0..10).map(NodeId::new).collect();
        assert_eq!(set.len(), 10);
        let set: HashSet<SegmentId> = (0..10).map(SegmentId::new).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(5).to_string(), "n5");
        assert_eq!(SegmentId::new(9).to_string(), "s9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(SegmentId::new(0) < SegmentId::new(10));
    }
}
