//! Property-based coverage of the retention algebra on the public
//! `IncrementalNeat` API.
//!
//! The load-bearing law is *expiry/ingest commutativity*: for a fresh
//! batch `B` (every observation at or after the watermark `w`),
//!
//! ```text
//! ingest(A); expire(w); ingest(B)  ≡  ingest(A); ingest(B); expire(w)
//! ```
//!
//! must hold on the retained state. This is what makes a windowed
//! stream deterministic regardless of *when* the service interleaves
//! watermark ticks with batches — the chaos and soak harnesses lean on
//! it. The second law is idempotence: re-expiring at the same (or an
//! older) watermark must change nothing and report `advanced = false`.

use neat_core::{ErrorPolicy, IncrementalNeat, NeatConfig};
use neat_rnet::netgen::chain_network;
use neat_rnet::{Point, RoadLocation, RoadNetwork, SegmentId};
use neat_traj::{Dataset, Trajectory, TrajectoryId};
use proptest::prelude::*;

/// Deterministic random walks along a chain network, with every
/// timestamp offset by `t0` — the knob that makes a batch "old"
/// (entirely behind a watermark) or "fresh" (entirely at/after it).
fn walk_dataset(net: &RoadNetwork, walks: &[(usize, usize)], t0: f64, id_base: u64) -> Dataset {
    let nsegs = net.segments().count();
    let mut data = Dataset::new("prop");
    for (i, &(start, len)) in walks.iter().enumerate() {
        let s0 = start % nsegs;
        let len = 1 + len % (nsegs - s0);
        let mut points = Vec::new();
        let mut t = t0 + i as f64 * 1000.0;
        for seg in s0..s0 + len {
            for j in 0..3u32 {
                let x = seg as f64 * 100.0 + f64::from(j) * 30.0;
                points.push(RoadLocation::new(
                    SegmentId::new(seg),
                    Point::new(x, 0.0),
                    t,
                ));
                t += 5.0;
            }
        }
        if points.len() >= 2 {
            data.push(
                Trajectory::new(TrajectoryId::new(id_base + i as u64), points).expect("valid walk"),
            );
        }
    }
    data
}

fn config() -> NeatConfig {
    NeatConfig {
        min_card: 2,
        epsilon: 500.0,
        ..NeatConfig::default()
    }
}

/// Retained-state fingerprint: watermark, flows and resilience (the
/// exact state a checkpoint would persist, minus the op counter, which
/// both interleavings advance identically anyway).
fn fingerprint(s: &IncrementalNeat<'_>) -> String {
    format!(
        "{:?}|{:#?}|{:#?}",
        s.watermark(),
        s.flow_clusters(),
        s.resilience()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `A` is old traffic, `B` fresh traffic entirely after `w`
    /// (`w` may fall inside `A`, expiring it partially, or past it,
    /// expiring it wholly — both sides of "entirely inside/outside the
    /// window" are generated).
    #[test]
    fn expiry_commutes_with_fresh_ingest(
        walks_a in proptest::collection::vec((0usize..6, 0usize..6), 1..10),
        walks_b in proptest::collection::vec((0usize..6, 0usize..6), 1..10),
        w in 500.0f64..90_000.0,
    ) {
        let net = chain_network(8, 100.0, 10.0);
        // A's timestamps live in [0, ~10_500); B's start at 100_000,
        // strictly after every generated watermark.
        let a = walk_dataset(&net, &walks_a, 0.0, 0);
        let b = walk_dataset(&net, &walks_b, 100_000.0, 1000);
        prop_assume!(!a.is_empty() && !b.is_empty());

        let mut early = IncrementalNeat::new(&net, config());
        early.ingest_with_policy(&a, ErrorPolicy::Strict).unwrap();
        early.expire_before(w).unwrap();
        early.ingest_with_policy(&b, ErrorPolicy::Strict).unwrap();

        let mut late = IncrementalNeat::new(&net, config());
        late.ingest_with_policy(&a, ErrorPolicy::Strict).unwrap();
        late.ingest_with_policy(&b, ErrorPolicy::Strict).unwrap();
        late.expire_before(w).unwrap();

        prop_assert_eq!(fingerprint(&early), fingerprint(&late));
        prop_assert_eq!(early.batches(), late.batches());
    }

    /// Expiring twice at the same watermark — or again at any older
    /// one — is a no-op that reports `advanced = false`.
    #[test]
    fn expiry_is_idempotent(
        walks in proptest::collection::vec((0usize..6, 0usize..6), 1..10),
        w in 500.0f64..20_000.0,
        back in 0.0f64..5_000.0,
    ) {
        let net = chain_network(8, 100.0, 10.0);
        let data = walk_dataset(&net, &walks, 0.0, 0);
        prop_assume!(!data.is_empty());

        let mut s = IncrementalNeat::new(&net, config());
        s.ingest_with_policy(&data, ErrorPolicy::Strict).unwrap();
        s.expire_before(w).unwrap();
        let once = fingerprint(&s);
        let ops = s.batches();

        let again = s.expire_before(w).unwrap();
        prop_assert!(!again.advanced, "same watermark must not re-advance");
        prop_assert_eq!(again.expired_fragments, 0);
        let older = s.expire_before(w - back).unwrap();
        prop_assert!(!older.advanced, "older watermark must not regress");
        prop_assert_eq!(older.expired_fragments, 0);

        prop_assert_eq!(fingerprint(&s), once);
        prop_assert_eq!(s.batches(), ops, "no-op expiry must not consume sequence numbers");
    }
}
