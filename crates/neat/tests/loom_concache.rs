//! Loom models for [`neat_core::concache::ShardedMap`].
//!
//! Run with `cargo test -p neat-core --features loom`. The property
//! under test is the one the distance oracle's `sp_computations`
//! counter depends on: a value is computed exactly once per key no
//! matter how many threads race for it.
#![cfg(feature = "loom")]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;
use neat_core::concache::ShardedMap;

/// Two threads racing `get_or_insert_with` on the same keys: the
/// compute closure runs exactly once per key (it executes under the
/// shard lock), and both threads observe the same value afterwards.
#[test]
fn racing_inserts_compute_exactly_once_per_key() {
    loom::model(|| {
        let map: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let map = Arc::clone(&map);
                let computes = Arc::clone(&computes);
                thread::spawn(move || {
                    for k in 0..4u64 {
                        let (v, _) = map.get_or_insert_with(k, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            k * 10
                        });
                        assert_eq!(v, k * 10, "both racers must see the winner's value");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("racer thread");
        }
        assert_eq!(
            computes.load(Ordering::SeqCst),
            4,
            "each key must be computed exactly once across all threads"
        );
        assert_eq!(map.len(), 4);
        for k in 0..4 {
            assert_eq!(map.get(k), Some(k * 10));
        }
    });
}

/// A failing fallible compute racing a succeeding one never caches a
/// partial result: whatever the interleaving, the key ends up holding
/// the successful computation and nothing else.
#[test]
fn failed_compute_never_poisons_the_cache() {
    loom::model(|| {
        let map: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::new());
        let failer = {
            let map = Arc::clone(&map);
            thread::spawn(move || {
                // Err inserts nothing; Ok means the other thread won and
                // the cached value is served without running `compute`.
                let r = map.try_get_or_insert_with(3, || Err("interrupted"));
                if let Ok((v, fresh)) = r {
                    assert_eq!((v, fresh), (30, false), "a hit must be the winner's value");
                }
            })
        };
        let winner = {
            let map = Arc::clone(&map);
            thread::spawn(move || {
                let (v, _) = map.get_or_insert_with(3, || 30);
                assert_eq!(v, 30);
            })
        };
        failer.join().expect("failing thread");
        winner.join().expect("winning thread");
        assert_eq!(map.get(3), Some(30), "only the successful compute may land");
        assert_eq!(map.len(), 1);
    });
}
