//! Durable checkpoint/resume for [`IncrementalNeat`](crate::incremental::IncrementalNeat).
//!
//! Long-running online clustering must survive a crash at any instant
//! without losing acknowledged batches and without ever resuming into a
//! state that diverges from an uninterrupted run. This module provides
//! the NEAT-specific layer on top of `neat_durability`:
//!
//! * [`CheckpointStore`] — a checkpoint directory holding versioned,
//!   CRC-protected state snapshots plus an append-only journal of the
//!   batches ingested since the last snapshot.
//! * State codec — encodes the retained flow clusters, resilience
//!   counters, batch count and Phase-3 stats, prefixed with a
//!   [`config_hash`] and a [`network_fingerprint`] so a snapshot can
//!   never be resumed under a different configuration or road network.
//! * Batch codec — journal records carrying a full batch (dataset plus
//!   [`ErrorPolicy`]) so replay re-runs the exact same ingestion.
//!
//! # Protocol
//!
//! The online loop calls
//! [`ingest_logged`](crate::incremental::IncrementalNeat::ingest_logged)
//! per batch (ingest, then append the batch to the journal) and
//! [`save_checkpoint`](crate::incremental::IncrementalNeat::save_checkpoint)
//! every N batches. Because the journal is appended only *after* a batch
//! is successfully applied, every complete journal record corresponds to
//! an applied batch and replay is deterministic; a crash between apply
//! and append merely rolls the durable state back one batch, which the
//! driver detects from [`batches`](crate::incremental::IncrementalNeat::batches)
//! after resuming and re-feeds.
//!
//! # Recovery state machine
//!
//! [`resume`](crate::incremental::IncrementalNeat::resume) proceeds:
//!
//! 1. Load the newest snapshot that passes magic/version/length/CRC
//!    validation, falling back to the previous one on damage (both are
//!    retained; the journal is pruned only past the older of the two).
//! 2. Reject the snapshot unless its embedded config hash and network
//!    fingerprint match the caller's — resuming under different
//!    parameters would silently produce different clusters.
//! 3. Replay journal records with `seq > snapshot.seq` in order,
//!    requiring a contiguous sequence (a gap means lost records, a
//!    structured error — never a silent skip).
//! 4. A torn final journal record (crash mid-append) is dropped: by the
//!    protocol above its batch is at worst un-acknowledged.

use crate::config::{NeatConfig, RouteDistance, SpStrategy};
use crate::error::NeatError;
use crate::model::{BaseCluster, FlowCluster};
use crate::phase1::ResilienceCounters;
use crate::phase3::Phase3Stats;
use neat_durability::fs::Fs;
use neat_durability::store::Store;
use neat_durability::{fnv64, Dec, DurabilityError, Enc};
use neat_rnet::{NodeId, RoadLocation, RoadNetwork, SegmentId};
use neat_traj::sanitize::ErrorPolicy;
use neat_traj::{Dataset, TFragment, Trajectory, TrajectoryId};
use std::fmt;
use std::path::{Path, PathBuf};

/// Version of the checkpoint state payload. Bump on any wire-format
/// change; older snapshots are rejected with a structured error rather
/// than misparsed.
///
/// Version history: 1 — initial format; 2 — retention watermark added to
/// the state payload and expiry operations added to the journal.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Everything that can go wrong saving or resuming a checkpoint.
///
/// All failure modes are structured errors — corrupted or mismatched
/// checkpoints never panic and are never silently accepted.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Storage-layer failure: I/O, bad magic, version skew, CRC mismatch,
    /// truncation, or no loadable snapshot.
    Durability(DurabilityError),
    /// The snapshot was written under a different [`NeatConfig`].
    ConfigMismatch {
        /// Config hash embedded in the snapshot.
        stored: u64,
        /// Hash of the configuration passed to resume.
        current: u64,
    },
    /// The snapshot was written against a different road network.
    NetworkMismatch {
        /// Network fingerprint embedded in the snapshot.
        stored: u64,
        /// Fingerprint of the network passed to resume.
        current: u64,
    },
    /// The checkpoint directory holds nothing to resume from.
    NoCheckpoint {
        /// The directory that was inspected.
        dir: String,
    },
    /// Journal replay found a hole in the batch sequence (records lost).
    JournalGap {
        /// The next sequence number replay needed.
        expected: u64,
        /// The sequence number actually found.
        got: u64,
    },
    /// A decoded payload is structurally valid but semantically
    /// inconsistent (e.g. a flow cluster's node chain does not match its
    /// segments on this network).
    InvalidState {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The clustering pipeline itself failed outside replay (invalid
    /// configuration, or a strict-policy ingest error before anything
    /// was journaled).
    Neat(NeatError),
    /// Re-ingesting a journaled batch failed — the checkpoint was
    /// written by an incompatible pipeline or the data is damaged in a
    /// way the CRC could not see.
    Replay {
        /// Sequence number of the failing batch.
        seq: u64,
        /// The underlying pipeline error.
        source: NeatError,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Durability(e) => write!(f, "checkpoint storage: {e}"),
            CheckpointError::ConfigMismatch { stored, current } => write!(
                f,
                "checkpoint was written under a different configuration \
                 (stored hash {stored:#018x}, current {current:#018x}); \
                 resume with the original NeatConfig or start fresh"
            ),
            CheckpointError::NetworkMismatch { stored, current } => write!(
                f,
                "checkpoint was written against a different road network \
                 (stored fingerprint {stored:#018x}, current {current:#018x})"
            ),
            CheckpointError::NoCheckpoint { dir } => {
                write!(
                    f,
                    "nothing to resume: `{dir}` holds no snapshot and no journal"
                )
            }
            CheckpointError::JournalGap { expected, got } => write!(
                f,
                "journal gap: expected batch sequence {expected} but found {got} \
                 — records were lost, refusing to resume past the hole"
            ),
            CheckpointError::InvalidState { detail } => {
                write!(f, "checkpoint state is inconsistent: {detail}")
            }
            CheckpointError::Neat(e) => write!(f, "clustering pipeline: {e}"),
            CheckpointError::Replay { seq, source } => {
                write!(f, "replaying journaled batch {seq} failed: {source}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Durability(e) => Some(e),
            CheckpointError::Neat(e) | CheckpointError::Replay { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<DurabilityError> for CheckpointError {
    fn from(e: DurabilityError) -> Self {
        CheckpointError::Durability(e)
    }
}

/// Stable 64-bit hash of every [`NeatConfig`] field that influences
/// clustering output.
///
/// `threads` is deliberately excluded: every parallel path is
/// bit-identical to the sequential one, so a checkpoint taken with 4
/// threads resumes cleanly on 1. `alt_landmarks` and `endpoint_tables`
/// are excluded for the same reason — both are output-preserving
/// Phase-3 accelerations (the ALT bound only skips pairs the exact
/// distance would reject anyway, and endpoint tables answer the same
/// bounded queries).
pub fn config_hash(config: &NeatConfig) -> u64 {
    let mut e = Enc::with_capacity(64);
    e.f64(config.weights.wq());
    e.f64(config.weights.wk());
    e.f64(config.weights.wv());
    e.f64(config.beta);
    e.usize(config.min_card);
    e.f64(config.epsilon);
    e.u8(u8::from(config.use_elb));
    e.u8(match config.sp_strategy {
        SpStrategy::AStar => 0,
        SpStrategy::Dijkstra => 1,
    });
    e.u8(match config.route_distance {
        RouteDistance::Endpoints => 0,
        RouteDistance::FullRoute => 1,
    });
    e.u8(u8::from(config.insert_junctions));
    fnv64(&e.into_bytes())
}

/// Stable 64-bit fingerprint of a road network's full structure: every
/// junction position and every segment's endpoints, length, speed limit
/// and one-way flag.
pub fn network_fingerprint(net: &RoadNetwork) -> u64 {
    let mut e = Enc::with_capacity(24 * net.segments().len() + 16 * net.nodes().len() + 16);
    e.usize(net.nodes().len());
    for n in net.nodes() {
        e.f64(n.position.x);
        e.f64(n.position.y);
    }
    e.usize(net.segments().len());
    for s in net.segments() {
        e.u32(s.a.index() as u32); // lint:allow(L4) reason=NodeId/SegmentId wrap u32, so index() round-trips losslessly
        e.u32(s.b.index() as u32); // lint:allow(L4) reason=NodeId/SegmentId wrap u32, so index() round-trips losslessly
        e.f64(s.length);
        e.f64(s.speed_limit);
        e.u8(u8::from(s.oneway));
    }
    fnv64(&e.into_bytes())
}

/// The pieces of an [`IncrementalNeat`](crate::incremental::IncrementalNeat)
/// that a snapshot captures. Borrowed on encode, owned on decode.
pub(crate) struct StateParts<'s> {
    pub config: &'s NeatConfig,
    pub net: &'s RoadNetwork,
    pub flows: &'s [FlowCluster],
    pub batches: usize,
    pub last_stats: Phase3Stats,
    pub resilience: &'s ResilienceCounters,
    pub watermark: Option<f64>,
}

/// Decoded snapshot state, ready to rebuild the online clusterer.
#[derive(Debug)]
pub(crate) struct DecodedState {
    pub flows: Vec<FlowCluster>,
    pub batches: usize,
    pub last_stats: Phase3Stats,
    pub resilience: ResilienceCounters,
    pub watermark: Option<f64>,
}

fn enc_location(e: &mut Enc, loc: &RoadLocation) {
    e.u32(loc.segment.index() as u32); // lint:allow(L4) reason=NodeId/SegmentId wrap u32, so index() round-trips losslessly
    e.f64(loc.position.x);
    e.f64(loc.position.y);
    e.f64(loc.time);
}

fn dec_location(d: &mut Dec<'_>, context: &str) -> Result<RoadLocation, DurabilityError> {
    let segment = SegmentId::new(d.u32(context)? as usize);
    let x = d.f64(context)?;
    let y = d.f64(context)?;
    let time = d.f64(context)?;
    Ok(RoadLocation::new(
        segment,
        neat_rnet::Point::new(x, y),
        time,
    ))
}

fn enc_fragment(e: &mut Enc, f: &TFragment) {
    e.u64(f.trajectory.value());
    e.u32(f.segment.index() as u32); // lint:allow(L4) reason=NodeId/SegmentId wrap u32, so index() round-trips losslessly
    enc_location(e, &f.first);
    enc_location(e, &f.last);
    e.usize(f.point_count);
}

/// Minimum encoded size of one t-fragment (for count validation).
const FRAGMENT_MIN_LEN: usize = 8 + 4 + 28 + 28 + 8;

fn dec_fragment(d: &mut Dec<'_>) -> Result<TFragment, DurabilityError> {
    const CTX: &str = "t-fragment";
    Ok(TFragment {
        trajectory: TrajectoryId::new(d.u64(CTX)?),
        segment: SegmentId::new(d.u32(CTX)? as usize),
        first: dec_location(d, CTX)?,
        last: dec_location(d, CTX)?,
        point_count: d.usize(CTX)?,
    })
}

/// Encodes the full online-clusterer state into a snapshot payload.
pub(crate) fn encode_state(parts: &StateParts<'_>) -> Vec<u8> {
    let mut e = Enc::with_capacity(1024);
    e.u64(config_hash(parts.config));
    e.u64(network_fingerprint(parts.net));
    e.usize(parts.batches);
    match parts.watermark {
        Some(w) => {
            e.u8(1);
            e.f64(w);
        }
        None => e.u8(0),
    }
    e.usize(parts.flows.len());
    for flow in parts.flows {
        e.usize(flow.members().len());
        for member in flow.members() {
            e.u32(member.segment().index() as u32); // lint:allow(L4) reason=NodeId/SegmentId wrap u32, so index() round-trips losslessly
            e.usize(member.fragments().len());
            for frag in member.fragments() {
                enc_fragment(&mut e, frag);
            }
        }
        e.usize(flow.node_chain().len());
        for node in flow.node_chain() {
            e.u32(node.index() as u32); // lint:allow(L4) reason=NodeId/SegmentId wrap u32, so index() round-trips losslessly
        }
    }
    e.usize(parts.resilience.skipped);
    e.usize(parts.resilience.repaired);
    e.usize(parts.resilience.skipped_ids.len());
    for id in &parts.resilience.skipped_ids {
        e.u64(id.value());
    }
    e.u64(parts.last_stats.pairs_considered);
    e.u64(parts.last_stats.elb_skips);
    e.u64(parts.last_stats.sp_computations);
    e.u64(parts.last_stats.sp_cache_hits);
    e.u64(parts.last_stats.alt_skips);
    e.u64(parts.last_stats.one_to_many_scans);
    e.into_bytes()
}

fn invalid(detail: impl Into<String>) -> CheckpointError {
    CheckpointError::InvalidState {
        detail: detail.into(),
    }
}

/// Decodes and validates a snapshot payload against the current network
/// and configuration.
pub(crate) fn decode_state(
    payload: &[u8],
    net: &RoadNetwork,
    config: &NeatConfig,
) -> Result<DecodedState, CheckpointError> {
    let mut d = Dec::new(payload);
    let stored_cfg = d.u64("config hash")?;
    let current_cfg = config_hash(config);
    if stored_cfg != current_cfg {
        return Err(CheckpointError::ConfigMismatch {
            stored: stored_cfg,
            current: current_cfg,
        });
    }
    let stored_net = d.u64("network fingerprint")?;
    let current_net = network_fingerprint(net);
    if stored_net != current_net {
        return Err(CheckpointError::NetworkMismatch {
            stored: stored_net,
            current: current_net,
        });
    }
    let batches = d.usize("batch count")?;
    let watermark = match d.u8("watermark flag")? {
        0 => None,
        1 => Some(d.f64("watermark")?),
        other => return Err(invalid(format!("unknown watermark flag {other}"))),
    };

    let flow_count = d.count("flow cluster count", 8)?;
    let mut flows = Vec::with_capacity(flow_count);
    for fi in 0..flow_count {
        let member_count = d.count("member count", 4 + 8)?;
        if member_count == 0 {
            return Err(invalid(format!("flow {fi} has no members")));
        }
        let mut members = Vec::with_capacity(member_count);
        for _ in 0..member_count {
            let segment = SegmentId::new(d.u32("member segment")? as usize);
            let frag_count = d.count("fragment count", FRAGMENT_MIN_LEN)?;
            let mut fragments = Vec::with_capacity(frag_count);
            for _ in 0..frag_count {
                fragments.push(dec_fragment(&mut d)?);
            }
            let base = BaseCluster::new(segment, fragments)
                .map_err(|e| invalid(format!("flow {fi}: {e}")))?;
            members.push(base);
        }
        let node_count = d.count("node chain length", 4)?;
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            nodes.push(NodeId::new(d.u32("node id")? as usize));
        }
        flows.push(rebuild_flow(net, fi, members, nodes)?);
    }

    let skipped = d.usize("skipped count")?;
    let repaired = d.usize("repaired count")?;
    let id_count = d.count("skipped id count", 8)?;
    let mut skipped_ids = Vec::with_capacity(id_count);
    for _ in 0..id_count {
        skipped_ids.push(TrajectoryId::new(d.u64("skipped id")?));
    }
    let last_stats = Phase3Stats {
        pairs_considered: d.u64("pairs_considered")?,
        elb_skips: d.u64("elb_skips")?,
        sp_computations: d.u64("sp_computations")?,
        sp_cache_hits: d.u64("sp_cache_hits")?,
        alt_skips: d.u64("alt_skips")?,
        one_to_many_scans: d.u64("one_to_many_scans")?,
    };
    d.expect_exhausted("checkpoint state")?;

    Ok(DecodedState {
        flows,
        batches,
        last_stats,
        resilience: ResilienceCounters {
            skipped,
            repaired,
            skipped_ids,
        },
        watermark,
    })
}

/// Reassembles one flow cluster, re-validating its route against the
/// current network: every member segment must exist and the stored node
/// chain must walk that segment's endpoints.
fn rebuild_flow(
    net: &RoadNetwork,
    fi: usize,
    members: Vec<BaseCluster>,
    nodes: Vec<NodeId>,
) -> Result<FlowCluster, CheckpointError> {
    if nodes.len() != members.len() + 1 {
        return Err(invalid(format!(
            "flow {fi}: node chain has {} entries for {} members (want members + 1)",
            nodes.len(),
            members.len()
        )));
    }
    for (mi, member) in members.iter().enumerate() {
        let seg = net.segment(member.segment()).map_err(|_| {
            invalid(format!(
                "flow {fi} member {mi}: segment {} not in this network",
                member.segment()
            ))
        })?;
        let (u, v) = (nodes[mi], nodes[mi + 1]);
        let matches = (u == seg.a && v == seg.b) || (u == seg.b && v == seg.a);
        if !matches {
            return Err(invalid(format!(
                "flow {fi} member {mi}: node chain ({u}, {v}) does not match \
                 segment {} endpoints ({}, {})",
                member.segment(),
                seg.a,
                seg.b
            )));
        }
    }
    FlowCluster::from_parts(members, nodes)
        .ok_or_else(|| invalid(format!("flow {fi}: could not reassemble members")))
}

/// First payload byte of a journaled expiry operation. Disjoint from
/// every [`policy_code`] (0–2), so the two record kinds are told apart
/// by peeking one byte.
pub(crate) const EXPIRY_MARKER: u8 = 0xE0;

/// Whether a journal payload is an expiry operation rather than a batch.
pub(crate) fn is_expiry_record(payload: &[u8]) -> bool {
    payload.first() == Some(&EXPIRY_MARKER)
}

/// Encodes a journaled watermark advance.
pub(crate) fn encode_expiry(watermark: f64) -> Vec<u8> {
    let mut e = Enc::with_capacity(9);
    e.u8(EXPIRY_MARKER);
    e.f64(watermark);
    e.into_bytes()
}

/// Decodes a journaled watermark advance.
pub(crate) fn decode_expiry(payload: &[u8]) -> Result<f64, CheckpointError> {
    let mut d = Dec::new(payload);
    let marker = d.u8("expiry marker")?;
    if marker != EXPIRY_MARKER {
        return Err(invalid(format!(
            "expected expiry marker {EXPIRY_MARKER:#04x}, found {marker:#04x}"
        )));
    }
    let w = d.f64("expiry watermark")?;
    d.expect_exhausted("expiry record")?;
    Ok(w)
}

fn policy_code(policy: ErrorPolicy) -> u8 {
    match policy {
        ErrorPolicy::Strict => 0,
        ErrorPolicy::Skip => 1,
        ErrorPolicy::Repair => 2,
    }
}

fn policy_from_code(code: u8) -> Result<ErrorPolicy, CheckpointError> {
    match code {
        0 => Ok(ErrorPolicy::Strict),
        1 => Ok(ErrorPolicy::Skip),
        2 => Ok(ErrorPolicy::Repair),
        other => Err(invalid(format!("unknown error-policy code {other}"))),
    }
}

/// Encodes one journaled batch: the error policy plus the full dataset.
pub(crate) fn encode_batch(batch: &Dataset, policy: ErrorPolicy) -> Vec<u8> {
    let mut e = Enc::with_capacity(64 + 32 * batch.total_points());
    e.u8(policy_code(policy));
    e.str(batch.name());
    e.usize(batch.len());
    for tr in batch.trajectories() {
        e.u64(tr.id().value());
        e.usize(tr.points().len());
        for p in tr.points() {
            enc_location(&mut e, p);
        }
    }
    e.into_bytes()
}

/// Decodes a journaled batch back into a dataset and its policy.
pub(crate) fn decode_batch(payload: &[u8]) -> Result<(Dataset, ErrorPolicy), CheckpointError> {
    let mut d = Dec::new(payload);
    let policy = policy_from_code(d.u8("policy code")?)?;
    let name = d.str("dataset name")?.to_string();
    let traj_count = d.count("trajectory count", 8 + 8)?;
    let mut batch = Dataset::new(name);
    for _ in 0..traj_count {
        let id = TrajectoryId::new(d.u64("trajectory id")?);
        let point_count = d.count("point count", 28)?;
        let mut points = Vec::with_capacity(point_count);
        for _ in 0..point_count {
            points.push(dec_location(&mut d, "location")?);
        }
        let tr = Trajectory::new(id, points)
            .map_err(|e| invalid(format!("journaled trajectory {}: {e}", id.value())))?;
        batch.push(tr);
    }
    d.expect_exhausted("journaled batch")?;
    Ok((batch, policy))
}

/// A checkpoint directory for one online clustering session.
///
/// Thin typed wrapper over [`Store`] fixing the payload version to
/// [`CHECKPOINT_VERSION`]; the actual save/resume entry points live on
/// [`IncrementalNeat`](crate::incremental::IncrementalNeat).
#[derive(Debug, Clone)]
pub struct CheckpointStore<F: Fs> {
    store: Store<F>,
}

impl<F: Fs> CheckpointStore<F> {
    /// Opens (creating if necessary) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Durability`] when the directory cannot be
    /// created.
    pub fn open(fs: F, dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        Ok(CheckpointStore {
            store: Store::open(fs, dir, CHECKPOINT_VERSION)?,
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// Appends one applied batch to the journal, tagged with its
    /// sequence number (= the batch count after applying it).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Durability`] on filesystem failure.
    pub fn log_batch(
        &self,
        seq: u64,
        batch: &Dataset,
        policy: ErrorPolicy,
    ) -> Result<(), CheckpointError> {
        Ok(self
            .store
            .append_journal(seq, &encode_batch(batch, policy))?)
    }

    /// Appends one applied watermark advance to the journal, tagged with
    /// its operation sequence number.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Durability`] on filesystem failure.
    pub fn log_expiry(&self, seq: u64, watermark: f64) -> Result<(), CheckpointError> {
        Ok(self.store.append_journal(seq, &encode_expiry(watermark))?)
    }

    /// Batch IDs (journaled dataset names) of **every** record currently
    /// in the journal, with their sequence numbers, in sequence order —
    /// including records already covered by a snapshot that compaction
    /// has not yet dropped, across all journal segments.
    ///
    /// This is the service layer's idempotent-replay index: a spool file
    /// whose name appears here was applied and journaled, so finding it
    /// again after a crash (the append-succeeded-but-ack-was-lost
    /// window) means *skip*, not *re-ingest*. Because pruning only runs
    /// when a snapshot is written, reconciling the spool against this
    /// list before writing any new checkpoint sees every applied-but-
    /// unacknowledged batch.
    ///
    /// A torn final record is ignored (by the journal protocol its batch
    /// was never acknowledged).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Durability`] on an unreadable journal,
    /// [`CheckpointError::InvalidState`] on a record too short to carry
    /// its tag or an undecodable batch header.
    pub fn journaled_batch_ids(&self) -> Result<Vec<(u64, String)>, CheckpointError> {
        let records = self.store.journal_records()?;
        let mut ids = Vec::with_capacity(records.len());
        for entry in &records {
            // Expiry operations carry no batch id; they are not
            // replayable pushes, so the index skips them.
            if is_expiry_record(&entry.payload) {
                continue;
            }
            // Only the header (policy byte + name) is needed; skip the
            // trajectory payload.
            let mut d = Dec::new(&entry.payload);
            policy_from_code(d.u8("policy code")?)?;
            ids.push((entry.seq, d.str("dataset name")?.to_string()));
        }
        Ok(ids)
    }

    /// Like [`CheckpointStore::journaled_batch_ids`], but with each
    /// batch's maximum point time attached — the service layer's
    /// bounded replay index: an ID may be dropped from the durable
    /// index once its journal records are compacted away **and** its
    /// `max_time` is below the watermark, because re-ingesting such a
    /// batch is provably a state no-op (every flow it could form is
    /// filtered by watermark admission).
    ///
    /// An empty batch reports `f64::NEG_INFINITY` — vacuously below any
    /// watermark, which is correct: replaying it changes nothing.
    ///
    /// # Errors
    ///
    /// Same as [`CheckpointStore::journaled_batch_ids`], plus
    /// [`CheckpointError::InvalidState`] on an undecodable batch body.
    pub fn journaled_batch_index(&self) -> Result<Vec<(u64, String, f64)>, CheckpointError> {
        let records = self.store.journal_records()?;
        let mut index = Vec::with_capacity(records.len());
        for entry in &records {
            if is_expiry_record(&entry.payload) {
                continue;
            }
            let (batch, _policy) = decode_batch(&entry.payload)?;
            let max_time = batch
                .trajectories()
                .iter()
                .map(|t| t.last().time)
                .fold(f64::NEG_INFINITY, f64::max);
            index.push((entry.seq, batch.name().to_string(), max_time));
        }
        Ok(index)
    }

    /// The sequence floor journal compaction prunes up to: the oldest
    /// *retained* snapshot (zero with no snapshot on disk). Records at
    /// or below this floor may disappear from the journal at any
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Durability`] when the directory cannot be
    /// listed.
    pub fn retained_floor(&self) -> Result<u64, CheckpointError> {
        let seqs = self.store.snapshot_seqs()?;
        let retained = &seqs[seqs
            .len()
            .saturating_sub(neat_durability::store::RETAIN_SNAPSHOTS)..];
        Ok(retained.first().copied().unwrap_or(0))
    }

    /// Compacts the journal past the oldest retained snapshot — the
    /// same reclamation a checkpoint performs, callable on its own so a
    /// service can retry a failed compaction (or force one on a cadence)
    /// without writing a new snapshot.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Durability`] on filesystem failure; the
    /// journal stays loadable from the old segments.
    pub fn compact_journal(&self) -> Result<neat_durability::CompactionOutcome, CheckpointError> {
        let cutoff = self.retained_floor()?;
        Ok(self.store.compact_journal(cutoff)?)
    }

    /// The underlying durability store.
    pub(crate) fn store(&self) -> &Store<F> {
        &self.store
    }
}

/// What [`IncrementalNeat::resume`](crate::incremental::IncrementalNeat::resume)
/// reconstructed, for logging and diagnostics.
#[derive(Debug, Clone, Default)]
pub struct ResumeReport {
    /// Sequence (batch count) of the snapshot that was loaded, `None`
    /// when the session resumed from journal replay alone.
    pub snapshot_seq: Option<u64>,
    /// Journaled batches re-ingested on top of the snapshot.
    pub replayed_batches: usize,
    /// Snapshot files that failed validation and were skipped, as
    /// `(file, reason)` — non-empty means the newest snapshot was
    /// damaged and an older one was used.
    pub rejected_snapshots: Vec<(String, String)>,
    /// Bytes dropped from an incomplete final journal record (crash
    /// mid-append).
    pub torn_tail_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::Point;

    fn frag(tr: u64, seg: usize, x: f64) -> TFragment {
        TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(seg),
            first: RoadLocation::new(SegmentId::new(seg), Point::new(x, 0.0), 0.0),
            last: RoadLocation::new(SegmentId::new(seg), Point::new(x + 1.0, 0.0), 5.0),
            point_count: 2,
        }
    }

    fn sample_flows(net: &RoadNetwork) -> Vec<FlowCluster> {
        let b0 =
            BaseCluster::new(SegmentId::new(0), vec![frag(1, 0, 10.0), frag(2, 0, 20.0)]).unwrap();
        let b1 = BaseCluster::new(SegmentId::new(1), vec![frag(1, 1, 110.0)]).unwrap();
        let mut f = FlowCluster::from_base(net, b0).unwrap();
        f.push_back(net, b1).unwrap();
        let b5 = BaseCluster::new(SegmentId::new(5), vec![frag(9, 5, 510.0)]).unwrap();
        let g = FlowCluster::from_base(net, b5).unwrap();
        vec![f, g]
    }

    fn parts<'s>(
        net: &'s RoadNetwork,
        config: &'s NeatConfig,
        flows: &'s [FlowCluster],
        resilience: &'s ResilienceCounters,
    ) -> StateParts<'s> {
        StateParts {
            config,
            net,
            flows,
            batches: 7,
            last_stats: Phase3Stats {
                pairs_considered: 10,
                elb_skips: 3,
                alt_skips: 1,
                sp_computations: 4,
                sp_cache_hits: 2,
                one_to_many_scans: 2,
            },
            resilience,
            watermark: Some(123.5),
        }
    }

    #[test]
    fn state_round_trips_exactly() {
        let net = chain_network(8, 100.0, 10.0);
        let config = NeatConfig::default();
        let flows = sample_flows(&net);
        let res = ResilienceCounters {
            skipped: 2,
            repaired: 1,
            skipped_ids: vec![TrajectoryId::new(41), TrajectoryId::new(42)],
        };
        let payload = encode_state(&parts(&net, &config, &flows, &res));
        let state = decode_state(&payload, &net, &config).unwrap();
        assert_eq!(state.flows, flows);
        assert_eq!(state.batches, 7);
        assert_eq!(state.watermark, Some(123.5));
        assert_eq!(state.last_stats.pairs_considered, 10);
        assert_eq!(state.resilience.skipped, 2);
        assert_eq!(state.resilience.skipped_ids, res.skipped_ids);
        // Encoding the decoded state reproduces the same bytes.
        let again = encode_state(&parts(&net, &config, &state.flows, &state.resilience));
        assert_eq!(again, payload);
    }

    #[test]
    fn config_mismatch_is_structured() {
        let net = chain_network(8, 100.0, 10.0);
        let config = NeatConfig::default();
        let flows = sample_flows(&net);
        let res = ResilienceCounters::default();
        let payload = encode_state(&parts(&net, &config, &flows, &res));
        let other = NeatConfig {
            epsilon: 123.0,
            ..config
        };
        assert!(matches!(
            decode_state(&payload, &net, &other).unwrap_err(),
            CheckpointError::ConfigMismatch { .. }
        ));
    }

    #[test]
    fn network_mismatch_is_structured() {
        let net = chain_network(8, 100.0, 10.0);
        let config = NeatConfig::default();
        let flows = sample_flows(&net);
        let res = ResilienceCounters::default();
        let payload = encode_state(&parts(&net, &config, &flows, &res));
        let other = chain_network(9, 100.0, 10.0);
        assert!(matches!(
            decode_state(&payload, &other, &config).unwrap_err(),
            CheckpointError::NetworkMismatch { .. }
        ));
    }

    #[test]
    fn output_preserving_knobs_do_not_change_the_config_hash() {
        let base = NeatConfig::default();
        let tuned = NeatConfig {
            threads: 8,
            alt_landmarks: base.alt_landmarks + 8,
            endpoint_tables: !base.endpoint_tables,
            ..base
        };
        assert_eq!(config_hash(&base), config_hash(&tuned));
        let different = NeatConfig {
            min_card: base.min_card + 1,
            ..base
        };
        assert_ne!(config_hash(&base), config_hash(&different));
    }

    #[test]
    fn network_fingerprint_sees_every_field() {
        let a = chain_network(5, 100.0, 10.0);
        let b = chain_network(5, 100.0, 12.0); // different speed limit
        let c = chain_network(6, 100.0, 10.0); // different topology
        assert_ne!(network_fingerprint(&a), network_fingerprint(&b));
        assert_ne!(network_fingerprint(&a), network_fingerprint(&c));
        assert_eq!(
            network_fingerprint(&a),
            network_fingerprint(&chain_network(5, 100.0, 10.0))
        );
    }

    #[test]
    fn truncated_state_is_rejected_not_panicking() {
        let net = chain_network(8, 100.0, 10.0);
        let config = NeatConfig::default();
        let flows = sample_flows(&net);
        let res = ResilienceCounters::default();
        let payload = encode_state(&parts(&net, &config, &flows, &res));
        for cut in 0..payload.len() {
            assert!(
                decode_state(&payload[..cut], &net, &config).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn batch_round_trips_with_policy() {
        let mut batch = Dataset::new("rush-hour");
        batch.push(
            Trajectory::new(
                TrajectoryId::new(7),
                vec![
                    RoadLocation::new(SegmentId::new(0), Point::new(1.0, 2.0), 0.0),
                    RoadLocation::new(SegmentId::new(1), Point::new(3.0, 4.0), 9.5),
                ],
            )
            .unwrap(),
        );
        for policy in [ErrorPolicy::Strict, ErrorPolicy::Skip, ErrorPolicy::Repair] {
            let payload = encode_batch(&batch, policy);
            let (decoded, got_policy) = decode_batch(&payload).unwrap();
            assert_eq!(decoded, batch);
            assert_eq!(got_policy, policy);
        }
    }

    #[test]
    fn batch_decode_rejects_bad_policy_and_trailing_bytes() {
        let batch = Dataset::new("b");
        let mut payload = encode_batch(&batch, ErrorPolicy::Skip);
        payload[0] = 9;
        assert!(matches!(
            decode_batch(&payload).unwrap_err(),
            CheckpointError::InvalidState { .. }
        ));
        let mut payload = encode_batch(&batch, ErrorPolicy::Skip);
        payload.push(0);
        assert!(decode_batch(&payload).is_err());
    }

    #[test]
    fn expiry_record_round_trips_and_is_distinguishable() {
        let payload = encode_expiry(98.25);
        assert!(is_expiry_record(&payload));
        assert_eq!(decode_expiry(&payload).unwrap(), 98.25);
        // Batch records never look like expiry records: their first byte
        // is a policy code, disjoint from the marker.
        for policy in [ErrorPolicy::Strict, ErrorPolicy::Skip, ErrorPolicy::Repair] {
            assert!(!is_expiry_record(&encode_batch(&Dataset::new("b"), policy)));
        }
        // Truncated or padded expiry records are rejected.
        assert!(decode_expiry(&payload[..5]).is_err());
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_expiry(&padded).is_err());
    }

    #[test]
    fn node_chain_inconsistent_with_network_is_invalid_state() {
        let net = chain_network(8, 100.0, 10.0);
        let config = NeatConfig::default();
        let res = ResilienceCounters::default();
        let b0 = BaseCluster::new(SegmentId::new(0), vec![frag(1, 0, 10.0)]).unwrap();
        let bad_flow = FlowCluster::from_parts(
            vec![b0],
            vec![NodeId::new(5), NodeId::new(6)], // wrong endpoints for segment 0
        )
        .unwrap();
        let payload = encode_state(&parts(&net, &config, std::slice::from_ref(&bad_flow), &res));
        assert!(matches!(
            decode_state(&payload, &net, &config).unwrap_err(),
            CheckpointError::InvalidState { .. }
        ));
    }
}
