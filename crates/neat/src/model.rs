//! The NEAT data model: base clusters, flow clusters and trajectory
//! clusters (Definitions 2–8 of the paper).

use crate::error::NeatError;
use neat_rnet::{NodeId, RoadNetwork, SegmentId};
use neat_traj::{TFragment, TrajectoryId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A base cluster (Definition 2): all t-fragments of a trajectory set that
/// lie on one road segment, which is the cluster's *representative* `e_S`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaseCluster {
    segment: SegmentId,
    fragments: Vec<TFragment>,
    /// Cached participating-trajectory set `P_Tr(S)` (Definition 3).
    trajectories: BTreeSet<TrajectoryId>,
}

impl BaseCluster {
    /// Creates a base cluster from fragments that all lie on `segment`.
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::SegmentMismatch`] if any fragment lies on a
    /// different segment.
    pub fn new(segment: SegmentId, fragments: Vec<TFragment>) -> Result<Self, NeatError> {
        for f in &fragments {
            if f.segment != segment {
                return Err(NeatError::SegmentMismatch {
                    expected: segment,
                    got: f.segment,
                });
            }
        }
        let trajectories = fragments.iter().map(|f| f.trajectory).collect();
        Ok(BaseCluster {
            segment,
            fragments,
            trajectories,
        })
    }

    /// Like [`BaseCluster::new`] for fragments already grouped by
    /// `segment` (phase 1's counting scatter guarantees it), skipping
    /// the per-fragment re-validation pass.
    pub(crate) fn from_grouped(segment: SegmentId, fragments: Vec<TFragment>) -> Self {
        debug_assert!(fragments.iter().all(|f| f.segment == segment));
        let trajectories = fragments.iter().map(|f| f.trajectory).collect();
        BaseCluster {
            segment,
            fragments,
            trajectories,
        }
    }

    /// The representative road segment `e_S`.
    pub fn segment(&self) -> SegmentId {
        self.segment
    }

    /// The member t-fragments.
    pub fn fragments(&self) -> &[TFragment] {
        &self.fragments
    }

    /// Cluster density `d(S)` (Definition 4): the number of t-fragments.
    pub fn density(&self) -> usize {
        self.fragments.len()
    }

    /// The participating trajectories `P_Tr(S)` (Definition 3).
    pub fn participating_trajectories(&self) -> &BTreeSet<TrajectoryId> {
        &self.trajectories
    }

    /// Trajectory cardinality `|P_Tr(S)|` (Definition 3).
    pub fn trajectory_cardinality(&self) -> usize {
        self.trajectories.len()
    }

    /// Netflow `f(Si, Sj)` (Definition 5): the number of trajectories
    /// participating in both clusters.
    pub fn netflow(&self, other: &BaseCluster) -> usize {
        intersection_size(&self.trajectories, &other.trajectories)
    }
}

/// Size of the intersection of two ordered trajectory sets, iterating the
/// smaller set.
pub(crate) fn intersection_size(a: &BTreeSet<TrajectoryId>, b: &BTreeSet<TrajectoryId>) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().filter(|t| large.contains(t)).count()
}

/// The f-neighbourhood `N_f(S, n_u)` of Definition 6: among `candidates`,
/// the base clusters whose representative segments are adjacent to `of`'s
/// segment at junction `nu` and share at least one participating
/// trajectory with `of`. Returned in `candidates` order.
///
/// # Panics
///
/// Panics if `nu` is not an endpoint of `of`'s segment (the paper's
/// operator is only defined at the segment's endpoints).
pub fn f_neighborhood<'a>(
    net: &RoadNetwork,
    of: &BaseCluster,
    nu: NodeId,
    candidates: &'a [BaseCluster],
) -> Vec<&'a BaseCluster> {
    let adjacent = net.adjacent_segments_at(of.segment(), nu);
    candidates
        .iter()
        .filter(|c| adjacent.contains(&c.segment()) && of.netflow(c) > 0)
        .collect()
}

/// The maxFlow-neighbour of Definition 7: the member of
/// [`f_neighborhood`] with the highest netflow to `of` (ties broken by
/// segment id for determinism), or `None` when the neighbourhood is
/// empty.
pub fn maxflow_neighbor<'a>(
    net: &RoadNetwork,
    of: &BaseCluster,
    nu: NodeId,
    candidates: &'a [BaseCluster],
) -> Option<&'a BaseCluster> {
    f_neighborhood(net, of, nu, candidates)
        .into_iter()
        .max_by(|a, b| {
            of.netflow(a)
                .cmp(&of.netflow(b))
                .then_with(|| b.segment().cmp(&a.segment()))
        })
}

/// A flow cluster (Definition 8): an ordered list of base clusters whose
/// representative segments form a route in the road network.
///
/// The junction chain is maintained alongside the members, so the flow's
/// two open endpoints — needed by the Phase-3 distance — are always
/// available in O(1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowCluster {
    members: Vec<BaseCluster>,
    /// Junction chain of the representative route; `nodes.len() ==
    /// members.len() + 1`. `nodes[i]` and `nodes[i+1]` are the endpoints of
    /// `members[i].segment()`.
    nodes: Vec<NodeId>,
    trajectories: BTreeSet<TrajectoryId>,
}

impl FlowCluster {
    /// Creates a flow cluster containing a single base cluster. The node
    /// chain is seeded with the segment's `(a, b)` endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::UnknownSegment`] if the base cluster's segment
    /// is not part of `net`.
    pub fn from_base(net: &RoadNetwork, base: BaseCluster) -> Result<Self, NeatError> {
        let seg = net
            .segment(base.segment())
            .map_err(|_| NeatError::UnknownSegment(base.segment()))?;
        let nodes = vec![seg.a, seg.b];
        let trajectories = base.trajectories.clone();
        Ok(FlowCluster {
            members: vec![base],
            nodes,
            trajectories,
        })
    }

    /// Reassembles a flow cluster from checkpoint-decoded parts. The
    /// participating-trajectory cache is recomputed; the caller (the
    /// checkpoint decoder) has already validated the node chain against
    /// the road network. Returns `None` when the chain length does not
    /// match the member count or there are no members.
    pub(crate) fn from_parts(members: Vec<BaseCluster>, nodes: Vec<NodeId>) -> Option<Self> {
        if members.is_empty() || nodes.len() != members.len() + 1 {
            return None;
        }
        let mut trajectories = BTreeSet::new();
        for m in &members {
            trajectories.extend(m.trajectories.iter().copied());
        }
        Some(FlowCluster {
            members,
            nodes,
            trajectories,
        })
    }

    /// Member base clusters in route order.
    pub fn members(&self) -> &[BaseCluster] {
        &self.members
    }

    /// The representative route `r_F` as a segment sequence.
    pub fn route(&self) -> Vec<SegmentId> {
        self.members.iter().map(BaseCluster::segment).collect()
    }

    /// The junction chain of the representative route (one node more than
    /// there are members).
    pub fn node_chain(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The two open endpoints of the representative route —
    /// `{a1, a2}` in Definition 11.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (
            *self.nodes.first().expect("flow has at least one member"), // lint:allow(L1) reason=FlowCluster construction guarantees at least one member node
            *self.nodes.last().expect("flow has at least one member"),
        )
    }

    /// Open endpoint at the back of the route (extension point for
    /// appending).
    pub fn back_endpoint(&self) -> NodeId {
        *self.nodes.last().expect("non-empty") // lint:allow(L1) reason=FlowCluster nodes are non-empty by construction
    }

    /// Open endpoint at the front of the route (extension point for
    /// prepending).
    pub fn front_endpoint(&self) -> NodeId {
        *self.nodes.first().expect("non-empty") // lint:allow(L1) reason=FlowCluster nodes are non-empty by construction
    }

    /// Total length of the representative route in metres.
    pub fn route_length(&self, net: &RoadNetwork) -> f64 {
        self.members
            .iter()
            .map(|m| {
                net.segment(m.segment())
                    .map(|s| s.length)
                    .unwrap_or_default()
            })
            .sum()
    }

    /// Participating trajectories `P_Tr(F)` — the union over members.
    pub fn participating_trajectories(&self) -> &BTreeSet<TrajectoryId> {
        &self.trajectories
    }

    /// Trajectory cardinality `|P_Tr(F)|`.
    pub fn trajectory_cardinality(&self) -> usize {
        self.trajectories.len()
    }

    /// Total t-fragment count over all members.
    pub fn density(&self) -> usize {
        self.members.iter().map(BaseCluster::density).sum()
    }

    /// Netflow between this flow cluster and a base cluster,
    /// `f(F, S) = |P_Tr(F) ∩ P_Tr(S)|` (Section II-B).
    pub fn netflow_with(&self, base: &BaseCluster) -> usize {
        intersection_size(&self.trajectories, &base.trajectories)
    }

    /// Appends `base` at the back of the route. Its segment must be
    /// incident to [`FlowCluster::back_endpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::NotAdjacent`] when the candidate segment does
    /// not touch the back endpoint, or [`NeatError::UnknownSegment`] when
    /// it is not part of `net`.
    pub fn push_back(&mut self, net: &RoadNetwork, base: BaseCluster) -> Result<(), NeatError> {
        let seg = net
            .segment(base.segment())
            .map_err(|_| NeatError::UnknownSegment(base.segment()))?;
        let join = self.back_endpoint();
        if !seg.has_endpoint(join) {
            return Err(NeatError::NotAdjacent {
                end: self.members.last().expect("non-empty").segment(), // lint:allow(L1) reason=members is non-empty whenever an extension is attempted
                candidate: base.segment(),
            });
        }
        self.nodes.push(seg.other_endpoint(join));
        self.trajectories.extend(base.trajectories.iter().copied());
        self.members.push(base);
        Ok(())
    }

    /// Prepends `base` at the front of the route. Its segment must be
    /// incident to [`FlowCluster::front_endpoint`].
    ///
    /// # Errors
    ///
    /// Same as [`FlowCluster::push_back`].
    pub fn push_front(&mut self, net: &RoadNetwork, base: BaseCluster) -> Result<(), NeatError> {
        let seg = net
            .segment(base.segment())
            .map_err(|_| NeatError::UnknownSegment(base.segment()))?;
        let join = self.front_endpoint();
        if !seg.has_endpoint(join) {
            return Err(NeatError::NotAdjacent {
                end: self.members.first().expect("non-empty").segment(), // lint:allow(L1) reason=members is non-empty whenever an extension is attempted
                candidate: base.segment(),
            });
        }
        self.nodes.insert(0, seg.other_endpoint(join));
        self.trajectories.extend(base.trajectories.iter().copied());
        self.members.insert(0, base);
        Ok(())
    }
}

/// A final trajectory cluster (Phase-3 output): one or more flow clusters
/// whose representative routes are density-connected under the modified
/// Hausdorff network distance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryCluster {
    flows: Vec<FlowCluster>,
}

impl TrajectoryCluster {
    /// Creates a trajectory cluster from its member flows.
    ///
    /// # Panics
    ///
    /// Panics when `flows` is empty — a cluster always has at least one
    /// member.
    pub fn new(flows: Vec<FlowCluster>) -> Self {
        assert!(!flows.is_empty(), "trajectory cluster cannot be empty");
        TrajectoryCluster { flows }
    }

    /// Member flow clusters.
    pub fn flows(&self) -> &[FlowCluster] {
        &self.flows
    }

    /// Total t-fragment count.
    pub fn density(&self) -> usize {
        self.flows.iter().map(FlowCluster::density).sum()
    }

    /// Number of distinct participating trajectories.
    pub fn trajectory_cardinality(&self) -> usize {
        let mut all = BTreeSet::new();
        for f in &self.flows {
            all.extend(f.participating_trajectories().iter().copied());
        }
        all.len()
    }

    /// Sum of the member flows' representative-route lengths in metres.
    pub fn total_route_length(&self, net: &RoadNetwork) -> f64 {
        self.flows.iter().map(|f| f.route_length(net)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation};

    fn frag(tr: u64, seg: usize) -> TFragment {
        let loc = RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), 0.0);
        TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(seg),
            first: loc,
            last: loc,
            point_count: 2,
        }
    }

    #[test]
    fn base_cluster_density_and_cardinality() {
        // Paper Figure 1(b): S1 holds 4 t-fragments of 3 trajectories.
        let s = BaseCluster::new(
            SegmentId::new(0),
            vec![frag(1, 0), frag(1, 0), frag(2, 0), frag(3, 0)],
        )
        .unwrap();
        assert_eq!(s.density(), 4);
        assert_eq!(s.trajectory_cardinality(), 3);
    }

    #[test]
    fn base_cluster_rejects_foreign_fragment() {
        let err = BaseCluster::new(SegmentId::new(0), vec![frag(1, 1)]).unwrap_err();
        assert!(matches!(err, NeatError::SegmentMismatch { .. }));
    }

    #[test]
    fn netflow_counts_shared_trajectories() {
        let s1 =
            BaseCluster::new(SegmentId::new(0), vec![frag(1, 0), frag(2, 0), frag(3, 0)]).unwrap();
        let s2 =
            BaseCluster::new(SegmentId::new(1), vec![frag(2, 1), frag(3, 1), frag(4, 1)]).unwrap();
        assert_eq!(s1.netflow(&s2), 2);
        assert_eq!(s2.netflow(&s1), 2); // symmetric
        let s3 = BaseCluster::new(SegmentId::new(2), vec![frag(9, 2)]).unwrap();
        assert_eq!(s1.netflow(&s3), 0);
    }

    #[test]
    fn f_neighborhood_matches_figure1() {
        // Star network as in Figure 1(b): hub n2 joins s12, s23, s24, s25.
        let mut b = neat_rnet::RoadNetworkBuilder::new();
        let n1 = b.add_node(Point::new(-100.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 0.0));
        let n3 = b.add_node(Point::new(100.0, 50.0));
        let n4 = b.add_node(Point::new(100.0, 0.0));
        let n5 = b.add_node(Point::new(100.0, -50.0));
        b.add_segment(n1, n2, 10.0).unwrap(); // s0 = s12
        b.add_segment(n2, n3, 10.0).unwrap(); // s1 = s23
        b.add_segment(n2, n4, 10.0).unwrap(); // s2 = s24
        b.add_segment(n2, n5, 10.0).unwrap(); // s3 = s25
        let net = b.build().unwrap();
        let s1 = BaseCluster::new(
            SegmentId::new(0),
            vec![frag(1, 0), frag(2, 0), frag(3, 0), frag(4, 0)],
        )
        .unwrap();
        let pool = vec![
            BaseCluster::new(SegmentId::new(1), vec![frag(1, 1), frag(2, 1)]).unwrap(),
            BaseCluster::new(SegmentId::new(2), vec![frag(3, 2)]).unwrap(),
            BaseCluster::new(SegmentId::new(3), vec![frag(4, 3), frag(9, 3)]).unwrap(),
        ];
        // All three are f-neighbours of S1 at n2 (each shares a
        // trajectory), as in the paper's example.
        let neigh = super::f_neighborhood(&net, &s1, n2, &pool);
        assert_eq!(neigh.len(), 3);
        // The maxFlow-neighbour is S2 (netflow 2 > 1, 1).
        let best = super::maxflow_neighbor(&net, &s1, n2, &pool).unwrap();
        assert_eq!(best.segment(), SegmentId::new(1));
        // At the dead end n1, the neighbourhood is empty.
        assert!(super::f_neighborhood(&net, &s1, n1, &pool).is_empty());
        assert!(super::maxflow_neighbor(&net, &s1, n1, &pool).is_none());
    }

    #[test]
    fn f_neighborhood_excludes_zero_netflow() {
        let net = chain_network(4, 100.0, 10.0);
        let s = BaseCluster::new(SegmentId::new(1), vec![frag(1, 1)]).unwrap();
        let pool = vec![
            BaseCluster::new(SegmentId::new(0), vec![frag(9, 0)]).unwrap(), // no shared traj
            BaseCluster::new(SegmentId::new(2), vec![frag(1, 2)]).unwrap(), // shared
        ];
        let neigh = super::f_neighborhood(&net, &s, NodeId::new(2), &pool);
        assert_eq!(neigh.len(), 1);
        assert_eq!(neigh[0].segment(), SegmentId::new(2));
    }

    #[test]
    fn flow_cluster_grows_both_ends() {
        // chain: n0 -s0- n1 -s1- n2 -s2- n3
        let net = chain_network(4, 100.0, 10.0);
        let b0 = BaseCluster::new(SegmentId::new(0), vec![frag(1, 0)]).unwrap();
        let b1 = BaseCluster::new(SegmentId::new(1), vec![frag(1, 1), frag(2, 1)]).unwrap();
        let b2 = BaseCluster::new(SegmentId::new(2), vec![frag(2, 2)]).unwrap();
        let mut flow = FlowCluster::from_base(&net, b1).unwrap();
        assert_eq!(flow.endpoints(), (NodeId::new(1), NodeId::new(2)));
        flow.push_back(&net, b2).unwrap();
        assert_eq!(flow.back_endpoint(), NodeId::new(3));
        flow.push_front(&net, b0).unwrap();
        assert_eq!(flow.front_endpoint(), NodeId::new(0));
        assert_eq!(
            flow.route(),
            vec![SegmentId::new(0), SegmentId::new(1), SegmentId::new(2)]
        );
        assert!(net.is_route(&flow.route()));
        assert_eq!(flow.node_chain().len(), 4);
        assert_eq!(flow.trajectory_cardinality(), 2);
        assert_eq!(flow.density(), 4);
        assert!((flow.route_length(&net) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn flow_cluster_rejects_non_adjacent() {
        let net = chain_network(5, 100.0, 10.0);
        let b0 = BaseCluster::new(SegmentId::new(0), vec![frag(1, 0)]).unwrap();
        let b3 = BaseCluster::new(SegmentId::new(3), vec![frag(1, 3)]).unwrap();
        let mut flow = FlowCluster::from_base(&net, b0).unwrap();
        assert!(matches!(
            flow.push_back(&net, b3),
            Err(NeatError::NotAdjacent { .. })
        ));
    }

    #[test]
    fn flow_netflow_with_base() {
        let net = chain_network(3, 100.0, 10.0);
        let b0 = BaseCluster::new(SegmentId::new(0), vec![frag(1, 0), frag(2, 0)]).unwrap();
        let b1 = BaseCluster::new(SegmentId::new(1), vec![frag(2, 1), frag(3, 1)]).unwrap();
        let flow = FlowCluster::from_base(&net, b0).unwrap();
        assert_eq!(flow.netflow_with(&b1), 1);
    }

    #[test]
    fn trajectory_cluster_aggregates() {
        let net = chain_network(4, 100.0, 10.0);
        let b0 = BaseCluster::new(SegmentId::new(0), vec![frag(1, 0)]).unwrap();
        let b2 = BaseCluster::new(SegmentId::new(2), vec![frag(1, 2), frag(2, 2)]).unwrap();
        let f0 = FlowCluster::from_base(&net, b0).unwrap();
        let f1 = FlowCluster::from_base(&net, b2).unwrap();
        let c = TrajectoryCluster::new(vec![f0, f1]);
        assert_eq!(c.flows().len(), 2);
        assert_eq!(c.density(), 3);
        assert_eq!(c.trajectory_cardinality(), 2); // trajectories 1 and 2
        assert!((c.total_route_length(&net) - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trajectory_cluster_panics() {
        let _ = TrajectoryCluster::new(vec![]);
    }

    #[test]
    fn intersection_size_iterates_smaller_side() {
        let a: BTreeSet<TrajectoryId> = (0..100).map(TrajectoryId::new).collect();
        let b: BTreeSet<TrajectoryId> = (50..53).map(TrajectoryId::new).collect();
        assert_eq!(intersection_size(&a, &b), 3);
        assert_eq!(intersection_size(&b, &a), 3);
        let empty = BTreeSet::new();
        assert_eq!(intersection_size(&a, &empty), 0);
    }
}
