//! Execution-control outcomes: completeness, degradation and the
//! best-valid-result contract.
//!
//! A budgeted run ([`crate::Neat::run_controlled`],
//! [`crate::IncrementalNeat::ingest_controlled`]) never throws work away:
//! when a deadline, operation budget or cancellation interrupts the
//! pipeline, the run walks a documented degradation ladder —
//! `opt-NEAT → flow-NEAT → base-NEAT` across phases, and within Phase 3
//! `exhaustive → ELB-only → skip refinement` — and returns the best valid
//! result computed so far. The [`Outcome`] reports exactly which rung was
//! delivered and why, so callers can distinguish a complete answer from a
//! graceful partial one.
//!
//! Interrupts are **data, not errors**: a controlled run returns
//! `Ok(Outcome)` for every interrupt; `Err` is reserved for genuine
//! configuration or data faults.

use crate::pipeline::{Mode, NeatResult};
use crate::TrajectoryCluster;
use neat_runctl::Interrupt;

/// How far one phase got before the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseStatus {
    /// The phase ran to its natural end with its full algorithm.
    Complete,
    /// The phase covered every work item, but finished under a cheaper
    /// algorithm after `why` fired (Phase 3's ELB-only continuation).
    Degraded {
        /// The interrupt that triggered the switch.
        why: Interrupt,
    },
    /// The phase was interrupted after `done` of `total` work items.
    Partial {
        /// Work items fully processed before the interrupt.
        done: usize,
        /// Work items the phase would have processed uninterrupted.
        total: usize,
        /// The interrupt that stopped it.
        why: Interrupt,
    },
    /// The phase never started because an earlier phase was interrupted.
    Skipped {
        /// The interrupt inherited from the earlier phase.
        why: Interrupt,
    },
    /// The requested [`Mode`] does not include this phase.
    NotRequested,
}

impl PhaseStatus {
    /// `true` when the phase owes the caller nothing more (ran fully with
    /// its full algorithm, or was never part of the request).
    pub fn is_complete(&self) -> bool {
        matches!(self, PhaseStatus::Complete | PhaseStatus::NotRequested)
    }

    /// The interrupt recorded on this phase, if any.
    pub fn interrupt(&self) -> Option<Interrupt> {
        match self {
            PhaseStatus::Complete | PhaseStatus::NotRequested => None,
            PhaseStatus::Degraded { why }
            | PhaseStatus::Partial { why, .. }
            | PhaseStatus::Skipped { why } => Some(*why),
        }
    }

    /// Stable kebab-case label for logs and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseStatus::Complete => "complete",
            PhaseStatus::Degraded { .. } => "degraded",
            PhaseStatus::Partial { .. } => "partial",
            PhaseStatus::Skipped { .. } => "skipped",
            PhaseStatus::NotRequested => "not-requested",
        }
    }
}

/// Per-phase completion report of a controlled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completeness {
    /// Phase 1 — base cluster formation.
    pub phase1: PhaseStatus,
    /// Phase 2 — flow cluster formation.
    pub phase2: PhaseStatus,
    /// Phase 3 — flow cluster refinement.
    pub phase3: PhaseStatus,
}

impl Completeness {
    /// A fully complete report for the phases `mode` requests.
    pub fn complete_for(mode: Mode) -> Self {
        let ran = PhaseStatus::Complete;
        let not = PhaseStatus::NotRequested;
        match mode {
            Mode::Base => Completeness {
                phase1: ran,
                phase2: not,
                phase3: not,
            },
            Mode::Flow => Completeness {
                phase1: ran,
                phase2: ran,
                phase3: not,
            },
            Mode::Opt => Completeness {
                phase1: ran,
                phase2: ran,
                phase3: ran,
            },
        }
    }

    /// `true` when every requested phase ran fully.
    pub fn is_complete(&self) -> bool {
        self.phase1.is_complete() && self.phase2.is_complete() && self.phase3.is_complete()
    }

    /// The earliest interrupt across the phases, in pipeline order.
    pub fn first_interrupt(&self) -> Option<Interrupt> {
        self.phase1
            .interrupt()
            .or_else(|| self.phase2.interrupt())
            .or_else(|| self.phase3.interrupt())
    }
}

/// One rung walked down the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationStep {
    /// Phase 1 stopped after `done` of `total` trajectories; the
    /// delivered base clusters cover only the processed prefix.
    TruncatedPhase1 {
        /// Trajectories fully extracted.
        done: usize,
        /// Trajectories in the dataset.
        total: usize,
    },
    /// Phase 2 stopped seeding after `done` of `total` candidate seeds;
    /// the flow being expanded at the interrupt was finished as a valid
    /// (shorter) flow.
    TruncatedPhase2 {
        /// Seed slots processed.
        done: usize,
        /// Seed slots overall (one per base cluster).
        total: usize,
    },
    /// Phase 2 never ran: the interrupt arrived during Phase 1.
    SkippedPhase2,
    /// Phase 3 switched from exact network distances to the Euclidean
    /// lower bound for every remaining pair (no further shortest paths).
    ElbOnlyPhase3,
    /// Phase 3 stopped mid-refinement: flows not yet reached became
    /// singleton trajectory clusters.
    TruncatedPhase3 {
        /// Flows assigned to a density-connected group before the stop.
        grouped: usize,
        /// Flows overall.
        total: usize,
    },
    /// Phase 3 never ran: the interrupt arrived before refinement, so
    /// the result stops at flow clusters.
    SkippedPhase3,
}

impl DegradationStep {
    /// Stable kebab-case label for logs and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            DegradationStep::TruncatedPhase1 { .. } => "truncated-phase1",
            DegradationStep::TruncatedPhase2 { .. } => "truncated-phase2",
            DegradationStep::SkippedPhase2 => "skipped-phase2",
            DegradationStep::ElbOnlyPhase3 => "elb-only-phase3",
            DegradationStep::TruncatedPhase3 { .. } => "truncated-phase3",
            DegradationStep::SkippedPhase3 => "skipped-phase3",
        }
    }
}

/// What the run delivered relative to what was asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The pipeline version the caller requested.
    pub requested: Mode,
    /// The pipeline version whose output contract the result satisfies.
    /// Equal to `requested` for an uninterrupted run.
    pub delivered: Mode,
    /// The ladder rungs walked, in the order they were taken. Empty for
    /// an uninterrupted run.
    pub steps: Vec<DegradationStep>,
}

impl Degradation {
    /// An empty report: delivered exactly what was requested.
    pub fn none(mode: Mode) -> Self {
        Degradation {
            requested: mode,
            delivered: mode,
            steps: Vec::new(),
        }
    }

    /// `true` when the result falls short of the request in any way.
    pub fn is_degraded(&self) -> bool {
        self.requested != self.delivered || !self.steps.is_empty()
    }
}

/// The result of a controlled run: always the best valid clustering
/// computed within the budget, plus the completeness/degradation report
/// that says how far it got.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The clustering output. `result.mode` is the *delivered* mode: a
    /// degraded opt-NEAT request may carry a flow-NEAT or base-NEAT
    /// shaped result.
    pub result: NeatResult,
    /// Per-phase completion report.
    pub completeness: Completeness,
    /// Degradation-ladder report.
    pub degradation: Degradation,
    /// The first interrupt that fired, or `None` for a complete run.
    pub interrupt: Option<Interrupt>,
}

impl Outcome {
    /// `true` when the run finished without any interrupt.
    pub fn is_complete(&self) -> bool {
        self.interrupt.is_none()
    }

    /// The Phase-3 trajectory clusters (empty when the delivered mode
    /// stops earlier).
    pub fn clusters(&self) -> &[TrajectoryCluster] {
        &self.result.clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_for_matches_mode() {
        let base = Completeness::complete_for(Mode::Base);
        assert!(base.is_complete());
        assert_eq!(base.phase2, PhaseStatus::NotRequested);
        let opt = Completeness::complete_for(Mode::Opt);
        assert_eq!(opt.phase3, PhaseStatus::Complete);
        assert!(opt.first_interrupt().is_none());
    }

    #[test]
    fn first_interrupt_prefers_earliest_phase() {
        let c = Completeness {
            phase1: PhaseStatus::Partial {
                done: 1,
                total: 5,
                why: Interrupt::DeadlineExceeded,
            },
            phase2: PhaseStatus::Skipped {
                why: Interrupt::Cancelled,
            },
            phase3: PhaseStatus::Skipped {
                why: Interrupt::Cancelled,
            },
        };
        assert!(!c.is_complete());
        assert_eq!(c.first_interrupt(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn degradation_none_is_not_degraded() {
        let d = Degradation::none(Mode::Opt);
        assert!(!d.is_degraded());
        let mut d2 = Degradation::none(Mode::Opt);
        d2.steps.push(DegradationStep::ElbOnlyPhase3);
        assert!(d2.is_degraded());
        let d3 = Degradation {
            requested: Mode::Opt,
            delivered: Mode::Flow,
            steps: vec![DegradationStep::SkippedPhase3],
        };
        assert!(d3.is_degraded());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PhaseStatus::Complete.label(), "complete");
        assert_eq!(
            PhaseStatus::Degraded {
                why: Interrupt::OpBudgetExhausted
            }
            .label(),
            "degraded"
        );
        assert_eq!(DegradationStep::SkippedPhase3.label(), "skipped-phase3");
        assert_eq!(
            DegradationStep::TruncatedPhase1 { done: 0, total: 1 }.label(),
            "truncated-phase1"
        );
    }
}
