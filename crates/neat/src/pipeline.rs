//! The user-facing NEAT pipeline: `base-NEAT`, `flow-NEAT` and `opt-NEAT`.
//!
//! Section IV of the paper names three versions of the framework — Phase 1
//! only, Phases 1–2 and all three phases — and evaluates them separately
//! (Figure 6). [`Neat::run`] executes the requested [`Mode`] and reports
//! per-phase wall-clock timings alongside the outputs of every phase that
//! ran.

use crate::config::NeatConfig;
use crate::control::{Completeness, Degradation, DegradationStep, Outcome, PhaseStatus};
use crate::error::NeatError;
use crate::model::{BaseCluster, FlowCluster, TrajectoryCluster};
use crate::phase1::{
    form_base_clusters_ctl, form_base_clusters_parallel_with_policy, ResilienceCounters,
};
use crate::phase2::{form_flow_clusters, form_flow_clusters_ctl};
use crate::phase3::{refine_flow_clusters, refine_flow_clusters_ctl, Phase3Stats};
use neat_rnet::RoadNetwork;
use neat_runctl::Control;
use neat_traj::sanitize::ErrorPolicy;
use neat_traj::Dataset;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant}; // lint:allow(L5) reason=Instant feeds PhaseTimings instrumentation only; clustering output never reads the clock

/// Which NEAT version to run (Section IV's base-/flow-/opt-NEAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Phase 1 only: base clusters.
    Base,
    /// Phases 1–2: flow clusters.
    Flow,
    /// All three phases: refined trajectory clusters.
    Opt,
}

impl Mode {
    /// Human-readable name matching the paper ("base-NEAT" etc.).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Base => "base-NEAT",
            Mode::Flow => "flow-NEAT",
            Mode::Opt => "opt-NEAT",
        }
    }
}

/// Wall-clock duration of each phase that ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Phase 1 (base cluster formation).
    pub phase1: Duration,
    /// Phase 2 (flow cluster formation); zero when not run.
    pub phase2: Duration,
    /// Phase 3 (flow cluster refinement); zero when not run.
    pub phase3: Duration,
}

impl PhaseTimings {
    /// Total time across the phases that ran.
    pub fn total(&self) -> Duration {
        self.phase1 + self.phase2 + self.phase3
    }
}

/// Result of a NEAT run. Outputs of phases beyond the requested [`Mode`]
/// are empty.
#[derive(Debug, Clone)]
pub struct NeatResult {
    /// The mode that produced this result.
    pub mode: Mode,
    /// Phase-1 base clusters, density-sorted. Retained only for
    /// [`Mode::Base`] (later modes consume them into flows).
    pub base_clusters: Vec<BaseCluster>,
    /// Number of base clusters Phase 1 formed (available in every mode).
    pub base_cluster_count: usize,
    /// Number of t-fragments Phase 1 extracted.
    pub fragment_count: usize,
    /// Samples Phase 1 scanned — a deterministic work counter, identical
    /// at every thread count (see the `pr6_frontend` bench gate).
    pub samples_scanned: usize,
    /// Phase-2 flow clusters that passed the `minCard` filter (empty for
    /// [`Mode::Base`]).
    pub flow_clusters: Vec<FlowCluster>,
    /// Flows discarded by the `minCard` filter.
    pub discarded_flows: usize,
    /// Phase-3 trajectory clusters (empty unless [`Mode::Opt`]).
    pub clusters: Vec<TrajectoryCluster>,
    /// Phase-3 instrumentation (zeroed unless [`Mode::Opt`]).
    pub phase3_stats: Phase3Stats,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// Trajectories isolated instead of aborting the run (all zero under
    /// [`ErrorPolicy::Strict`], the default).
    pub resilience: ResilienceCounters,
}

impl NeatResult {
    /// A multi-line human-readable summary of the run: per-phase counts,
    /// timings, and (for flow/opt modes) headline statistics of the
    /// discovered clusters. Intended for logs and CLIs; the structured
    /// fields remain the API for programmatic use.
    pub fn summary(&self, net: &RoadNetwork) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} t-fragments -> {} base clusters ({:.3}s)",
            self.mode.name(),
            self.fragment_count,
            self.base_cluster_count,
            self.timings.phase1.as_secs_f64()
        );
        if self.mode != Mode::Base {
            let stats = crate::analysis::flow_statistics(net, &self.flow_clusters);
            let _ = writeln!(
                out,
                "flows: {} kept / {} discarded; avg route {:.0} m, max {:.0} m, avg {:.1} trajectories ({:.3}s)",
                stats.count,
                self.discarded_flows,
                stats.avg_route_length_m,
                stats.max_route_length_m,
                stats.avg_cardinality,
                self.timings.phase2.as_secs_f64()
            );
        }
        if self.mode == Mode::Opt {
            let stats = crate::analysis::cluster_statistics(net, &self.clusters);
            let _ = writeln!(
                out,
                "clusters: {}; avg {:.1} flows each, largest {}; {} SPs / {} ELB skips ({:.3}s)",
                stats.count,
                stats.avg_flows_per_cluster,
                stats.max_flows_per_cluster,
                self.phase3_stats.sp_computations,
                self.phase3_stats.elb_skips,
                self.timings.phase3.as_secs_f64()
            );
        }
        if !self.resilience.is_clean() {
            let _ = writeln!(
                out,
                "resilience: {} trajectories skipped, {} repaired",
                self.resilience.skipped, self.resilience.repaired
            );
        }
        out
    }
}

/// The NEAT clustering pipeline bound to a road network and configuration.
///
/// See the [crate-level docs](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct Neat<'a> {
    net: &'a RoadNetwork,
    config: NeatConfig,
}

impl<'a> Neat<'a> {
    /// Creates a pipeline over `net` with the given configuration.
    pub fn new(net: &'a RoadNetwork, config: NeatConfig) -> Self {
        Neat { net, config }
    }

    /// The active configuration.
    pub fn config(&self) -> &NeatConfig {
        &self.config
    }

    /// Runs the pipeline on `dataset` in the requested mode.
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::InvalidConfig`] for invalid parameters and
    /// [`NeatError::UnknownSegment`] when the dataset references segments
    /// missing from the network.
    pub fn run(&self, dataset: &Dataset, mode: Mode) -> Result<NeatResult, NeatError> {
        self.run_with_policy(dataset, mode, ErrorPolicy::Strict)
    }

    /// Runs the pipeline under an explicit [`ErrorPolicy`]. Under
    /// [`ErrorPolicy::Skip`] or [`ErrorPolicy::Repair`], per-trajectory
    /// data faults (e.g. samples on segments missing from the network)
    /// isolate the offending trajectory — counted in
    /// [`NeatResult::resilience`] — instead of aborting the run.
    ///
    /// # Errors
    ///
    /// [`NeatError::InvalidConfig`] always fails early; data errors only
    /// propagate under [`ErrorPolicy::Strict`].
    pub fn run_with_policy(
        &self,
        dataset: &Dataset,
        mode: Mode,
        policy: ErrorPolicy,
    ) -> Result<NeatResult, NeatError> {
        self.config.validate()?;
        let mut timings = PhaseTimings::default();

        let t0 = Instant::now(); // lint:allow(L5) reason=phase timing instrumentation only; never influences clustering
        let (p1, resilience) = form_base_clusters_parallel_with_policy(
            self.net,
            dataset,
            self.config.insert_junctions,
            self.config.threads,
            policy,
        )?;
        timings.phase1 = t0.elapsed();
        let base_cluster_count = p1.base_clusters.len();
        let fragment_count = p1.fragment_count;
        let samples_scanned = p1.samples_scanned;

        if mode == Mode::Base {
            return Ok(NeatResult {
                mode,
                base_clusters: p1.base_clusters,
                base_cluster_count,
                fragment_count,
                samples_scanned,
                flow_clusters: Vec::new(),
                discarded_flows: 0,
                clusters: Vec::new(),
                phase3_stats: Phase3Stats::default(),
                timings,
                resilience,
            });
        }

        let t1 = Instant::now(); // lint:allow(L5) reason=phase timing instrumentation only; never influences clustering
        let p2 = form_flow_clusters(self.net, p1.base_clusters, &self.config)?;
        timings.phase2 = t1.elapsed();

        if mode == Mode::Flow {
            return Ok(NeatResult {
                mode,
                base_clusters: Vec::new(),
                base_cluster_count,
                fragment_count,
                samples_scanned,
                flow_clusters: p2.flow_clusters,
                discarded_flows: p2.discarded,
                clusters: Vec::new(),
                phase3_stats: Phase3Stats::default(),
                timings,
                resilience,
            });
        }

        let t2 = Instant::now(); // lint:allow(L5) reason=phase timing instrumentation only; never influences clustering
        let flow_clusters = p2.flow_clusters.clone();
        let p3 = refine_flow_clusters(self.net, p2.flow_clusters, &self.config)?;
        timings.phase3 = t2.elapsed();

        Ok(NeatResult {
            mode,
            base_clusters: Vec::new(),
            base_cluster_count,
            fragment_count,
            samples_scanned,
            flow_clusters,
            discarded_flows: p2.discarded,
            clusters: p3.clusters,
            phase3_stats: p3.stats,
            timings,
            resilience,
        })
    }

    /// Runs the pipeline under a [`Control`]: cooperative cancel points
    /// thread through every long loop, and on interrupt the run walks the
    /// degradation ladder (`opt-NEAT → flow-NEAT → base-NEAT`; within
    /// Phase 3 `exhaustive → ELB-only → skip refinement`) instead of
    /// aborting, returning the best valid result computed so far.
    ///
    /// With an unlimited [`Control`] the result is bit-identical to
    /// [`Neat::run_with_policy`]: every check is observation-only until a
    /// limit fires.
    ///
    /// # Errors
    ///
    /// Same as [`Neat::run_with_policy`] — interrupts are *never* errors;
    /// they are reported in the returned [`Outcome`].
    pub fn run_controlled(
        &self,
        dataset: &Dataset,
        mode: Mode,
        policy: ErrorPolicy,
        ctl: &Control,
    ) -> Result<Outcome, NeatError> {
        self.config.validate()?;
        let requested = mode;
        let mut timings = PhaseTimings::default();

        ctl.phase_start("phase1");
        let t0 = Instant::now(); // lint:allow(L5) reason=phase timing instrumentation only; never influences clustering
        let (p1, resilience, s1) = form_base_clusters_ctl(
            self.net,
            dataset,
            self.config.insert_junctions,
            self.config.threads,
            policy,
            ctl,
        )?;
        timings.phase1 = t0.elapsed();
        ctl.phase_end("phase1");
        let base_cluster_count = p1.base_clusters.len();
        let fragment_count = p1.fragment_count;
        let samples_scanned = p1.samples_scanned;

        if requested == Mode::Base || !s1.is_complete() {
            // Ladder bottom: deliver base-NEAT, possibly truncated.
            let why = s1.interrupt();
            let mut steps = Vec::new();
            if let PhaseStatus::Partial { done, total, .. } = s1 {
                steps.push(DegradationStep::TruncatedPhase1 { done, total });
            }
            let mut phase2 = PhaseStatus::NotRequested;
            let mut phase3 = PhaseStatus::NotRequested;
            if let Some(w) = why {
                if requested != Mode::Base {
                    phase2 = PhaseStatus::Skipped { why: w };
                    steps.push(DegradationStep::SkippedPhase2);
                    if requested == Mode::Opt {
                        phase3 = PhaseStatus::Skipped { why: w };
                        steps.push(DegradationStep::SkippedPhase3);
                    }
                }
            }
            return Ok(Outcome {
                result: NeatResult {
                    mode: Mode::Base,
                    base_clusters: p1.base_clusters,
                    base_cluster_count,
                    fragment_count,
                    samples_scanned,
                    flow_clusters: Vec::new(),
                    discarded_flows: 0,
                    clusters: Vec::new(),
                    phase3_stats: Phase3Stats::default(),
                    timings,
                    resilience,
                },
                completeness: Completeness {
                    phase1: s1,
                    phase2,
                    phase3,
                },
                degradation: Degradation {
                    requested,
                    delivered: Mode::Base,
                    steps,
                },
                interrupt: why,
            });
        }

        ctl.phase_start("phase2");
        let t1 = Instant::now(); // lint:allow(L5) reason=phase timing instrumentation only; never influences clustering
        let (p2, s2) = form_flow_clusters_ctl(self.net, p1.base_clusters, &self.config, ctl)?;
        timings.phase2 = t1.elapsed();
        ctl.phase_end("phase2");

        if requested == Mode::Flow || !s2.is_complete() {
            // Middle rung: deliver flow-NEAT, possibly with a truncated
            // flow set (the flow being expanded at the interrupt was
            // finished as a valid, shorter route).
            let why = s2.interrupt();
            let mut steps = Vec::new();
            if let PhaseStatus::Partial { done, total, .. } = s2 {
                steps.push(DegradationStep::TruncatedPhase2 { done, total });
            }
            let mut phase3 = PhaseStatus::NotRequested;
            if requested == Mode::Opt {
                if let Some(w) = why {
                    phase3 = PhaseStatus::Skipped { why: w };
                    steps.push(DegradationStep::SkippedPhase3);
                }
            }
            return Ok(Outcome {
                result: NeatResult {
                    mode: Mode::Flow,
                    base_clusters: Vec::new(),
                    base_cluster_count,
                    fragment_count,
                    samples_scanned,
                    flow_clusters: p2.flow_clusters,
                    discarded_flows: p2.discarded,
                    clusters: Vec::new(),
                    phase3_stats: Phase3Stats::default(),
                    timings,
                    resilience,
                },
                completeness: Completeness {
                    phase1: s1,
                    phase2: s2,
                    phase3,
                },
                degradation: Degradation {
                    requested,
                    delivered: Mode::Flow,
                    steps,
                },
                interrupt: why,
            });
        }

        ctl.phase_start("phase3");
        let t2 = Instant::now(); // lint:allow(L5) reason=phase timing instrumentation only; never influences clustering
        let flow_clusters = p2.flow_clusters.clone();
        let refined = refine_flow_clusters_ctl(self.net, p2.flow_clusters, &self.config, ctl)?;
        timings.phase3 = t2.elapsed();
        ctl.phase_end("phase3");

        let s3 = refined.status;
        let mut steps = Vec::new();
        if refined.elb_only {
            steps.push(DegradationStep::ElbOnlyPhase3);
        }
        if let PhaseStatus::Partial { done, total, .. } = s3 {
            steps.push(DegradationStep::TruncatedPhase3 {
                grouped: done,
                total,
            });
        }
        Ok(Outcome {
            result: NeatResult {
                mode: Mode::Opt,
                base_clusters: Vec::new(),
                base_cluster_count,
                fragment_count,
                samples_scanned,
                flow_clusters,
                discarded_flows: p2.discarded,
                clusters: refined.output.clusters,
                phase3_stats: refined.output.stats,
                timings,
                resilience,
            },
            completeness: Completeness {
                phase1: s1,
                phase2: s2,
                phase3: s3,
            },
            degradation: Degradation {
                requested,
                delivered: Mode::Opt,
                steps,
            },
            interrupt: s3.interrupt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{Trajectory, TrajectoryId};

    /// Dataset where `count` objects traverse segments `segs` of a chain
    /// network (100 m spacing), sampled twice per segment.
    fn traverse(count: u64, id0: u64, segs: &[usize]) -> Vec<Trajectory> {
        (0..count)
            .map(|i| {
                let pts = segs
                    .iter()
                    .enumerate()
                    .flat_map(|(k, &s)| {
                        [
                            RoadLocation::new(
                                SegmentId::new(s),
                                Point::new(s as f64 * 100.0 + 30.0, 0.0),
                                k as f64 * 10.0,
                            ),
                            RoadLocation::new(
                                SegmentId::new(s),
                                Point::new(s as f64 * 100.0 + 70.0, 0.0),
                                k as f64 * 10.0 + 5.0,
                            ),
                        ]
                    })
                    .collect();
                Trajectory::new(TrajectoryId::new(id0 + i), pts).unwrap()
            })
            .collect()
    }

    fn config(min_card: usize) -> NeatConfig {
        NeatConfig {
            min_card,
            ..NeatConfig::default()
        }
    }

    #[test]
    fn base_mode_returns_base_clusters() {
        let net = chain_network(6, 100.0, 10.0);
        let mut data = Dataset::new("d");
        data.extend(traverse(4, 0, &[0, 1, 2]));
        let r = Neat::new(&net, config(1)).run(&data, Mode::Base).unwrap();
        assert_eq!(r.mode, Mode::Base);
        assert_eq!(r.base_clusters.len(), 3);
        assert_eq!(r.base_cluster_count, 3);
        assert!(r.flow_clusters.is_empty());
        assert!(r.clusters.is_empty());
        assert!(r.timings.phase2.is_zero());
    }

    #[test]
    fn flow_mode_produces_flows() {
        let net = chain_network(6, 100.0, 10.0);
        let mut data = Dataset::new("d");
        data.extend(traverse(4, 0, &[0, 1, 2]));
        data.extend(traverse(2, 100, &[4]));
        let r = Neat::new(&net, config(2)).run(&data, Mode::Flow).unwrap();
        assert_eq!(r.flow_clusters.len(), 2);
        assert!(r.base_clusters.is_empty());
        assert_eq!(r.base_cluster_count, 4);
        assert!(r.clusters.is_empty());
    }

    #[test]
    fn opt_mode_produces_final_clusters() {
        let net = chain_network(10, 100.0, 10.0);
        let mut data = Dataset::new("d");
        data.extend(traverse(4, 0, &[0, 1, 2]));
        data.extend(traverse(4, 100, &[5, 6, 7]));
        // Definition-11 distance between the flows is 500 m (nearest
        // endpoint correspondence n0↔n5, n3↔n8).
        let mut c = config(2);
        c.epsilon = 500.0;
        let r = Neat::new(&net, c).run(&data, Mode::Opt).unwrap();
        assert_eq!(r.flow_clusters.len(), 2);
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].flows().len(), 2);
        assert!(r.phase3_stats.pairs_considered > 0);
    }

    #[test]
    fn min_card_discard_count_surfaces() {
        let net = chain_network(6, 100.0, 10.0);
        let mut data = Dataset::new("d");
        data.extend(traverse(5, 0, &[0, 1]));
        data.extend(traverse(1, 100, &[3, 4]));
        let r = Neat::new(&net, config(3)).run(&data, Mode::Flow).unwrap();
        assert_eq!(r.flow_clusters.len(), 1);
        assert_eq!(r.discarded_flows, 1);
    }

    #[test]
    fn invalid_config_fails_early() {
        let net = chain_network(3, 100.0, 10.0);
        let mut c = config(1);
        c.beta = 0.1;
        assert!(matches!(
            Neat::new(&net, c).run(&Dataset::new("x"), Mode::Base),
            Err(NeatError::InvalidConfig(_))
        ));
    }

    #[test]
    fn mode_names_match_paper() {
        assert_eq!(Mode::Base.name(), "base-NEAT");
        assert_eq!(Mode::Flow.name(), "flow-NEAT");
        assert_eq!(Mode::Opt.name(), "opt-NEAT");
    }

    #[test]
    fn summary_mentions_each_phase() {
        let net = chain_network(6, 100.0, 10.0);
        let mut data = Dataset::new("d");
        data.extend(traverse(4, 0, &[0, 1, 2]));
        let neat = Neat::new(&net, config(1));
        let base = neat.run(&data, Mode::Base).unwrap().summary(&net);
        assert!(base.contains("base-NEAT"));
        assert!(!base.contains("flows:"));
        let flow = neat.run(&data, Mode::Flow).unwrap().summary(&net);
        assert!(flow.contains("flows:"));
        assert!(!flow.contains("clusters:"));
        let opt = neat.run(&data, Mode::Opt).unwrap().summary(&net);
        assert!(opt.contains("clusters:"));
        assert!(opt.lines().count() >= 3);
    }

    #[test]
    fn run_with_policy_degrades_instead_of_aborting() {
        let net = chain_network(6, 100.0, 10.0);
        let mut data = Dataset::new("d");
        data.extend(traverse(4, 0, &[0, 1, 2]));
        // One trajectory entirely on a segment the network doesn't have.
        data.push(
            Trajectory::new(
                TrajectoryId::new(900),
                vec![
                    RoadLocation::new(SegmentId::new(50), Point::new(0.0, 0.0), 0.0),
                    RoadLocation::new(SegmentId::new(50), Point::new(1.0, 0.0), 1.0),
                ],
            )
            .unwrap(),
        );
        let neat = Neat::new(&net, config(1));
        // Strict (and plain run) abort.
        assert!(neat.run(&data, Mode::Opt).is_err());
        assert!(neat
            .run_with_policy(&data, Mode::Opt, ErrorPolicy::Strict)
            .is_err());
        // Skip isolates the bad trajectory and still clusters the rest.
        let r = neat
            .run_with_policy(&data, Mode::Opt, ErrorPolicy::Skip)
            .unwrap();
        assert_eq!(r.resilience.skipped, 1);
        assert_eq!(r.resilience.skipped_ids, vec![TrajectoryId::new(900)]);
        assert!(!r.flow_clusters.is_empty());
        assert!(r
            .summary(&net)
            .contains("resilience: 1 trajectories skipped"));
    }

    #[test]
    fn clean_data_has_clean_resilience_under_every_policy() {
        let net = chain_network(6, 100.0, 10.0);
        let mut data = Dataset::new("d");
        data.extend(traverse(4, 0, &[0, 1, 2]));
        let neat = Neat::new(&net, config(1));
        let strict = neat.run(&data, Mode::Flow).unwrap();
        for policy in [ErrorPolicy::Skip, ErrorPolicy::Repair] {
            let r = neat.run_with_policy(&data, Mode::Flow, policy).unwrap();
            assert!(r.resilience.is_clean());
            assert_eq!(r.flow_clusters, strict.flow_clusters, "{policy:?}");
            assert!(!r.summary(&net).contains("resilience"));
        }
    }

    #[test]
    fn timings_accumulate() {
        let net = chain_network(6, 100.0, 10.0);
        let mut data = Dataset::new("d");
        data.extend(traverse(3, 0, &[0, 1, 2, 3]));
        let r = Neat::new(&net, config(1)).run(&data, Mode::Opt).unwrap();
        assert!(r.timings.total() >= r.timings.phase1);
        assert!(r.timings.total() >= r.timings.phase3);
    }

    /// Fingerprint of everything in a [`NeatResult`] except the timings,
    /// which legitimately differ between two runs.
    fn fingerprint(r: &NeatResult) -> String {
        format!(
            "{:?}|{:?}|{}|{}|{}|{:?}|{}|{:?}|{:?}|{:?}",
            r.mode,
            r.base_clusters,
            r.base_cluster_count,
            r.fragment_count,
            r.samples_scanned,
            r.flow_clusters,
            r.discarded_flows,
            r.clusters,
            r.phase3_stats,
            r.resilience,
        )
    }

    fn two_population_dataset() -> Dataset {
        let mut data = Dataset::new("d");
        data.extend(traverse(4, 0, &[0, 1, 2]));
        data.extend(traverse(3, 100, &[4, 5]));
        data
    }

    #[test]
    fn unlimited_control_is_bit_identical_to_uncontrolled() {
        let net = chain_network(8, 100.0, 10.0);
        let data = two_population_dataset();
        let neat = Neat::new(&net, config(2));
        for mode in [Mode::Base, Mode::Flow, Mode::Opt] {
            let plain = neat.run(&data, mode).unwrap();
            let ctl = neat_runctl::Control::unlimited();
            let out = neat
                .run_controlled(&data, mode, ErrorPolicy::Strict, &ctl)
                .unwrap();
            assert!(out.is_complete(), "{mode:?} must complete unlimited");
            assert_eq!(
                out.completeness,
                crate::control::Completeness::complete_for(mode)
            );
            assert!(!out.degradation.is_degraded());
            assert_eq!(
                fingerprint(&plain),
                fingerprint(&out.result),
                "unlimited {mode:?} run must match the uncontrolled one"
            );
        }
    }

    #[test]
    fn cancel_before_first_check_delivers_empty_base() {
        use neat_runctl::{CancelToken, Control, Interrupt, RunBudget};
        let net = chain_network(8, 100.0, 10.0);
        let data = two_population_dataset();
        let ctl = Control::new(RunBudget::unlimited(), CancelToken::armed_after(0));
        let out = Neat::new(&net, config(2))
            .run_controlled(&data, Mode::Opt, ErrorPolicy::Strict, &ctl)
            .unwrap();
        assert_eq!(out.interrupt, Some(Interrupt::Cancelled));
        assert_eq!(out.degradation.requested, Mode::Opt);
        assert_eq!(out.degradation.delivered, Mode::Base);
        assert_eq!(out.result.mode, Mode::Base);
        assert!(out.result.base_clusters.is_empty());
        assert!(matches!(
            out.completeness.phase1,
            crate::control::PhaseStatus::Partial { done: 0, .. }
        ));
    }

    #[test]
    fn op_budget_in_phase1_truncates_to_prefix() {
        use neat_runctl::{CancelToken, Control, Interrupt, RunBudget};
        let net = chain_network(8, 100.0, 10.0);
        let data = two_population_dataset();
        // Budget of 3 checks: a couple of trajectories clear their
        // per-trajectory cancel point, then the budget fires.
        let ctl = Control::new(RunBudget::unlimited().with_max_ops(3), CancelToken::new());
        let out = Neat::new(&net, config(2))
            .run_controlled(&data, Mode::Opt, ErrorPolicy::Strict, &ctl)
            .unwrap();
        assert_eq!(out.interrupt, Some(Interrupt::OpBudgetExhausted));
        assert_eq!(out.degradation.delivered, Mode::Base);
        let crate::control::PhaseStatus::Partial { done, total, .. } = out.completeness.phase1
        else {
            panic!(
                "expected partial phase 1, got {:?}",
                out.completeness.phase1
            );
        };
        assert_eq!(total, data.len());
        assert!(done < total);
        // The delivered base clusters cover exactly the done-prefix: they
        // match an uncontrolled run over the truncated dataset.
        let mut prefix = Dataset::new("prefix");
        prefix.extend(data.trajectories().iter().take(done).cloned());
        let plain = Neat::new(&net, config(2)).run(&prefix, Mode::Base).unwrap();
        assert_eq!(
            format!("{:?}", plain.base_clusters),
            format!("{:?}", out.result.base_clusters)
        );
    }

    #[test]
    fn cluster_cap_stops_phase2_at_cap() {
        use neat_runctl::{CancelToken, Control, Interrupt, RunBudget};
        let net = chain_network(8, 100.0, 10.0);
        let data = two_population_dataset(); // two disjoint flows
        let ctl = Control::new(
            RunBudget::unlimited().with_max_clusters(1),
            CancelToken::new(),
        );
        let out = Neat::new(&net, config(2))
            .run_controlled(&data, Mode::Opt, ErrorPolicy::Strict, &ctl)
            .unwrap();
        assert_eq!(out.interrupt, Some(Interrupt::ClusterCapReached));
        assert_eq!(out.degradation.delivered, Mode::Flow);
        assert_eq!(out.result.flow_clusters.len(), 1);
        assert!(out
            .degradation
            .steps
            .iter()
            .any(|s| matches!(s, DegradationStep::TruncatedPhase2 { .. })));
    }

    #[test]
    fn budget_exhausted_in_phase3_degrades_to_elb_only() {
        use neat_runctl::{CancelToken, Control, Interrupt, RunBudget};
        let net = chain_network(8, 100.0, 10.0);
        let data = two_population_dataset();
        let neat = Neat::new(&net, config(2));
        // Measure the ops phases 1–2 consume, then allow just one more:
        // the budget fires on phase 3's first candidate-pair check.
        let probe = Control::unlimited();
        neat.run_controlled(&data, Mode::Flow, ErrorPolicy::Strict, &probe)
            .unwrap();
        let ctl = Control::new(
            RunBudget::unlimited().with_max_ops(probe.ops() + 1),
            CancelToken::new(),
        );
        let out = neat
            .run_controlled(&data, Mode::Opt, ErrorPolicy::Strict, &ctl)
            .unwrap();
        assert_eq!(out.interrupt, Some(Interrupt::OpBudgetExhausted));
        // Degrade (default overrun mode): phase 3 finishes on the
        // Euclidean lower bound and still delivers opt-NEAT clusters.
        assert_eq!(out.degradation.delivered, Mode::Opt);
        assert!(out
            .degradation
            .steps
            .contains(&DegradationStep::ElbOnlyPhase3));
        assert!(matches!(
            out.completeness.phase3,
            crate::control::PhaseStatus::Degraded { .. }
        ));
        assert!(!out.result.clusters.is_empty());
    }

    #[test]
    fn partial_overrun_in_phase3_returns_singletons() {
        use neat_runctl::{CancelToken, Control, Interrupt, OverrunMode, RunBudget};
        let net = chain_network(8, 100.0, 10.0);
        let data = two_population_dataset();
        let neat = Neat::new(&net, config(2));
        let probe = Control::unlimited();
        neat.run_controlled(&data, Mode::Flow, ErrorPolicy::Strict, &probe)
            .unwrap();
        let ctl = Control::new(
            RunBudget::unlimited().with_max_ops(probe.ops() + 1),
            CancelToken::new(),
        )
        .with_overrun(OverrunMode::Partial);
        let out = neat
            .run_controlled(&data, Mode::Opt, ErrorPolicy::Strict, &ctl)
            .unwrap();
        assert_eq!(out.interrupt, Some(Interrupt::OpBudgetExhausted));
        assert!(matches!(
            out.completeness.phase3,
            crate::control::PhaseStatus::Partial { .. }
        ));
        // Every flow still lands in some cluster (ungrouped ones become
        // singletons) so the outcome remains a valid clustering.
        let flows_in_clusters: usize = out.result.clusters.iter().map(|c| c.flows().len()).sum();
        assert_eq!(flows_in_clusters, out.result.flow_clusters.len());
    }

    #[test]
    fn controlled_run_is_deterministic_for_fixed_arming() {
        use neat_runctl::{CancelToken, Control, RunBudget};
        let net = chain_network(8, 100.0, 10.0);
        let data = two_population_dataset();
        let neat = Neat::new(&net, config(2));
        for armed in [0u64, 2, 5, 11, 40] {
            let run = |armed| {
                let ctl = Control::new(RunBudget::unlimited(), CancelToken::armed_after(armed));
                let out = neat
                    .run_controlled(&data, Mode::Opt, ErrorPolicy::Strict, &ctl)
                    .unwrap();
                fingerprint(&out.result)
            };
            assert_eq!(run(armed), run(armed), "cancel at op {armed} must replay");
        }
    }
}
