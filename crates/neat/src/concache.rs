//! Sharded concurrent memo tables for the phase-3 distance oracle.
//!
//! The oracle's memo used to be a plain `HashMap` behind `&mut self`,
//! which serialises every worker on one lock and hashes with SipHash —
//! overkill for keys that are already well-mixed packed node ids. This
//! module provides the replacement: a fixed array of mutex-guarded
//! shards (lock contention drops by the shard count) with a
//! multiply-xor hasher in the Fx/wyhash family (a few cycles per key,
//! no DoS-resistance needed for internal node ids).
//!
//! Values are computed *under the shard lock*
//! ([`ShardedMap::get_or_insert_with`]), so concurrent requests for the
//! same key compute exactly once — this keeps the oracle's
//! `sp_computations` counter equal to the number of distinct keys, the
//! same total a sequential run reports.

use neat_runctl::Lock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Mutex, MutexGuard};

/// Multiply-xor hasher for already-compact integer keys.
///
/// `finish` folds the high bits back down so shard selection (which
/// uses the top bits) and bucket selection (low bits) both see mixed
/// input. Not DoS-resistant by design: keys are internal node ids.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// Odd multiplier from the Fx family (0x51_7c_c1_b7_27_22_0a_95).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        // One final avalanche round (xor-shift) so the top bits used
        // for shard selection depend on every input bit.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(SEED);
        h ^= h >> 29;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(SEED);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash ^ v).wrapping_mul(SEED);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Number of shards; a power of two so shard selection is a mask.
const SHARDS: usize = 32;

/// A concurrent `u64 → V` map sharded across [`SHARDS`] mutexes.
pub struct ShardedMap<V> {
    shards: Vec<Mutex<HashMap<u64, V, FxBuild>>>,
}

impl<V> Default for ShardedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ShardedMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> MutexGuard<'_, HashMap<u64, V, FxBuild>> {
        let mixed = key.wrapping_mul(SEED);
        let idx = (mixed >> 58) as usize & (SHARDS - 1);
        // A poisoned shard means another worker panicked; that panic
        // propagates through the executor join, so riding through here
        // never hides a failure.
        self.shards[idx].enter()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|i| self.shards[i].enter().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone> ShardedMap<V> {
    /// The cached value for `key`, if present.
    pub fn get(&self, key: u64) -> Option<V> {
        self.shard(key).get(&key).cloned()
    }

    /// Returns the cached value for `key`, computing and inserting it
    /// under the shard lock when absent. `compute` runs at most once
    /// per key across all threads; the returned flag is `true` when
    /// this call performed the computation.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> V) -> (V, bool) {
        let mut shard = self.shard(key);
        if let Some(v) = shard.get(&key) {
            return (v.clone(), false);
        }
        let v = compute();
        shard.insert(key, v.clone());
        (v, true)
    }

    /// Fallible [`ShardedMap::get_or_insert_with`]: an `Err` from
    /// `compute` is returned without inserting anything, so an
    /// interrupted computation never caches a partial result.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error.
    pub fn try_get_or_insert_with<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        let mut shard = self.shard(key);
        if let Some(v) = shard.get(&key) {
            return Ok((v.clone(), false));
        }
        let v = compute()?;
        shard.insert(key, v.clone());
        Ok((v, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_once_per_key() {
        let m: ShardedMap<u64> = ShardedMap::new();
        let (v, fresh) = m.get_or_insert_with(7, || 42);
        assert_eq!((v, fresh), (42, true));
        let (v, fresh) = m.get_or_insert_with(7, || unreachable!("must be cached"));
        assert_eq!((v, fresh), (42, false));
        assert_eq!(m.get(7), Some(42));
        assert_eq!(m.get(8), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn failed_compute_inserts_nothing() {
        let m: ShardedMap<u64> = ShardedMap::new();
        let r: Result<_, &str> = m.try_get_or_insert_with(1, || Err("interrupted"));
        assert!(r.is_err());
        assert!(m.is_empty());
        let r: Result<_, &str> = m.try_get_or_insert_with(1, || Ok(5));
        assert_eq!(r.ok(), Some((5, true)));
    }

    #[test]
    fn concurrent_compute_happens_once() {
        let m: ShardedMap<u64> = ShardedMap::new();
        let hits = std::sync::atomic::AtomicU64::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for k in 0..100u64 {
                        let (_, fresh) = m.get_or_insert_with(k, || {
                            hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            k * 3
                        });
                        let _ = fresh;
                    }
                });
            }
        })
        .expect("no worker panics");
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 100);
        assert_eq!(m.len(), 100);
        for k in 0..100 {
            assert_eq!(m.get(k), Some(k * 3));
        }
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        // Sanity: packed sequential node ids should not all land in one
        // shard (the old failure mode of identity hashing + masking).
        let m: ShardedMap<u64> = ShardedMap::new();
        for k in 0..SHARDS as u64 * 4 {
            m.get_or_insert_with(k << 32 | (k + 1), || k);
        }
        let occupied = (0..SHARDS)
            .filter(|&i| !m.shards[i].enter().is_empty())
            .count();
        assert!(occupied > SHARDS / 4, "keys clumped into {occupied} shards");
    }
}
