//! Configuration of the NEAT pipeline.

use crate::error::NeatError;
use serde::{Deserialize, Serialize};

/// Merging-selectivity weights `(wq, wk, wv)` of Definition 10.
///
/// `wq` weighs the flow factor, `wk` the density factor and `wv` the
/// speed-limit factor. All weights are non-negative and sum to 1.
///
/// ```
/// use neat_core::Weights;
/// let w = Weights::new(0.5, 0.5, 0.0).unwrap();
/// assert_eq!(w.wq(), 0.5);
/// assert!(Weights::new(0.9, 0.9, 0.9).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    wq: f64,
    wk: f64,
    wv: f64,
}

impl Weights {
    /// Creates a weight triple.
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::InvalidConfig`] when a weight is negative or
    /// the weights do not sum to 1 (tolerance `1e-9`).
    pub fn new(wq: f64, wk: f64, wv: f64) -> Result<Self, NeatError> {
        if wq < 0.0 || wk < 0.0 || wv < 0.0 {
            return Err(NeatError::InvalidConfig(
                "selectivity weights must be non-negative".into(),
            ));
        }
        if ((wq + wk + wv) - 1.0).abs() > 1e-9 {
            return Err(NeatError::InvalidConfig(format!(
                "selectivity weights must sum to 1, got {}",
                wq + wk + wv
            )));
        }
        Ok(Weights { wq, wk, wv })
    }

    /// Equal weights `(1/3, 1/3, 1/3)` — the paper's "favour all three
    /// factors equally" setting.
    pub fn balanced() -> Self {
        Weights {
            wq: 1.0 / 3.0,
            wk: 1.0 / 3.0,
            wv: 1.0 / 3.0,
        }
    }

    /// `(1, 0, 0)`: pure flow — selects the maxFlow-neighbour
    /// (Definition 7).
    pub fn flow_only() -> Self {
        Weights {
            wq: 1.0,
            wk: 0.0,
            wv: 0.0,
        }
    }

    /// `(0, 1, 0)`: merge with the densest f-neighbour; flows describe
    /// routes where traffic is most concentrated.
    pub fn density_only() -> Self {
        Weights {
            wq: 0.0,
            wk: 1.0,
            wv: 0.0,
        }
    }

    /// `(0, 0, 1)`: flows describe the routes where objects travel fastest.
    pub fn speed_only() -> Self {
        Weights {
            wq: 0.0,
            wk: 0.0,
            wv: 1.0,
        }
    }

    /// `(1/2, 1/2, 0)`: the paper's suggested setting for traffic
    /// monitoring (flow and density matter most).
    pub fn traffic_monitoring() -> Self {
        Weights {
            wq: 0.5,
            wk: 0.5,
            wv: 0.0,
        }
    }

    /// Flow-factor weight.
    pub fn wq(&self) -> f64 {
        self.wq
    }

    /// Density-factor weight.
    pub fn wk(&self) -> f64 {
        self.wk
    }

    /// Speed-limit-factor weight.
    pub fn wv(&self) -> f64 {
        self.wv
    }

    /// The merging selectivity `SF = wq·q + wk·k + wv·v` (Definition 10).
    pub fn selectivity(&self, q: f64, k: f64, v: f64) -> f64 {
        self.wq * q + self.wk * k + self.wv * v
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::balanced()
    }
}

/// Which points of two representative routes the Phase-3 distance
/// compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteDistance {
    /// The paper's first prototype (Definition 11): only the two route
    /// endpoints on each side.
    Endpoints,
    /// Full modified Hausdorff over every junction of both routes —
    /// stricter (two routes must track each other along their whole
    /// length), costlier, and mentioned by the paper as the natural
    /// generalisation of its endpoint measure.
    FullRoute,
}

/// Shortest-path strategy used by Phase 3 (the Figure-7 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpStrategy {
    /// A* with the admissible Euclidean heuristic (default).
    AStar,
    /// Plain Dijkstra network expansion — the paper's
    /// `opt-NEAT-Dijkstra` baseline.
    Dijkstra,
}

/// Full configuration of a NEAT run.
///
/// Defaults mirror the paper's first prototype: balanced selectivity
/// weights, `β = +∞` (pure maxFlow selection, Definition 7), `minCard = 5`
/// (the ATL500 experiment's filter), `ε = 6500 m` (Figure 3) and the ELB
/// optimisation enabled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeatConfig {
    /// Merging-selectivity weights (Definition 10).
    pub weights: Weights,
    /// Netflow domination threshold β (Section III-B2): a netflow `f1`
    /// dominates `f2` when `f1/f2 ≥ β`. `+∞` disables domination restarts.
    pub beta: f64,
    /// Minimum trajectory cardinality of a flow cluster; smaller flows are
    /// filtered out after Phase 2.
    pub min_card: usize,
    /// Distance threshold ε (metres) for the Phase-3 density-based merge.
    pub epsilon: f64,
    /// Whether Phase 3 uses the Euclidean-lower-bound filter before
    /// computing network distances.
    pub use_elb: bool,
    /// Shortest-path algorithm for Phase 3.
    pub sp_strategy: SpStrategy,
    /// Which route points the Phase-3 distance compares.
    pub route_distance: RouteDistance,
    /// Whether Phase 1 inserts junction points between consecutive samples
    /// on different segments (including shortest-path gap repair for
    /// non-contiguous segments). Disable only for pre-fragmented input.
    pub insert_junctions: bool,
    /// Worker threads for the parallel phases (Phase-1 fragment
    /// extraction, Phase-2 candidate scoring, Phase-3 neighbourhood
    /// scans); `0` and `1` both mean sequential. Every parallel path is
    /// bit-identical to the sequential one, for any thread count, even
    /// under budget or cancellation interrupts.
    pub threads: usize,
    /// Number of ALT landmarks for the Phase-3 lower bound (0 disables).
    /// Landmark bounds are layered on top of the Euclidean lower bound
    /// (the filter is `max(euclidean, alt)`), so they only ever skip
    /// *more* pairs and never change the clustering. Only used when
    /// [`NeatConfig::use_elb`] is set. Preprocessing costs one full
    /// Dijkstra per landmark, paid inside Phase 3: on Table-I-sized
    /// networks a handful of landmarks captures most of the skips, so
    /// the default stays small.
    pub alt_landmarks: usize,
    /// Whether Phase 3 answers endpoint distances from bounded
    /// one-to-many Dijkstra tables (one expansion per scanned endpoint,
    /// reused across every candidate pair of that scan) instead of one
    /// bounded point-to-point search per node pair. Identical decisions,
    /// far fewer searches; only applies to the
    /// [`RouteDistance::Endpoints`] + [`SpStrategy::AStar`] combination.
    pub endpoint_tables: bool,
}

impl Default for NeatConfig {
    fn default() -> Self {
        NeatConfig {
            weights: Weights::balanced(),
            beta: f64::INFINITY,
            min_card: 5,
            epsilon: 6500.0,
            use_elb: true,
            sp_strategy: SpStrategy::AStar,
            route_distance: RouteDistance::Endpoints,
            insert_junctions: true,
            threads: 1,
            alt_landmarks: 4,
            endpoint_tables: true,
        }
    }
}

impl NeatConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`NeatError::InvalidConfig`] when `beta < 1`, `epsilon` is
    /// negative or not finite-or-+∞ constraints are violated.
    pub fn validate(&self) -> Result<(), NeatError> {
        if self.beta < 1.0 {
            return Err(NeatError::InvalidConfig(format!(
                "beta must be ≥ 1 (got {})",
                self.beta
            )));
        }
        // NaN must fail too, hence the negated comparison.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.epsilon >= 0.0) {
            return Err(NeatError::InvalidConfig(format!(
                "epsilon must be non-negative (got {})",
                self.epsilon
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_must_sum_to_one() {
        assert!(Weights::new(0.2, 0.3, 0.5).is_ok());
        assert!(Weights::new(0.2, 0.3, 0.6).is_err());
        assert!(Weights::new(-0.1, 0.6, 0.5).is_err());
    }

    #[test]
    fn named_presets_are_valid() {
        for w in [
            Weights::balanced(),
            Weights::flow_only(),
            Weights::density_only(),
            Weights::speed_only(),
            Weights::traffic_monitoring(),
            Weights::default(),
        ] {
            assert!(((w.wq() + w.wk() + w.wv()) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn selectivity_formula() {
        let w = Weights::new(0.5, 0.3, 0.2).unwrap();
        let sf = w.selectivity(1.0, 0.5, 0.25);
        assert!((sf - (0.5 + 0.15 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn flow_only_reduces_to_maxflow() {
        let w = Weights::flow_only();
        // With wq=1, selectivity is exactly the flow factor.
        assert_eq!(w.selectivity(0.7, 0.1, 0.9), 0.7);
    }

    #[test]
    fn default_config_is_valid() {
        assert!(NeatConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = NeatConfig {
            beta: 0.5,
            ..NeatConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NeatConfig {
            epsilon: -1.0,
            ..NeatConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NeatConfig {
            epsilon: f64::NAN,
            ..NeatConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
