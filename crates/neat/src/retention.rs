//! Time-windowed retention and cluster-drift lifecycle events.
//!
//! Streaming NEAT (paper §VI) keeps every t-fragment it has ever seen,
//! which is unbounded under live traffic. This module implements the
//! *retention* half of the bounded-forever story:
//!
//! * [`expire_flows`] deterministically removes t-fragments whose
//!   observation time falls behind a logical-time **watermark**. A flow
//!   cluster whose interior members empty out is split into contiguous
//!   runs (each still a valid route); fully-expired flows are dropped.
//!   Expiry is *per-fragment and order-preserving*, which is what makes
//!   `ingest(A); expire(w); ingest(B)` ≡ `ingest(A); ingest(B); expire(w)`
//!   (see `tests/prop_retention.rs`).
//! * [`diff_drift`] compares two refinement outputs and emits typed
//!   [`DriftEvent`]s — `Born`/`Grew`/`Shrank`/`Merged`/`Died` — in the
//!   spirit of evolving-cluster work on road-network flows (El Mahrsi &
//!   Rossi): cluster lifecycle is first-class output, not a diff the
//!   operator has to reconstruct.
//!
//! Drift has no stable cluster identity to lean on (Phase 3 re-refines
//! from scratch), so clusters are keyed by their *smallest participating
//! trajectory id* and matched by participating-set overlap, with
//! deterministic tie-breaks. Drift events are observability output: they
//! are **not** checkpointed and never feed back into clustering state.

use crate::model::{BaseCluster, FlowCluster, TrajectoryCluster};
use neat_traj::TrajectoryId;
use std::collections::BTreeSet;

/// A cluster-lifecycle transition between two consecutive refinement
/// outputs. `key` is the cluster's smallest participating trajectory id
/// (the only identity that survives re-refinement); sizes are
/// participating-trajectory cardinalities.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DriftEvent {
    /// A cluster with no overlap to any previous cluster appeared (also
    /// emitted for the smaller half of a split).
    Born {
        /// Smallest participating trajectory id of the new cluster.
        key: u64,
        /// Trajectory cardinality of the new cluster.
        size: usize,
    },
    /// A cluster kept its lineage and gained trajectories.
    Grew {
        /// Lineage key (smallest trajectory id of the current cluster).
        key: u64,
        /// Previous trajectory cardinality.
        from: usize,
        /// Current trajectory cardinality.
        to: usize,
    },
    /// A cluster kept its lineage and lost trajectories.
    Shrank {
        /// Lineage key (smallest trajectory id of the current cluster).
        key: u64,
        /// Previous trajectory cardinality.
        from: usize,
        /// Current trajectory cardinality.
        to: usize,
    },
    /// A cluster overlaps two or more previous clusters.
    Merged {
        /// Smallest trajectory id of the merged cluster.
        key: u64,
        /// Keys of the previous clusters that merged, ascending.
        sources: Vec<u64>,
    },
    /// A previous cluster overlaps no current cluster.
    Died {
        /// Smallest trajectory id of the vanished cluster.
        key: u64,
        /// Its trajectory cardinality before vanishing.
        size: usize,
    },
}

/// Running totals of [`DriftEvent`]s, for health probes and status
/// replies. Plain counters: cheap to merge, encode and diff.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftCounts {
    /// Clusters born (including split-offs).
    pub born: u64,
    /// Clusters that grew.
    pub grew: u64,
    /// Clusters that shrank.
    pub shrank: u64,
    /// Merge events.
    pub merged: u64,
    /// Clusters that died.
    pub died: u64,
}

impl DriftCounts {
    /// Folds a batch of events into the totals.
    pub fn absorb(&mut self, events: &[DriftEvent]) {
        for ev in events {
            match ev {
                DriftEvent::Born { .. } => self.born += 1,
                DriftEvent::Grew { .. } => self.grew += 1,
                DriftEvent::Shrank { .. } => self.shrank += 1,
                DriftEvent::Merged { .. } => self.merged += 1,
                DriftEvent::Died { .. } => self.died += 1,
            }
        }
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.born + self.grew + self.shrank + self.merged + self.died
    }
}

/// What one [`expire_before`](crate::incremental::IncrementalNeat::expire_before)
/// call did to the retained state.
#[derive(Debug, Clone)]
pub struct ExpiryOutcome {
    /// The watermark in effect after the call.
    pub watermark: f64,
    /// Whether the watermark advanced (false = idempotent no-op).
    pub advanced: bool,
    /// T-fragments removed from the retained flows.
    pub expired_fragments: usize,
    /// Flow clusters dropped entirely (every fragment expired).
    pub expired_flows: usize,
    /// Flow clusters split because an interior member emptied out.
    pub split_flows: usize,
    /// Cluster-lifecycle transitions caused by this expiry.
    pub events: Vec<DriftEvent>,
    /// The trajectory clusters after expiry and re-refinement.
    pub clusters: Vec<TrajectoryCluster>,
}

/// Tally of what [`expire_flows`] removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ExpiryStats {
    pub expired_fragments: usize,
    pub expired_flows: usize,
    pub split_flows: usize,
}

/// Removes every t-fragment observed strictly before `watermark`
/// (`fragment.last.time < watermark`) from `flows`.
///
/// Per flow, surviving members are regrouped into maximal contiguous
/// runs — each run keeps its slice of the original junction chain, so
/// every output flow is still a valid route. Relative flow order is
/// preserved (runs replace their flow in place), which keeps expiry
/// deterministic and independent of how batches were interleaved.
pub(crate) fn expire_flows(
    flows: Vec<FlowCluster>,
    watermark: f64,
) -> (Vec<FlowCluster>, ExpiryStats) {
    let mut kept = Vec::with_capacity(flows.len());
    let mut stats = ExpiryStats::default();
    for flow in flows {
        let nodes = flow.node_chain().to_vec();
        let mut pruned: Vec<Option<BaseCluster>> = Vec::with_capacity(flow.members().len());
        for member in flow.members() {
            let live: Vec<_> = member
                .fragments()
                .iter()
                .filter(|f| f.last.time >= watermark)
                .cloned()
                .collect();
            stats.expired_fragments += member.fragments().len() - live.len();
            if live.is_empty() {
                pruned.push(None);
            } else {
                let base = BaseCluster::new(member.segment(), live)
                    .expect("surviving fragments come from a same-segment member"); // lint:allow(L1) reason=fragments are filtered from a member that already validated its segment
                pruned.push(Some(base));
            }
        }
        let mut runs = 0usize;
        let mut i = 0usize;
        while i < pruned.len() {
            if pruned[i].is_none() {
                i += 1;
                continue;
            }
            let start = i;
            while i < pruned.len() && pruned[i].is_some() {
                i += 1;
            }
            let members: Vec<BaseCluster> = pruned[start..i]
                .iter_mut()
                .map(|slot| slot.take().expect("run contains only surviving members")) // lint:allow(L1) reason=the run was delimited by is_some()
                .collect();
            let run_nodes = nodes[start..=i].to_vec();
            let rebuilt = FlowCluster::from_parts(members, run_nodes)
                .expect("run is non-empty with a members+1 node chain"); // lint:allow(L1) reason=run length and node slice length are constructed to match
            kept.push(rebuilt);
            runs += 1;
        }
        if runs == 0 {
            stats.expired_flows += 1;
        } else if runs > 1 {
            stats.split_flows += runs - 1;
        }
    }
    (kept, stats)
}

/// Participating-trajectory set of a trajectory cluster.
fn cluster_set(c: &TrajectoryCluster) -> BTreeSet<TrajectoryId> {
    let mut all = BTreeSet::new();
    for f in c.flows() {
        all.extend(f.participating_trajectories().iter().copied());
    }
    all
}

/// Lineage key of a participating set: its smallest trajectory id.
fn key_of(s: &BTreeSet<TrajectoryId>) -> u64 {
    s.iter().next().map(|t| t.value()).unwrap_or(u64::MAX)
}

fn intersects(a: &BTreeSet<TrajectoryId>, b: &BTreeSet<TrajectoryId>) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small.iter().any(|t| large.contains(t))
}

/// Diffs two refinement outputs into [`DriftEvent`]s.
///
/// Matching is by participating-trajectory overlap. For each current
/// cluster: no overlapping predecessor → `Born`; two or more → `Merged`;
/// exactly one → it continues that predecessor's lineage only if it is
/// the predecessor's *largest-overlap* successor (ties broken by smaller
/// key), in which case a cardinality change emits `Grew`/`Shrank`;
/// otherwise it is a split-off and emits `Born`. Predecessors that
/// overlap no current cluster emit `Died`. Events are ordered by key
/// (current clusters first, then deaths), so the output is deterministic
/// for deterministic inputs.
pub fn diff_drift(prev: &[TrajectoryCluster], curr: &[TrajectoryCluster]) -> Vec<DriftEvent> {
    let prev_sets: Vec<BTreeSet<TrajectoryId>> = prev.iter().map(cluster_set).collect();
    let curr_sets: Vec<BTreeSet<TrajectoryId>> = curr.iter().map(cluster_set).collect();

    // For every predecessor, the current cluster that inherits its
    // lineage: largest overlap, ties to the smaller current key.
    let heir_of: Vec<Option<usize>> = prev_sets
        .iter()
        .map(|ps| {
            curr_sets
                .iter()
                .enumerate()
                .filter(|(_, cs)| intersects(ps, cs))
                .max_by(|(ai, a), (bi, b)| {
                    let oa = crate::model::intersection_size(ps, a);
                    let ob = crate::model::intersection_size(ps, b);
                    oa.cmp(&ob)
                        .then_with(|| key_of(&curr_sets[*bi]).cmp(&key_of(&curr_sets[*ai])))
                })
                .map(|(i, _)| i)
        })
        .collect();

    let mut order: Vec<usize> = (0..curr_sets.len()).collect();
    order.sort_by_key(|&i| key_of(&curr_sets[i]));

    let mut events = Vec::new();
    let mut survived = vec![false; prev_sets.len()];
    for ci in order {
        let cs = &curr_sets[ci];
        let parents: Vec<usize> = prev_sets
            .iter()
            .enumerate()
            .filter(|(_, ps)| intersects(ps, cs))
            .map(|(i, _)| i)
            .collect();
        match parents.as_slice() {
            [] => events.push(DriftEvent::Born {
                key: key_of(cs),
                size: cs.len(),
            }),
            [pi] => {
                survived[*pi] = true;
                if heir_of[*pi] == Some(ci) {
                    let from = prev_sets[*pi].len();
                    let to = cs.len();
                    if to > from {
                        events.push(DriftEvent::Grew {
                            key: key_of(cs),
                            from,
                            to,
                        });
                    } else if to < from {
                        events.push(DriftEvent::Shrank {
                            key: key_of(cs),
                            from,
                            to,
                        });
                    }
                } else {
                    // Split-off: the lineage went to a larger sibling.
                    events.push(DriftEvent::Born {
                        key: key_of(cs),
                        size: cs.len(),
                    });
                }
            }
            many => {
                let mut sources: Vec<u64> = many.iter().map(|&pi| key_of(&prev_sets[pi])).collect();
                sources.sort_unstable();
                for &pi in many {
                    survived[pi] = true;
                }
                events.push(DriftEvent::Merged {
                    key: key_of(cs),
                    sources,
                });
            }
        }
    }

    let mut deaths: Vec<usize> = (0..prev_sets.len()).filter(|&i| !survived[i]).collect();
    deaths.sort_by_key(|&i| key_of(&prev_sets[i]));
    for pi in deaths {
        events.push(DriftEvent::Died {
            key: key_of(&prev_sets[pi]),
            size: prev_sets[pi].len(),
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::TFragment;

    fn frag_at(tr: u64, seg: usize, time: f64) -> TFragment {
        let loc = |t| RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), t);
        TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(seg),
            first: loc(time - 1.0),
            last: loc(time),
            point_count: 2,
        }
    }

    fn chain_flow(net: &neat_rnet::RoadNetwork, specs: &[(usize, &[(u64, f64)])]) -> FlowCluster {
        let mut flow: Option<FlowCluster> = None;
        for &(seg, frags) in specs {
            let members: Vec<TFragment> =
                frags.iter().map(|&(tr, t)| frag_at(tr, seg, t)).collect();
            let base = BaseCluster::new(SegmentId::new(seg), members).unwrap();
            flow = Some(match flow.take() {
                None => FlowCluster::from_base(net, base).unwrap(),
                Some(mut f) => {
                    f.push_back(net, base).unwrap();
                    f
                }
            });
        }
        flow.unwrap()
    }

    #[test]
    fn expiry_drops_old_fragments_and_whole_flows() {
        let net = chain_network(6, 100.0, 10.0);
        let fresh = chain_flow(&net, &[(0, &[(1, 100.0), (2, 120.0)])]);
        let stale = chain_flow(&net, &[(3, &[(9, 5.0)])]);
        let (kept, stats) = expire_flows(vec![fresh.clone(), stale], 50.0);
        assert_eq!(kept, vec![fresh]);
        assert_eq!(stats.expired_fragments, 1);
        assert_eq!(stats.expired_flows, 1);
        assert_eq!(stats.split_flows, 0);
    }

    #[test]
    fn interior_expiry_splits_a_flow_into_valid_runs() {
        let net = chain_network(6, 100.0, 10.0);
        // Three-segment route; the middle member is entirely stale.
        let flow = chain_flow(
            &net,
            &[
                (0, &[(1, 100.0)]),
                (1, &[(1, 5.0)]),
                (2, &[(1, 110.0), (2, 6.0)]),
            ],
        );
        let (kept, stats) = expire_flows(vec![flow], 50.0);
        assert_eq!(kept.len(), 2);
        assert_eq!(stats.split_flows, 1);
        assert_eq!(stats.expired_fragments, 2);
        // Each run is still a valid route with a consistent node chain.
        for f in &kept {
            assert!(net.is_route(&f.route()));
            assert_eq!(f.node_chain().len(), f.members().len() + 1);
        }
        assert_eq!(kept[0].route(), vec![SegmentId::new(0)]);
        assert_eq!(kept[1].route(), vec![SegmentId::new(2)]);
    }

    #[test]
    fn expiry_boundary_is_half_open() {
        let net = chain_network(3, 100.0, 10.0);
        // last.time == watermark survives (expiry is `< watermark`).
        let flow = chain_flow(&net, &[(0, &[(1, 50.0), (2, 49.999)])]);
        let (kept, stats) = expire_flows(vec![flow], 50.0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].density(), 1);
        assert_eq!(stats.expired_fragments, 1);
    }

    fn cluster(ids: &[u64]) -> TrajectoryCluster {
        let net = chain_network(3, 100.0, 10.0);
        let frags: Vec<TFragment> = ids.iter().map(|&tr| frag_at(tr, 0, 10.0)).collect();
        let base = BaseCluster::new(SegmentId::new(0), frags).unwrap();
        TrajectoryCluster::new(vec![FlowCluster::from_base(&net, base).unwrap()])
    }

    #[test]
    fn drift_born_grew_shrank_died() {
        let prev = vec![cluster(&[1, 2, 3]), cluster(&[10, 11])];
        let curr = vec![cluster(&[1, 2]), cluster(&[20])];
        let events = diff_drift(&prev, &curr);
        assert_eq!(
            events,
            vec![
                DriftEvent::Shrank {
                    key: 1,
                    from: 3,
                    to: 2
                },
                DriftEvent::Born { key: 20, size: 1 },
                DriftEvent::Died { key: 10, size: 2 },
            ]
        );
        let grew = diff_drift(&curr, &[cluster(&[1, 2, 4, 5]), cluster(&[20])]);
        assert_eq!(
            grew,
            vec![DriftEvent::Grew {
                key: 1,
                from: 2,
                to: 4
            }]
        );
    }

    #[test]
    fn drift_merge_and_split() {
        let a = cluster(&[1, 2]);
        let b = cluster(&[5, 6]);
        let merged = cluster(&[1, 2, 5, 6]);
        assert_eq!(
            diff_drift(&[a.clone(), b.clone()], std::slice::from_ref(&merged)),
            vec![DriftEvent::Merged {
                key: 1,
                sources: vec![1, 5]
            }]
        );
        // Split: the larger-overlap half keeps the lineage (Shrank), the
        // other half is Born.
        let big = cluster(&[1, 2, 3, 5]);
        let events = diff_drift(&[big], &[cluster(&[1, 2, 3]), cluster(&[5])]);
        assert_eq!(
            events,
            vec![
                DriftEvent::Shrank {
                    key: 1,
                    from: 4,
                    to: 3
                },
                DriftEvent::Born { key: 5, size: 1 },
            ]
        );
    }

    #[test]
    fn drift_no_change_is_silent() {
        let prev = vec![cluster(&[1, 2]), cluster(&[7])];
        assert!(diff_drift(&prev, &prev.clone()).is_empty());
    }

    #[test]
    fn drift_counts_absorb() {
        let mut counts = DriftCounts::default();
        counts.absorb(&[
            DriftEvent::Born { key: 1, size: 1 },
            DriftEvent::Died { key: 2, size: 1 },
            DriftEvent::Merged {
                key: 3,
                sources: vec![3, 4],
            },
        ]);
        assert_eq!(counts.born, 1);
        assert_eq!(counts.died, 1);
        assert_eq!(counts.merged, 1);
        assert_eq!(counts.total(), 3);
    }
}
