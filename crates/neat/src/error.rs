//! Error type for the NEAT pipeline.

use neat_rnet::{RnetError, SegmentId};
use neat_runctl::Interrupt;
use std::error::Error;
use std::fmt;

/// Errors produced by the NEAT clustering pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum NeatError {
    /// A trajectory references a road segment missing from the network.
    UnknownSegment(SegmentId),
    /// Configuration is invalid (message explains which parameter).
    InvalidConfig(String),
    /// A fragment's segment does not match the base cluster it was added to.
    SegmentMismatch {
        /// Segment of the base cluster.
        expected: SegmentId,
        /// Segment of the offending fragment.
        got: SegmentId,
    },
    /// A base cluster cannot extend a flow cluster because its segment is
    /// not adjacent to the flow's open endpoint.
    NotAdjacent {
        /// The flow's end segment.
        end: SegmentId,
        /// The candidate segment.
        candidate: SegmentId,
    },
    /// An underlying road-network error.
    Rnet(RnetError),
    /// The run was stopped by its execution controller (deadline, budget
    /// or cancellation). Controlled entry points such as
    /// [`crate::Neat::run_controlled`] intercept this variant and convert
    /// it into a graceful [`crate::control::Outcome`]; it can only escape
    /// through the low-level phase functions when a
    /// [`neat_runctl::Control`] is attached.
    Interrupted(Interrupt),
}

impl fmt::Display for NeatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NeatError::UnknownSegment(s) => {
                write!(f, "trajectory references unknown segment {s}")
            }
            NeatError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NeatError::SegmentMismatch { expected, got } => {
                write!(f, "fragment on {got} added to base cluster for {expected}")
            }
            NeatError::NotAdjacent { end, candidate } => {
                write!(f, "segment {candidate} is not adjacent to flow end {end}")
            }
            NeatError::Rnet(e) => write!(f, "road network error: {e}"),
            NeatError::Interrupted(i) => write!(f, "run interrupted: {}", i.name()),
        }
    }
}

impl Error for NeatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NeatError::Rnet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RnetError> for NeatError {
    fn from(e: RnetError) -> Self {
        NeatError::Rnet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let variants = [
            NeatError::UnknownSegment(SegmentId::new(1)),
            NeatError::InvalidConfig("weights".into()),
            NeatError::SegmentMismatch {
                expected: SegmentId::new(0),
                got: SegmentId::new(1),
            },
            NeatError::NotAdjacent {
                end: SegmentId::new(0),
                candidate: SegmentId::new(5),
            },
            NeatError::Rnet(RnetError::EmptyNetwork),
            NeatError::Interrupted(Interrupt::Cancelled),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn rnet_error_has_source() {
        let e = NeatError::from(RnetError::EmptyNetwork);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeatError>();
    }
}
