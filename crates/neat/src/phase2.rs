//! Phase 2 — flow cluster formation (Section III-B).
//!
//! Starting from the dense-core of the density-sorted base-cluster list,
//! flow clusters are grown by repeatedly merging, at each open end, the
//! f-neighbour with the highest merging selectivity
//! `SF = wq·q + wk·k + wv·v` (Definitions 9–10). A netflow between two
//! f-neighbours that β-dominates the end's maxFlow removes both from the
//! neighbourhood and restarts the selection (Section III-B2). Expansion of
//! an end stops when its f-neighbourhood is empty; when both ends stop, the
//! flow is emitted (if its trajectory cardinality reaches `minCard`) and
//! the next round starts from the densest remaining base cluster.

use crate::config::NeatConfig;
use crate::control::PhaseStatus;
use crate::error::NeatError;
use crate::model::{BaseCluster, FlowCluster};
use neat_exec::Executor;
use neat_rnet::{RoadNetwork, SegmentId};
use neat_runctl::{Control, Interrupt};

/// Output of Phase 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase2Output {
    /// Flow clusters with trajectory cardinality ≥ `minCard`, in formation
    /// order.
    pub flow_clusters: Vec<FlowCluster>,
    /// Number of flows filtered out by the `minCard` threshold.
    pub discarded: usize,
}

/// Which end of the flow is being extended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// Appending after the last member.
    Back,
    /// Prepending before the first member.
    Front,
}

/// One step of the Phase-2 merging process — the "explain" trace that
/// makes a clustering run auditable (which candidate won each merge and
/// why, where β-domination diverted a merge, why expansion stopped).
#[derive(Debug, Clone, PartialEq)]
pub enum MergeEvent {
    /// A new flow was seeded from the densest remaining base cluster.
    Seed {
        /// Index of the flow in formation order.
        flow: usize,
        /// Seed segment (the round's dense-core).
        segment: SegmentId,
        /// Seed density.
        density: usize,
    },
    /// A β-dominated pair was removed from an end's f-neighbourhood.
    DominationRestart {
        /// Flow being expanded.
        flow: usize,
        /// Which end.
        end: End,
        /// The removed pair of segments.
        removed: (SegmentId, SegmentId),
        /// Netflow between the removed pair.
        pair_netflow: usize,
        /// The end's maxFlow that was dominated.
        max_flow: usize,
    },
    /// A base cluster was merged into a flow.
    Merge {
        /// Flow being expanded.
        flow: usize,
        /// Which end.
        end: End,
        /// The merged segment.
        segment: SegmentId,
        /// Winning merging selectivity SF.
        selectivity: f64,
        /// Netflow between the end cluster and the merged cluster.
        netflow: usize,
    },
    /// The flow was emitted (cardinality ≥ minCard) or discarded.
    Finished {
        /// Flow index.
        flow: usize,
        /// Member count.
        members: usize,
        /// Trajectory cardinality.
        cardinality: usize,
        /// Whether it passed the minCard filter.
        kept: bool,
    },
}

/// Runs Phase 2 over the density-sorted base clusters produced by Phase 1.
///
/// Consumes the base clusters: every one is assigned to exactly one flow
/// cluster (possibly a discarded one), so repeated rounds always terminate.
///
/// # Errors
///
/// Returns [`NeatError::UnknownSegment`] if a base cluster references a
/// segment missing from `net`, or [`NeatError::InvalidConfig`] when the
/// configuration fails validation.
pub fn form_flow_clusters(
    net: &RoadNetwork,
    base_clusters: Vec<BaseCluster>,
    config: &NeatConfig,
) -> Result<Phase2Output, NeatError> {
    form_flow_clusters_traced(net, base_clusters, config, &mut None)
}

/// Like [`form_flow_clusters`], but records every merging decision into
/// `trace` (pass `&mut Some(Vec::new())` to collect events).
///
/// # Errors
///
/// Same as [`form_flow_clusters`].
pub fn form_flow_clusters_traced(
    net: &RoadNetwork,
    base_clusters: Vec<BaseCluster>,
    config: &NeatConfig,
    trace: &mut Option<Vec<MergeEvent>>,
) -> Result<Phase2Output, NeatError> {
    form_flow_clusters_inner(net, base_clusters, config, trace, None).map(|(out, _)| out)
}

/// Phase 2 under a [`Control`]: one cancel point per seed, one per merge
/// iteration, and a cluster-count cap applied after each kept flow.
///
/// On interrupt the flow being expanded is *finished* — it stays a valid
/// contiguous route, just shorter than it would have grown — the
/// `minCard` filter is applied to it, and no further seeds are processed.
/// The kept flows are returned with a [`PhaseStatus::Partial`] report.
///
/// # Errors
///
/// Same as [`form_flow_clusters`] — interrupts are reported in the
/// returned status, never as errors.
pub fn form_flow_clusters_ctl(
    net: &RoadNetwork,
    base_clusters: Vec<BaseCluster>,
    config: &NeatConfig,
    ctl: &Control,
) -> Result<(Phase2Output, PhaseStatus), NeatError> {
    form_flow_clusters_inner(net, base_clusters, config, &mut None, Some(ctl))
}

fn form_flow_clusters_inner(
    net: &RoadNetwork,
    base_clusters: Vec<BaseCluster>,
    config: &NeatConfig,
    trace: &mut Option<Vec<MergeEvent>>,
    ctl: Option<&Control>,
) -> Result<(Phase2Output, PhaseStatus), NeatError> {
    config.validate()?;
    // Invariant: every pool slot starts as `Some` and is only emptied by a
    // `take()` when its cluster is merged into a flow. The `expect`s on pool
    // entries below and in `expand_end` rely on this bookkeeping, never on
    // caller input, so they are unreachable for malformed datasets.
    let mut pool: Vec<Option<BaseCluster>> = base_clusters.into_iter().map(Some).collect();
    // Flat segment-index → pool-slot lookup (`u32::MAX` = no cluster):
    // the adjacency probes in `expand_end` become a dense array read
    // instead of a hash lookup. Segments outside the network are not
    // indexed — they are unreachable from `adjacent_segments_at`, and a
    // seed on such a segment errors in `FlowCluster::from_base` exactly
    // as before.
    let mut by_segment: Vec<u32> = vec![u32::MAX; net.segment_count()];
    for (i, c) in pool.iter().enumerate() {
        let seg = c.as_ref().expect("fresh pool").segment(); // lint:allow(L1) reason=pool slots start Some; see the invariant note above
        if seg.index() < by_segment.len() {
            by_segment[seg.index()] = i as u32; // lint:allow(L4) reason=pool slots are bounded by the u32-backed segment id space
        }
    }

    let total = pool.len();
    // Candidate scoring inside `expand_end` is a pure read of the pool, so
    // it can fan out across threads; the argmax itself is folded in
    // neighbourhood order and stays bit-identical to a sequential scan.
    let exec = Executor::new(config.threads);
    let mut flows = Vec::new();
    let mut discarded = 0usize;
    let mut status = PhaseStatus::Complete;
    for seed_idx in 0..pool.len() {
        if let Some(c) = ctl {
            if let Err(why) = c.check() {
                status = PhaseStatus::Partial {
                    done: seed_idx,
                    total,
                    why,
                };
                break;
            }
        }
        let seed = match pool[seed_idx].take() {
            Some(s) => s,
            None => continue, // already merged into an earlier flow
        };
        let flow_idx = flows.len() + discarded;
        if let Some(t) = trace.as_mut() {
            t.push(MergeEvent::Seed {
                flow: flow_idx,
                segment: seed.segment(),
                density: seed.density(),
            });
        }
        let mut flow = FlowCluster::from_base(net, seed)?;
        let mut stopped = expand_end(
            net,
            &mut flow,
            &mut pool,
            &by_segment,
            config,
            End::Back,
            flow_idx,
            trace,
            ctl,
            &exec,
        )?;
        if stopped.is_none() {
            stopped = expand_end(
                net,
                &mut flow,
                &mut pool,
                &by_segment,
                config,
                End::Front,
                flow_idx,
                trace,
                ctl,
                &exec,
            )?;
        }
        // An interrupt mid-expansion leaves the flow a valid (shorter)
        // contiguous route: finish it normally, then stop seeding.
        let kept = flow.trajectory_cardinality() >= config.min_card;
        if let Some(t) = trace.as_mut() {
            t.push(MergeEvent::Finished {
                flow: flow_idx,
                members: flow.members().len(),
                cardinality: flow.trajectory_cardinality(),
                kept,
            });
        }
        if kept {
            flows.push(flow);
        } else {
            discarded += 1;
        }
        if let Some(why) = stopped {
            status = PhaseStatus::Partial {
                done: seed_idx + 1,
                total,
                why,
            };
            break;
        }
        if kept {
            if let Some(c) = ctl {
                if let Err(why) = c.check_clusters(flows.len()) {
                    status = PhaseStatus::Partial {
                        done: seed_idx + 1,
                        total,
                        why,
                    };
                    break;
                }
            }
        }
    }
    Ok((
        Phase2Output {
            flow_clusters: flows,
            discarded,
        },
        status,
    ))
}

/// Extends one end of `flow` until its f-neighbourhood is exhausted, or
/// until the controller interrupts (returned as `Ok(Some(why))`; the
/// flow remains a valid contiguous route either way).
#[allow(clippy::too_many_arguments)]
fn expand_end(
    net: &RoadNetwork,
    flow: &mut FlowCluster,
    pool: &mut [Option<BaseCluster>],
    by_segment: &[u32],
    config: &NeatConfig,
    end: End,
    flow_idx: usize,
    trace: &mut Option<Vec<MergeEvent>>,
    ctl: Option<&Control>,
    exec: &Executor,
) -> Result<Option<Interrupt>, NeatError> {
    loop {
        // One cancel point per merge iteration.
        if let Some(c) = ctl {
            if let Err(why) = c.check() {
                return Ok(Some(why));
            }
        }
        // Invariant: a FlowCluster is created from a seed base cluster and
        // only ever grows, so `members()` is never empty here.
        let (end_cluster, nu) = match end {
            End::Back => (
                flow.members().last().expect("non-empty flow"), // lint:allow(L1) reason=flows always contain at least one member cluster
                flow.back_endpoint(),
            ),
            End::Front => (
                flow.members().first().expect("non-empty flow"), // lint:allow(L1) reason=flows always contain at least one member cluster
                flow.front_endpoint(),
            ),
        };
        let end_segment = end_cluster.segment();

        // f-neighbourhood Nf(S, nu): unmerged base clusters on segments
        // adjacent at nu with positive netflow (Definition 6). Sorted by
        // segment id for determinism.
        //
        // Invariant: `neigh` holds only indices whose pool slot was `Some`
        // when filtered, and nothing is taken from the pool until `chosen`
        // at the bottom of the loop — so every `expect("present")` below is
        // internal bookkeeping, not input validation.
        let mut neigh: Vec<usize> = net
            .adjacent_segments_at(end_segment, nu)
            .into_iter()
            .filter_map(|sid| {
                let slot = by_segment[sid.index()];
                (slot != u32::MAX).then_some(slot as usize) // lint:allow(L4) reason=widening a u32 slot back to usize is lossless
            })
            .filter(|&i| pool[i].as_ref().is_some_and(|c| end_cluster.netflow(c) > 0))
            .collect();
        neigh.sort_by_key(|&i| pool[i].as_ref().expect("filtered above").segment()); // lint:allow(L1) reason=the filter above keeps only populated slots

        // β-domination restarts (Section III-B2): while a netflow between
        // two f-neighbours dominates the end's maxFlow, drop that pair from
        // the neighbourhood and re-examine.
        if config.beta.is_finite() {
            loop {
                let max_flow = neigh
                    .iter()
                    .map(|&i| end_cluster.netflow(pool[i].as_ref().expect("present"))) // lint:allow(L1) reason=neigh indices were filtered to populated slots
                    .max()
                    .unwrap_or(0);
                if max_flow == 0 {
                    break;
                }
                let mut dominated: Option<(usize, usize)> = None;
                'pairs: for (x, &i) in neigh.iter().enumerate() {
                    for &j in neigh.iter().skip(x + 1) {
                        let fij = pool[i]
                            .as_ref()
                            .expect("present") // lint:allow(L1) reason=neigh indices were filtered to populated slots
                            .netflow(pool[j].as_ref().expect("present"));
                        if fij > 0 && fij as f64 / max_flow as f64 >= config.beta {
                            dominated = Some((i, j));
                            break 'pairs;
                        }
                    }
                }
                match dominated {
                    Some((i, j)) => {
                        if let Some(t) = trace.as_mut() {
                            let (si, sj) = (
                                pool[i].as_ref().expect("present").segment(), // lint:allow(L1) reason=neigh indices were filtered to populated slots
                                pool[j].as_ref().expect("present").segment(),
                            );
                            t.push(MergeEvent::DominationRestart {
                                flow: flow_idx,
                                end,
                                removed: (si, sj),
                                pair_netflow: pool[i]
                                    .as_ref()
                                    .expect("present") // lint:allow(L1) reason=neigh indices were filtered to populated slots
                                    .netflow(pool[j].as_ref().expect("present")),
                                max_flow,
                            });
                        }
                        neigh.retain(|&x| x != i && x != j)
                    }
                    None => break,
                }
            }
        }

        if neigh.is_empty() {
            return Ok(None);
        }

        // Definition 9 denominators over the (possibly reduced)
        // neighbourhood.
        let d_s = end_cluster.density() as f64;
        let sum_d: f64 = neigh
            .iter()
            .map(|&i| pool[i].as_ref().expect("present").density() as f64) // lint:allow(L1) reason=neigh indices were filtered to populated slots
            .sum();
        let sum_v: f64 = neigh
            .iter()
            .map(|&i| segment_speed(net, pool[i].as_ref().expect("present"))) // lint:allow(L1) reason=neigh indices were filtered to populated slots
            .sum();
        let card_s = end_cluster.trajectory_cardinality() as f64;

        // Score every candidate — a pure read of the pool, so the scores
        // can be computed in parallel — then pick the winner by a
        // neighbourhood-order fold, preserving the exact sequential
        // tie-breaks: selectivity, then netflow with the whole flow, then
        // segment id.
        let pool_ref: &[Option<BaseCluster>] = pool;
        let flow_ref: &FlowCluster = flow;
        let scored: Vec<(f64, usize)> = exec.map(neigh.len(), |x| {
            let cand = pool_ref[neigh[x]].as_ref().expect("present"); // lint:allow(L1) reason=neigh indices were filtered to populated slots
            let q = end_cluster.netflow(cand) as f64 / card_s.max(1.0);
            let k = cand.density() as f64 / (d_s + sum_d);
            let v = segment_speed(net, cand) / sum_v.max(f64::MIN_POSITIVE);
            (
                config.weights.selectivity(q, k, v),
                flow_ref.netflow_with(cand),
            )
        });
        let mut best: Option<(usize, f64, usize)> = None; // (idx, sf, f(F,S))
        for (x, &i) in neigh.iter().enumerate() {
            let (sf, f_flow) = scored[x];
            let better = match &best {
                None => true,
                Some((bi, bsf, bf)) => {
                    sf > *bsf + 1e-12
                        || ((sf - *bsf).abs() <= 1e-12
                            && (f_flow > *bf
                                || (f_flow == *bf
                                    && pool[i].as_ref().expect("present").segment() // lint:allow(L1) reason=neigh indices were filtered to populated slots
                                        < pool[*bi].as_ref().expect("present").segment())))
                }
            };
            if better {
                best = Some((i, sf, f_flow));
            }
        }
        // Invariant: the `neigh.is_empty()` early-return above guarantees
        // the candidate loop ran at least once, so `best` is `Some`.
        let (chosen, sf, _) = best.expect("neighbourhood non-empty"); // lint:allow(L1) reason=documented invariant above: the candidate loop ran at least once and the chosen slot is still populated
        let cluster = pool[chosen].take().expect("present");
        if let Some(t) = trace.as_mut() {
            t.push(MergeEvent::Merge {
                flow: flow_idx,
                end,
                segment: cluster.segment(),
                selectivity: sf,
                netflow: match end {
                    End::Back => flow.members().last(),
                    End::Front => flow.members().first(),
                }
                .expect("non-empty") // lint:allow(L1) reason=a flow retains at least one member after merging
                .netflow(&cluster),
            });
        }
        match end {
            End::Back => flow.push_back(net, cluster)?,
            End::Front => flow.push_front(net, cluster)?,
        }
    }
}

fn segment_speed(net: &RoadNetwork, cluster: &BaseCluster) -> f64 {
    net.segment(cluster.segment())
        .map(|s| s.speed_limit)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Weights;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, RoadNetworkBuilder};
    use neat_traj::{TFragment, TrajectoryId};

    fn frag(tr: u64, seg: usize) -> TFragment {
        let loc = RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), 0.0);
        TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(seg),
            first: loc,
            last: loc,
            point_count: 2,
        }
    }

    fn base(seg: usize, trs: &[u64]) -> BaseCluster {
        BaseCluster::new(
            SegmentId::new(seg),
            trs.iter().map(|&t| frag(t, seg)).collect(),
        )
        .unwrap()
    }

    fn cfg(min_card: usize) -> NeatConfig {
        NeatConfig {
            min_card,
            weights: Weights::flow_only(),
            ..NeatConfig::default()
        }
    }

    /// Sort clusters by density desc / segment asc like Phase 1 does.
    fn sorted(mut v: Vec<BaseCluster>) -> Vec<BaseCluster> {
        v.sort_by(|a, b| {
            b.density()
                .cmp(&a.density())
                .then_with(|| a.segment().cmp(&b.segment()))
        });
        v
    }

    #[test]
    fn chain_flow_merges_fully() {
        // Chain of 4 segments; trajectories 1..3 traverse all of them.
        let net = chain_network(5, 100.0, 10.0);
        let bases: Vec<BaseCluster> = (0..4).map(|s| base(s, &[1, 2, 3])).collect();
        let out = form_flow_clusters(&net, sorted(bases), &cfg(1)).unwrap();
        assert_eq!(out.flow_clusters.len(), 1);
        assert_eq!(out.discarded, 0);
        let f = &out.flow_clusters[0];
        assert_eq!(f.members().len(), 4);
        assert!(net.is_route(&f.route()));
        assert_eq!(f.trajectory_cardinality(), 3);
    }

    #[test]
    fn zero_netflow_blocks_merging() {
        // Two disjoint trajectory populations on halves of the chain.
        let net = chain_network(5, 100.0, 10.0);
        let bases = vec![
            base(0, &[1, 2]),
            base(1, &[1, 2]),
            base(2, &[8, 9]),
            base(3, &[8, 9]),
        ];
        let out = form_flow_clusters(&net, sorted(bases), &cfg(1)).unwrap();
        assert_eq!(out.flow_clusters.len(), 2);
        for f in &out.flow_clusters {
            assert_eq!(f.members().len(), 2);
        }
    }

    #[test]
    fn min_card_filters_small_flows() {
        let net = chain_network(5, 100.0, 10.0);
        let bases = vec![
            base(0, &[1, 2, 3]),
            base(1, &[1, 2, 3]),
            base(2, &[7]),
            base(3, &[7]),
        ];
        let out = form_flow_clusters(&net, sorted(bases), &cfg(2)).unwrap();
        assert_eq!(out.flow_clusters.len(), 1);
        assert_eq!(out.discarded, 1);
        assert_eq!(out.flow_clusters[0].trajectory_cardinality(), 3);
    }

    /// Star junction: hub node with three spokes, reproducing the paper's
    /// maxFlow example (Figure 1(b) discussion).
    fn star() -> (RoadNetwork, Vec<SegmentId>) {
        let mut b = RoadNetworkBuilder::new();
        let n1 = b.add_node(Point::new(-100.0, 0.0));
        let n2 = b.add_node(Point::new(0.0, 0.0));
        let n3 = b.add_node(Point::new(100.0, 50.0));
        let n4 = b.add_node(Point::new(100.0, 0.0));
        let n5 = b.add_node(Point::new(100.0, -50.0));
        let s12 = b.add_segment(n1, n2, 10.0).unwrap();
        let s23 = b.add_segment(n2, n3, 10.0).unwrap();
        let s24 = b.add_segment(n2, n4, 10.0).unwrap();
        let s25 = b.add_segment(n2, n5, 10.0).unwrap();
        (b.build().unwrap(), vec![s12, s23, s24, s25])
    }

    #[test]
    fn maxflow_neighbor_selected_with_flow_only_weights() {
        let (net, _) = star();
        // S(s12) shares 2 trajectories with S(s23), 1 with S(s24).
        let bases = vec![
            base(0, &[1, 2, 3, 4]), // s12, dense-core
            base(1, &[1, 2]),       // s23: netflow 2
            base(2, &[3]),          // s24: netflow 1
        ];
        let out = form_flow_clusters(&net, sorted(bases), &cfg(1)).unwrap();
        // First flow grows from s12 and merges the maxFlow neighbour s23.
        let first = &out.flow_clusters[0];
        assert!(first.route().contains(&SegmentId::new(1)));
        assert!(first.route().contains(&SegmentId::new(0)));
        assert!(!first.route().contains(&SegmentId::new(2)));
    }

    #[test]
    fn density_only_weights_pick_densest_neighbor() {
        let (net, _) = star();
        let bases = vec![
            base(0, &[1, 2, 3, 4, 5]), // dense-core s12
            base(1, &[1]),             // s23: netflow 1, density 1
            base(2, &[2, 3, 4]),       // s24: netflow 3, density 3
        ];
        let mut c = cfg(1);
        c.weights = Weights::density_only();
        let out = form_flow_clusters(&net, sorted(bases), &c).unwrap();
        let first = &out.flow_clusters[0];
        // Densest f-neighbour s24 is merged even though both have netflow.
        assert!(first.route().contains(&SegmentId::new(2)));
        assert!(!first.route().contains(&SegmentId::new(1)));
    }

    #[test]
    fn beta_domination_diverts_merge() {
        // Paper's example: f(S,S1)=5, f(S,S2)=2, f(S1,S2)=50 — the dominant
        // netflow between the neighbours means S should merge with neither.
        let (net, _) = star();
        let mut bases = Vec::new();
        // S on s12: trajectories 0..=59 (density 60 → dense-core).
        bases.push(base(0, &(0..60).collect::<Vec<_>>()));
        // S1 on s23: shares 5 with S (0..5), plus 50 shared with S2.
        let mut s1_trs: Vec<u64> = (0..5).collect();
        s1_trs.extend(100..150);
        bases.push(base(1, &s1_trs));
        // S2 on s24: shares 2 with S (5..7), plus the same 50.
        let mut s2_trs: Vec<u64> = (5..7).collect();
        s2_trs.extend(100..150);
        bases.push(base(2, &s2_trs));
        let mut c = cfg(1);
        c.beta = 5.0; // 50/5 = 10 ≥ β → dominated
        let out = form_flow_clusters(&net, sorted(bases), &c).unwrap();
        // S's f-neighbourhood at n2 is emptied by the domination rule, so
        // S stays alone; the next round clusters S1 with S2.
        let find = |sid: usize| {
            out.flow_clusters
                .iter()
                .position(|f| f.route().contains(&SegmentId::new(sid)))
                .unwrap()
        };
        assert_eq!(find(1), find(2), "dominant pair should share a flow");
        assert_ne!(find(0), find(1), "S should not join the dominant pair");
    }

    #[test]
    fn without_beta_maxflow_merges_pair_head() {
        // Same topology, β = ∞ → plain maxFlow: S merges with S1.
        let (net, _) = star();
        let bases = vec![
            base(0, &(0..10).collect::<Vec<_>>()),
            base(1, &[0, 1, 2, 3, 4]),
            base(2, &[5, 6]),
        ];
        let out = form_flow_clusters(&net, sorted(bases), &cfg(1)).unwrap();
        let first = &out.flow_clusters[0];
        assert!(first.route().contains(&SegmentId::new(0)));
        assert!(first.route().contains(&SegmentId::new(1)));
    }

    #[test]
    fn deterministic_across_runs() {
        let net = chain_network(6, 100.0, 10.0);
        let mk = || {
            vec![
                base(0, &[1, 2]),
                base(1, &[1, 2, 3]),
                base(2, &[2, 3]),
                base(3, &[3, 4]),
                base(4, &[4]),
            ]
        };
        let a = form_flow_clusters(&net, sorted(mk()), &cfg(1)).unwrap();
        let b = form_flow_clusters(&net, sorted(mk()), &cfg(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn every_base_cluster_is_consumed() {
        let net = chain_network(6, 100.0, 10.0);
        let bases = vec![
            base(0, &[1]),
            base(1, &[2]),
            base(2, &[3]),
            base(3, &[4]),
            base(4, &[5]),
        ];
        let n_bases = bases.len();
        let out = form_flow_clusters(&net, sorted(bases), &cfg(1)).unwrap();
        let placed: usize = out
            .flow_clusters
            .iter()
            .map(|f| f.members().len())
            .sum::<usize>();
        // No netflow anywhere: every base forms its own flow.
        assert_eq!(placed + out.discarded, n_bases);
        assert_eq!(out.flow_clusters.len(), 5);
    }

    #[test]
    fn trace_records_seeds_merges_and_outcomes() {
        let net = chain_network(5, 100.0, 10.0);
        let bases = sorted(vec![
            base(0, &[1, 2, 3]),
            base(1, &[1, 2, 3]),
            base(2, &[1, 2]),
            base(3, &[9]),
        ]);
        let mut trace = Some(Vec::new());
        let out = form_flow_clusters_traced(&net, bases, &cfg(2), &mut trace).unwrap();
        let events = trace.unwrap();
        // One seed per flow (kept or discarded).
        let seeds = events
            .iter()
            .filter(|e| matches!(e, MergeEvent::Seed { .. }))
            .count();
        assert_eq!(seeds, out.flow_clusters.len() + out.discarded);
        // Flow 0 merges s1 and s2 (trajectories 1..3 shared).
        let merges: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                MergeEvent::Merge {
                    flow: 0, segment, ..
                } => Some(segment.index()),
                _ => None,
            })
            .collect();
        assert_eq!(merges.len(), 2);
        assert!(merges.contains(&1) && merges.contains(&2));
        // Finished events carry the minCard verdict.
        let kept: Vec<bool> = events
            .iter()
            .filter_map(|e| match e {
                MergeEvent::Finished { kept, .. } => Some(*kept),
                _ => None,
            })
            .collect();
        assert_eq!(kept, vec![true, false]); // s3's lone flow discarded
    }

    #[test]
    fn trace_records_domination_restart() {
        let (net, _) = star();
        let mut bases = Vec::new();
        bases.push(base(0, &(0..60).collect::<Vec<_>>()));
        let mut s1_trs: Vec<u64> = (0..5).collect();
        s1_trs.extend(100..150);
        bases.push(base(1, &s1_trs));
        let mut s2_trs: Vec<u64> = (5..7).collect();
        s2_trs.extend(100..150);
        bases.push(base(2, &s2_trs));
        let mut c = cfg(1);
        c.beta = 5.0;
        let mut trace = Some(Vec::new());
        let _ = form_flow_clusters_traced(&net, sorted(bases), &c, &mut trace).unwrap();
        let events = trace.unwrap();
        let restarts: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, MergeEvent::DominationRestart { .. }))
            .collect();
        assert_eq!(restarts.len(), 1);
        if let MergeEvent::DominationRestart {
            pair_netflow,
            max_flow,
            ..
        } = restarts[0]
        {
            assert_eq!(*pair_netflow, 50);
            assert_eq!(*max_flow, 5);
        }
    }

    #[test]
    fn untraced_and_traced_agree() {
        let net = chain_network(6, 100.0, 10.0);
        let mk = || {
            sorted(vec![
                base(0, &[1, 2]),
                base(1, &[1, 2, 3]),
                base(2, &[2, 3]),
                base(3, &[3, 4]),
            ])
        };
        let a = form_flow_clusters(&net, mk(), &cfg(1)).unwrap();
        let mut trace = Some(Vec::new());
        let b = form_flow_clusters_traced(&net, mk(), &cfg(1), &mut trace).unwrap();
        assert_eq!(a, b);
        assert!(!trace.unwrap().is_empty());
    }

    #[test]
    fn empty_input_is_fine() {
        let net = chain_network(3, 100.0, 10.0);
        let out = form_flow_clusters(&net, vec![], &cfg(1)).unwrap();
        assert!(out.flow_clusters.is_empty());
        assert_eq!(out.discarded, 0);
    }

    #[test]
    fn invalid_config_rejected() {
        let net = chain_network(3, 100.0, 10.0);
        let mut c = cfg(1);
        c.beta = 0.0;
        assert!(form_flow_clusters(&net, vec![], &c).is_err());
    }
}
