//! Phase 1 — base cluster formation (Section III-A).
//!
//! Each trajectory is scanned point by point. Whenever two consecutive
//! samples lie on different road segments, the junction node(s) between
//! those segments are inserted as splitting points:
//!
//! * contiguous segments contribute the single shared junction `I(ei, ej)`,
//! * non-contiguous segments are repaired with a shortest-path search (the
//!   paper uses the map-matching approach of \[14\]); every junction along
//!   the repair path is inserted, so segments traversed *between* samples
//!   still receive a (two-point) t-fragment.
//!
//! The resulting t-fragments are grouped by road segment into base
//! clusters, which are returned sorted by density (descending) so the
//! first cluster is the dense-core (Definition 4).

use crate::control::PhaseStatus;
use crate::error::NeatError;
use crate::model::BaseCluster;
use neat_exec::Executor;
use neat_rnet::path::TravelMode;
use neat_rnet::{RoadLocation, RoadNetwork, SegmentId, ShortestPathEngine};
use neat_runctl::{Control, Interrupt};
use neat_traj::sanitize::ErrorPolicy;
use neat_traj::{Dataset, SampleArena, TFragment, TrajView, Trajectory, TrajectoryId};

/// Output of Phase 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase1Output {
    /// Base clusters sorted by density descending (ties broken by segment
    /// id ascending, keeping the order deterministic). The first entry is
    /// the dense-core.
    pub base_clusters: Vec<BaseCluster>,
    /// Total number of t-fragments extracted.
    pub fragment_count: usize,
    /// Samples of the trajectories this output covers — a deterministic
    /// work counter: a pure function of the dataset and the interrupt cut
    /// point, identical at every thread count (see the `pr6_frontend`
    /// bench gate).
    pub samples_scanned: usize,
}

impl Phase1Output {
    /// The dense-core — the densest base cluster (Definition 4) — or
    /// `None` for an empty dataset.
    pub fn dense_core(&self) -> Option<&BaseCluster> {
        self.base_clusters.first()
    }
}

/// How many trajectories the pipeline isolated instead of aborting on,
/// under [`ErrorPolicy::Skip`] or [`ErrorPolicy::Repair`]. Always zero
/// under [`ErrorPolicy::Strict`], which errors out instead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Trajectories dropped whole (unextractable even after repair).
    pub skipped: usize,
    /// Trajectories kept after dropping their offending points.
    pub repaired: usize,
    /// Ids of the skipped trajectories, in dataset order.
    pub skipped_ids: Vec<TrajectoryId>,
}

impl ResilienceCounters {
    /// `true` when every trajectory went through untouched.
    pub fn is_clean(&self) -> bool {
        self.skipped == 0 && self.repaired == 0
    }

    /// Folds another counter set into this one (batch accumulation).
    pub fn merge(&mut self, other: &ResilienceCounters) {
        self.skipped += other.skipped;
        self.repaired += other.repaired;
        self.skipped_ids.extend(other.skipped_ids.iter().copied());
    }
}

/// Outcome of extracting one trajectory under a policy. `Failed` only
/// occurs under [`ErrorPolicy::Strict`]; `Interrupted` only with a
/// [`Control`] attached.
enum TrajOutcome {
    Ok(Vec<TFragment>),
    Repaired(Vec<TFragment>),
    Skipped(TrajectoryId),
    Failed(NeatError),
    Interrupted(Interrupt),
}

/// Extracts one trajectory's fragments and validates every fragment's
/// segment against the network.
fn try_extract(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    tr: &Trajectory,
    insert_junctions: bool,
    ctl: Option<&Control>,
) -> Result<Vec<TFragment>, NeatError> {
    let frags = if insert_junctions {
        extract_fragments_ctl(net, engine, tr, ctl)?
    } else {
        neat_traj::fragment::split_into_fragments(tr)
    };
    for f in &frags {
        if net.segment(f.segment).is_err() {
            return Err(NeatError::UnknownSegment(f.segment));
        }
    }
    Ok(frags)
}

fn extract_with_policy(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    tr: &Trajectory,
    insert_junctions: bool,
    policy: ErrorPolicy,
    ctl: Option<&Control>,
) -> TrajOutcome {
    // One cancel point per trajectory, plus the per-settled-node points
    // inside the gap-repair shortest paths.
    if let Some(c) = ctl {
        if let Err(why) = c.check() {
            return TrajOutcome::Interrupted(why);
        }
    }
    match try_extract(net, engine, tr, insert_junctions, ctl) {
        Ok(frags) => TrajOutcome::Ok(frags),
        // Interrupts must bypass the error policy: they are verdicts on
        // the *run*, not on this trajectory's data.
        Err(NeatError::Interrupted(why)) => TrajOutcome::Interrupted(why),
        Err(e) => match policy {
            ErrorPolicy::Strict => TrajOutcome::Failed(e),
            ErrorPolicy::Skip => TrajOutcome::Skipped(tr.id()),
            ErrorPolicy::Repair => {
                // Drop the points the network cannot place; if enough
                // remain to form a trajectory, extract from the rest.
                let kept: Vec<RoadLocation> = tr
                    .points()
                    .iter()
                    .filter(|p| net.segment(p.segment).is_ok())
                    .copied()
                    .collect();
                if kept.len() >= 2 {
                    if let Ok(repaired) = Trajectory::new(tr.id(), kept) {
                        match try_extract(net, engine, &repaired, insert_junctions, ctl) {
                            Ok(frags) => return TrajOutcome::Repaired(frags),
                            Err(NeatError::Interrupted(why)) => {
                                return TrajOutcome::Interrupted(why)
                            }
                            Err(_) => {}
                        }
                    }
                }
                TrajOutcome::Skipped(tr.id())
            }
        },
    }
}

/// Groups fragments by segment into density-sorted base clusters.
///
/// Takes per-chunk `(fragments, segment keys)` lists — the keys mirror
/// `fragments[i].segment.index()` and are built while the chunk is still
/// cache-hot, so the counting pass below scans compact `u32` runs
/// instead of striding through the (much larger) fragment records. The
/// lists' logical concatenation is the fragment stream in dataset order;
/// the scatter is a dense counting sort keyed by segment index — no
/// hashing on the hot path. Within-segment fragment order is the
/// concatenation order, and the final (density desc, segment asc) sort
/// is a total order over clusters (one cluster per segment), so the
/// output is identical to the old `HashMap`-based grouping for any
/// input.
fn group_into_clusters(
    lists: &[(Vec<TFragment>, Vec<u32>)],
    samples_scanned: usize,
) -> Phase1Output {
    let mut fragment_count = 0usize;
    let mut counts: Vec<u32> = Vec::new();
    for (_, keys) in lists {
        fragment_count += keys.len();
        for &k in keys {
            let s = k as usize;
            if s >= counts.len() {
                counts.resize(s + 1, 0);
            }
            counts[s] += 1;
        }
    }
    let max_seg = counts.len();
    // Dense slot map: segment index → bucket position, in segment order.
    let mut slot = vec![u32::MAX; max_seg];
    let mut buckets: Vec<Vec<TFragment>> = Vec::new();
    for (s, &c) in counts.iter().enumerate() {
        if c > 0 {
            slot[s] = buckets.len() as u32; // lint:allow(L4) reason=bucket count is bounded by the u32-backed segment id space
            buckets.push(Vec::with_capacity(c as usize));
        }
    }
    for (frags, keys) in lists {
        for (f, &k) in frags.iter().zip(keys) {
            buckets[slot[k as usize] as usize].push(*f);
        }
    }
    let mut base_clusters: Vec<BaseCluster> = buckets
        .into_iter()
        .map(|frags| {
            let sid = frags[0].segment;
            BaseCluster::from_grouped(sid, frags)
        })
        .collect();
    base_clusters.sort_by(|a, b| {
        b.density()
            .cmp(&a.density())
            .then_with(|| a.segment().cmp(&b.segment()))
    });
    Phase1Output {
        base_clusters,
        fragment_count,
        samples_scanned,
    }
}

/// Runs Phase 1: extracts t-fragments from every trajectory and groups
/// them into density-sorted base clusters.
///
/// When `insert_junctions` is `true`, junction points are inserted between
/// consecutive samples on different segments (with shortest-path gap repair
/// for non-contiguous segments); otherwise trajectories are split purely on
/// segment-id changes.
///
/// # Errors
///
/// Returns [`NeatError::UnknownSegment`] if a sample references a segment
/// that is not part of `net`.
pub fn form_base_clusters(
    net: &RoadNetwork,
    dataset: &Dataset,
    insert_junctions: bool,
) -> Result<Phase1Output, NeatError> {
    form_base_clusters_with_policy(net, dataset, insert_junctions, ErrorPolicy::Strict)
        .map(|(out, _)| out)
}

/// Policy-aware variant of [`form_base_clusters`]: under
/// [`ErrorPolicy::Skip`] or [`ErrorPolicy::Repair`] a trajectory the
/// network cannot place is isolated (dropped or point-repaired, counted
/// in the returned [`ResilienceCounters`]) instead of aborting the run.
///
/// # Errors
///
/// Under [`ErrorPolicy::Strict`], same as [`form_base_clusters`]; the
/// other policies only fail on internal invariant violations (never on
/// bad input data).
pub fn form_base_clusters_with_policy(
    net: &RoadNetwork,
    dataset: &Dataset,
    insert_junctions: bool,
    policy: ErrorPolicy,
) -> Result<(Phase1Output, ResilienceCounters), NeatError> {
    form_base_clusters_arena(net, dataset, insert_junctions, 1, policy)
}

/// Segment keys mirroring `frags[i].segment.index()` — the compact scan
/// input for the grouping counting sort.
fn segment_keys(frags: &[TFragment]) -> Vec<u32> {
    frags
        .iter()
        .map(|f| f.segment.index() as u32) // lint:allow(L4) reason=SegmentId is u32-backed, so index() round-trips losslessly
        .collect()
}

/// Sequential extraction under a [`Control`]: stops at the first
/// interrupted trajectory and reports how far it got. This is the legacy
/// per-trajectory path, kept for controlled runs (the arena fast path
/// has no cancel points).
fn form_base_clusters_seq_ctl(
    net: &RoadNetwork,
    dataset: &Dataset,
    insert_junctions: bool,
    policy: ErrorPolicy,
    ctl: &Control,
) -> Result<(Phase1Output, ResilienceCounters, PhaseStatus), NeatError> {
    let mut engine = ShortestPathEngine::new(net);
    let total = dataset.len();
    let mut counters = ResilienceCounters::default();
    let mut all_frags: Vec<TFragment> = Vec::new();
    let mut done = 0usize;
    let mut samples_scanned = 0usize;
    let mut status = PhaseStatus::Complete;
    for tr in dataset.trajectories() {
        match extract_with_policy(net, &mut engine, tr, insert_junctions, policy, Some(ctl)) {
            TrajOutcome::Ok(frags) => {
                all_frags.extend(frags);
                done += 1;
                samples_scanned += tr.len();
            }
            TrajOutcome::Repaired(frags) => {
                counters.repaired += 1;
                all_frags.extend(frags);
                done += 1;
                samples_scanned += tr.len();
            }
            TrajOutcome::Skipped(id) => {
                counters.skipped += 1;
                counters.skipped_ids.push(id);
                done += 1;
                samples_scanned += tr.len();
            }
            TrajOutcome::Failed(e) => return Err(e),
            TrajOutcome::Interrupted(why) => {
                // Fragments of the interrupted trajectory are discarded
                // whole, so the delivered base clusters cover exactly the
                // `done`-trajectory prefix of the dataset.
                status = PhaseStatus::Partial { done, total, why };
                break;
            }
        }
    }
    let keys = segment_keys(&all_frags);
    Ok((
        group_into_clusters(&[(all_frags, keys)], samples_scanned),
        counters,
        status,
    ))
}

/// Parallel variant of [`form_base_clusters`]: trajectories are split
/// into `threads` chunks extracted concurrently (each worker owns its own
/// shortest-path engine), then grouped exactly as the sequential version.
///
/// The output is bit-identical to [`form_base_clusters`]: chunk results
/// are concatenated in chunk order, so fragment order — and therefore
/// base-cluster contents and density ordering — is unchanged.
///
/// # Errors
///
/// Same as [`form_base_clusters`]; with several failing trajectories the
/// error of the earliest chunk wins.
pub fn form_base_clusters_parallel(
    net: &RoadNetwork,
    dataset: &Dataset,
    insert_junctions: bool,
    threads: usize,
) -> Result<Phase1Output, NeatError> {
    form_base_clusters_parallel_with_policy(
        net,
        dataset,
        insert_junctions,
        threads,
        ErrorPolicy::Strict,
    )
    .map(|(out, _)| out)
}

/// Policy-aware variant of [`form_base_clusters_parallel`]. Workers
/// apply the policy per trajectory; outcomes are folded in dataset
/// order, so the output (clusters *and* counters) is bit-identical to
/// [`form_base_clusters_with_policy`] regardless of thread count.
///
/// # Errors
///
/// Same as [`form_base_clusters_with_policy`]; under
/// [`ErrorPolicy::Strict`] the error of the earliest failing trajectory
/// wins.
pub fn form_base_clusters_parallel_with_policy(
    net: &RoadNetwork,
    dataset: &Dataset,
    insert_junctions: bool,
    threads: usize,
    policy: ErrorPolicy,
) -> Result<(Phase1Output, ResilienceCounters), NeatError> {
    form_base_clusters_arena(net, dataset, insert_junctions, threads, policy)
}

/// Phase 1 under a [`Control`]: cooperative cancel points per trajectory
/// and per settled node inside gap-repair shortest paths. On interrupt
/// the clusters built from the completed trajectory prefix are returned
/// with a [`PhaseStatus::Partial`] report instead of an error.
///
/// The cut point is deterministic for a given budget/arming regardless
/// of thread count: workers run speculatively against recorder controls
/// and their op/settle charges are committed against the real budget in
/// dataset order (see [`neat_exec::Executor::try_map_ctl`]).
///
/// # Errors
///
/// Same as [`form_base_clusters_parallel_with_policy`] — interrupts are
/// reported in the returned status, never as errors.
pub fn form_base_clusters_ctl(
    net: &RoadNetwork,
    dataset: &Dataset,
    insert_junctions: bool,
    threads: usize,
    policy: ErrorPolicy,
    ctl: &Control,
) -> Result<(Phase1Output, ResilienceCounters, PhaseStatus), NeatError> {
    let exec = Executor::new(threads);
    let total = dataset.len();
    if !exec.is_parallel_for(total) {
        return form_base_clusters_seq_ctl(net, dataset, insert_junctions, policy, ctl);
    }
    let trajectories = dataset.trajectories();

    // Each worker owns a private shortest-path engine; outcomes come back
    // in dataset order, so folding below is identical to the sequential
    // loop. Trajectories run speculatively against recorder controls and
    // charge the real budget in dataset order — the interrupt cut point
    // (and therefore the delivered prefix) is bit-identical to a
    // single-threaded run.
    let run = exec.try_map_ctl(
        total,
        ctl,
        || ShortestPathEngine::new(net),
        |i, engine, cc| match extract_with_policy(
            net,
            engine,
            &trajectories[i],
            insert_junctions,
            policy,
            Some(cc),
        ) {
            TrajOutcome::Interrupted(why) => Err(why),
            other => Ok(other),
        },
    );
    let (outcomes, halted) = (run.items, run.halted);

    let mut counters = ResilienceCounters::default();
    let mut all_frags: Vec<TFragment> = Vec::new();
    let mut done = 0usize;
    let mut samples_scanned = 0usize;
    let mut status = PhaseStatus::Complete;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            TrajOutcome::Ok(frags) => {
                all_frags.extend(frags);
                done += 1;
                samples_scanned += trajectories[i].len();
            }
            TrajOutcome::Repaired(frags) => {
                counters.repaired += 1;
                all_frags.extend(frags);
                done += 1;
                samples_scanned += trajectories[i].len();
            }
            TrajOutcome::Skipped(id) => {
                counters.skipped += 1;
                counters.skipped_ids.push(id);
                done += 1;
                samples_scanned += trajectories[i].len();
            }
            TrajOutcome::Failed(e) => return Err(e),
            // Interrupts surface through `halted`; a stray outcome here is
            // folded conservatively as the end of the delivered prefix.
            TrajOutcome::Interrupted(why) => {
                status = PhaseStatus::Partial { done, total, why };
                break;
            }
        }
    }
    if let (PhaseStatus::Complete, Some(why)) = (&status, halted) {
        status = PhaseStatus::Partial { done, total, why };
    }
    let keys = segment_keys(&all_frags);
    Ok((
        group_into_clusters(&[(all_frags, keys)], samples_scanned),
        counters,
        status,
    ))
}

/// Outcome of extracting one trajectory view on the arena fast path.
/// Fragments go straight into the caller's shared buffer, so the
/// outcome carries bookkeeping only.
enum SlotOutcome {
    Ok,
    Repaired,
    Skipped(TrajectoryId),
    Failed(NeatError),
}

/// Appends one view's fragments to `out`, validating every sample's
/// segment against the network up front. On error, `out` is left with
/// partial fragments appended — the caller truncates back to its mark.
///
/// The flat pre-scan reports the same error as the legacy per-fragment
/// post-validation: the first invalid sample's segment. (Fragments are
/// emitted in sample order, so the first invalid fragment is the run of
/// the first invalid sample; and when junction insertion trips first,
/// `junction_chain` fails on the transition *into* that same sample.
/// Pass-through fragments need no check — their segments come from the
/// network's own router.)
fn extract_view_into(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    view: &TrajView<'_>,
    insert_junctions: bool,
    out: &mut Vec<TFragment>,
) -> Result<(), NeatError> {
    let max = net.segment_count();
    if let Some(&bad) = view.segs().iter().find(|&&s| s as usize >= max) {
        // lint:allow(L4) reason=widening the u32 raw segment index back to usize is lossless
        return Err(NeatError::UnknownSegment(SegmentId::new(bad as usize)));
    }
    if insert_junctions {
        extract_fragments_view(net, engine, view, out)?;
    } else {
        view.split_into_fragments_into(out);
    }
    Ok(())
}

/// Arena-path twin of [`extract_with_policy`]: extracts one trajectory
/// view under an error policy, appending fragments to the shared chunk
/// buffer and rolling the buffer back on any error.
fn extract_view_with_policy(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    view: &TrajView<'_>,
    insert_junctions: bool,
    policy: ErrorPolicy,
    out: &mut Vec<TFragment>,
) -> SlotOutcome {
    let mark = out.len();
    match extract_view_into(net, engine, view, insert_junctions, out) {
        Ok(()) => SlotOutcome::Ok,
        Err(e) => {
            out.truncate(mark);
            match policy {
                ErrorPolicy::Strict => SlotOutcome::Failed(e),
                ErrorPolicy::Skip => SlotOutcome::Skipped(view.id),
                ErrorPolicy::Repair => {
                    // Drop the points the network cannot place; if enough
                    // remain to form a trajectory, extract from the rest.
                    let kept: Vec<RoadLocation> = (0..view.len())
                        .map(|j| view.location(j))
                        .filter(|p| net.segment(p.segment).is_ok())
                        .collect();
                    if kept.len() >= 2 {
                        if let Ok(repaired) = Trajectory::new(view.id, kept) {
                            if let Ok(frags) =
                                try_extract(net, engine, &repaired, insert_junctions, None)
                            {
                                out.extend(frags);
                                return SlotOutcome::Repaired;
                            }
                        }
                    }
                    SlotOutcome::Skipped(view.id)
                }
            }
        }
    }
}

/// The arena fast path: the whole dataset is flattened into a
/// [`SampleArena`] and scanned chunk by chunk via
/// [`Executor::map_chunks`]. Each worker appends fragments for the
/// trajectories of its chunk into one contiguous per-chunk buffer —
/// no per-trajectory `Vec` allocations — and chunk boundaries depend
/// only on the chunk size, so the folded fragment stream (and every
/// downstream cluster) is bit-identical at any thread count.
fn form_base_clusters_arena(
    net: &RoadNetwork,
    dataset: &Dataset,
    insert_junctions: bool,
    threads: usize,
    policy: ErrorPolicy,
) -> Result<(Phase1Output, ResilienceCounters), NeatError> {
    let arena = SampleArena::from_dataset(dataset);
    let exec = Executor::new(threads);
    let n = arena.len();
    let chunks = exec.map_chunks(
        n,
        || ShortestPathEngine::new(net),
        |range, engine| {
            // Pre-size from the chunk's sample count: fragments rarely
            // exceed half the samples, so this usually avoids every
            // growth-copy of the (large) fragment buffer.
            let mut frags: Vec<TFragment> = Vec::with_capacity(arena.samples_in(range.clone()) / 2);
            let mut meta: Vec<SlotOutcome> = Vec::with_capacity(range.len());
            for i in range {
                let view = arena.view(i);
                let outcome = extract_view_with_policy(
                    net,
                    engine,
                    &view,
                    insert_junctions,
                    policy,
                    &mut frags,
                );
                let failed = matches!(outcome, SlotOutcome::Failed(_));
                meta.push(outcome);
                if failed {
                    // Strict mode aborts the run; the fold below surfaces
                    // the earliest failure in dataset order.
                    break;
                }
            }
            // Mirror the segment keys while the chunk is cache-hot: the
            // grouping counting sort then scans compact u32 runs.
            let keys = segment_keys(&frags);
            (frags, keys, meta)
        },
    );

    let mut counters = ResilienceCounters::default();
    let mut samples_scanned = 0usize;
    let mut frag_lists: Vec<(Vec<TFragment>, Vec<u32>)> = Vec::with_capacity(chunks.len());
    let mut idx = 0usize;
    for (frags, keys, meta) in chunks {
        for outcome in meta {
            match outcome {
                SlotOutcome::Ok => {}
                SlotOutcome::Repaired => counters.repaired += 1,
                SlotOutcome::Skipped(id) => {
                    counters.skipped += 1;
                    counters.skipped_ids.push(id);
                }
                SlotOutcome::Failed(e) => return Err(e),
            }
            samples_scanned += arena.view(idx).len();
            idx += 1;
        }
        frag_lists.push((frags, keys));
    }
    Ok((group_into_clusters(&frag_lists, samples_scanned), counters))
}

/// Extracts the t-fragments of one trajectory, inserting junction points at
/// segment transitions.
///
/// # Errors
///
/// Returns [`NeatError::UnknownSegment`] for samples on unknown segments.
pub fn extract_fragments_with_junctions(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    tr: &Trajectory,
) -> Result<Vec<TFragment>, NeatError> {
    extract_fragments_ctl(net, engine, tr, None)
}

/// [`extract_fragments_with_junctions`] under an optional [`Control`]:
/// the gap-repair shortest paths become interruptible, surfacing
/// [`NeatError::Interrupted`] for the caller to convert into an outcome.
fn extract_fragments_ctl(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    tr: &Trajectory,
    ctl: Option<&Control>,
) -> Result<Vec<TFragment>, NeatError> {
    let pts = tr.points();
    let mut out: Vec<TFragment> = Vec::new();
    // Current open fragment.
    let mut cur_first: RoadLocation = pts[0];
    let mut cur_last: RoadLocation = pts[0];
    let mut cur_count: usize = 1;

    let close = |out: &mut Vec<TFragment>, first: RoadLocation, last: RoadLocation, count| {
        out.push(TFragment {
            trajectory: tr.id(),
            segment: first.segment,
            first,
            last,
            point_count: count,
        });
    };

    for q in &pts[1..] {
        let p = cur_last;
        if q.segment == p.segment {
            cur_last = *q;
            cur_count += 1;
            continue;
        }
        // Segment transition: recover the junction chain between p and q.
        match junction_chain(net, engine, p, *q, ctl)? {
            Some(Chain::Contiguous(jpos, jt)) => {
                // Close the current fragment at the shared junction and
                // reopen on q's segment from that same junction.
                cur_last = RoadLocation::new(p.segment, jpos, jt);
                cur_count += 1;
                close(&mut out, cur_first, cur_last, cur_count);
                cur_first = RoadLocation::new(q.segment, jpos, jt);
                cur_last = *q;
                cur_count = 2;
            }
            Some(Chain::Repaired(junctions, mid_segments, times)) => {
                // Close the current fragment at the first junction.
                let j0 = RoadLocation::new(p.segment, junctions[0], times[0]);
                cur_last = j0;
                cur_count += 1;
                close(&mut out, cur_first, cur_last, cur_count);
                // Pass-through fragments for intermediate segments.
                for (i, &mid) in mid_segments.iter().enumerate() {
                    let a = RoadLocation::new(mid, junctions[i], times[i]);
                    let b = RoadLocation::new(mid, junctions[i + 1], times[i + 1]);
                    close(&mut out, a, b, 2);
                }
                // Open the next fragment on q's segment at the last junction.
                let jk = RoadLocation::new(
                    q.segment,
                    *junctions.last().expect("chain non-empty"), // lint:allow(L1) reason=the chain loop pushes at least one junction/time first
                    *times.last().expect("chain non-empty"),
                );
                cur_first = jk;
                cur_last = *q;
                cur_count = 2;
            }
            None => {
                // Unreachable gap: split without junction insertion.
                close(&mut out, cur_first, cur_last, cur_count);
                cur_first = *q;
                cur_last = *q;
                cur_count = 1;
            }
        }
    }
    close(&mut out, cur_first, cur_last, cur_count);
    Ok(out)
}

/// Arena twin of [`extract_fragments_ctl`] (always uncontrolled): scans
/// the view's dense `&[u32]` segment run for boundaries and only
/// reconstructs `RoadLocation`s at run edges. Produces the exact same
/// fragment stream: sample coordinates round-trip bit-identically
/// through the arena, junction chains are computed from the same `p`/`q`
/// pairs in the same order, and the point-count arithmetic below mirrors
/// the legacy `cur_count` bookkeeping
/// (`(j - run_start) + open_extra [+ 1 at a junction close]`).
fn extract_fragments_view(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    view: &TrajView<'_>,
    out: &mut Vec<TFragment>,
) -> Result<(), NeatError> {
    let segs = view.segs();
    let n = segs.len();
    let id = view.id;
    // Current open fragment: starts at `open_first`, covers the samples
    // `run_start..j` plus `open_extra` inserted junction points.
    let mut run_start = 0usize;
    let mut open_first = view.location(0);
    let mut open_extra = 0usize;
    let mut j = 1;
    loop {
        if j < n && segs[j] == segs[j - 1] {
            j += 1;
            continue;
        }
        let p = view.location(j - 1);
        if j == n {
            out.push(TFragment {
                trajectory: id,
                segment: open_first.segment,
                first: open_first,
                last: p,
                point_count: (j - run_start) + open_extra,
            });
            return Ok(());
        }
        // Segment transition: recover the junction chain between p and q.
        let q = view.location(j);
        match junction_chain(net, engine, p, q, None)? {
            Some(Chain::Contiguous(jpos, jt)) => {
                // Close the current fragment at the shared junction and
                // reopen on q's segment from that same junction.
                out.push(TFragment {
                    trajectory: id,
                    segment: open_first.segment,
                    first: open_first,
                    last: RoadLocation::new(p.segment, jpos, jt),
                    point_count: (j - run_start) + open_extra + 1,
                });
                open_first = RoadLocation::new(q.segment, jpos, jt);
                open_extra = 1;
            }
            Some(Chain::Repaired(junctions, mid_segments, times)) => {
                // Close the current fragment at the first junction.
                let j0 = RoadLocation::new(p.segment, junctions[0], times[0]);
                out.push(TFragment {
                    trajectory: id,
                    segment: open_first.segment,
                    first: open_first,
                    last: j0,
                    point_count: (j - run_start) + open_extra + 1,
                });
                // Pass-through fragments for intermediate segments.
                for (i, &mid) in mid_segments.iter().enumerate() {
                    out.push(TFragment {
                        trajectory: id,
                        segment: mid,
                        first: RoadLocation::new(mid, junctions[i], times[i]),
                        last: RoadLocation::new(mid, junctions[i + 1], times[i + 1]),
                        point_count: 2,
                    });
                }
                // Open the next fragment on q's segment at the last junction.
                open_first = RoadLocation::new(
                    q.segment,
                    *junctions.last().expect("chain non-empty"), // lint:allow(L1) reason=the chain loop pushes at least one junction/time first
                    *times.last().expect("chain non-empty"), // lint:allow(L1) reason=the chain loop pushes at least one junction/time first
                );
                open_extra = 1;
            }
            None => {
                // Unreachable gap: split without junction insertion.
                out.push(TFragment {
                    trajectory: id,
                    segment: open_first.segment,
                    first: open_first,
                    last: p,
                    point_count: (j - run_start) + open_extra,
                });
                open_first = q;
                open_extra = 0;
            }
        }
        run_start = j;
        j += 1;
    }
}

/// Junction chain travelled between two consecutive samples. The
/// contiguous case — the overwhelmingly common one — carries no heap
/// allocations, keeping the phase-1 transition loop malloc-free.
enum Chain {
    /// Contiguous segments: the single shared junction and its
    /// interpolated crossing time.
    Contiguous(neat_rnet::Point, f64),
    /// Gap repair: the traversed junctions `j0..jk`, the segments
    /// between them (`len = k`), and interpolated timestamps.
    Repaired(Vec<neat_rnet::Point>, Vec<SegmentId>, Vec<f64>),
}

/// Computes the junction chain travelled between consecutive samples `p`
/// (on segment `ep`) and `q` (on segment `eq ≠ ep`).
///
/// Returns the junction positions, the intermediate segments between them
/// (none when the segments are contiguous) and interpolated timestamps —
/// or `None` when no path connects the two segments.
fn junction_chain(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    p: RoadLocation,
    q: RoadLocation,
    ctl: Option<&Control>,
) -> Result<Option<Chain>, NeatError> {
    let ep = net
        .segment(p.segment)
        .map_err(|_| NeatError::UnknownSegment(p.segment))?;
    let eq = net
        .segment(q.segment)
        .map_err(|_| NeatError::UnknownSegment(q.segment))?;

    if let Some(j) = net.intersection_of(ep.id, eq.id) {
        // Contiguous: one shared junction.
        let jpos = net.position(j);
        let d1 = p.position.distance(jpos);
        let d2 = jpos.distance(q.position);
        let total = (d1 + d2).max(1e-9);
        let t = p.time + (q.time - p.time) * d1 / total;
        return Ok(Some(Chain::Contiguous(jpos, t)));
    }

    // Non-contiguous: choose the endpoint pair minimising the detour and
    // take the shortest path between them (the map-matching repair of [14]).
    let mut best: Option<(f64, neat_rnet::path::Route, f64, f64)> = None;
    for u in [ep.a, ep.b] {
        for v in [eq.a, eq.b] {
            let d_pu = p.position.distance(net.position(u));
            let d_vq = net.position(v).distance(q.position);
            let found = match ctl {
                Some(c) => engine
                    .route_ctl(net, u, v, TravelMode::Directed, c)
                    .map_err(NeatError::Interrupted)?,
                None => engine.route(net, u, v, TravelMode::Directed),
            };
            if let Some(route) = found {
                let cost = d_pu + route.length + d_vq;
                if best.as_ref().is_none_or(|(c, ..)| cost < *c) {
                    best = Some((cost, route, d_pu, d_vq));
                }
            }
        }
    }
    let (cost, route, d_pu, _) = match best {
        Some(b) => b,
        None => return Ok(None),
    };
    // Interpolate times along the travelled distance.
    let span = q.time - p.time;
    let total = cost.max(1e-9);
    let mut junctions = Vec::with_capacity(route.nodes.len());
    let mut times = Vec::with_capacity(route.nodes.len());
    let mut travelled = d_pu;
    let mut prev: Option<neat_rnet::NodeId> = None;
    for (i, &n) in route.nodes.iter().enumerate() {
        if let Some(pn) = prev {
            let seg = net
                .segment(route.segments[i - 1])
                .expect("route segment exists"); // lint:allow(L1) reason=route segments come from this network's own router
            debug_assert!(seg.has_endpoint(pn));
            travelled += seg.length;
        }
        junctions.push(net.position(n));
        times.push(p.time + span * (travelled / total));
        prev = Some(n);
    }
    Ok(Some(Chain::Repaired(junctions, route.segments, times)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::Point;
    use neat_traj::TrajectoryId;

    fn loc(seg: usize, x: f64, t: f64) -> RoadLocation {
        RoadLocation::new(SegmentId::new(seg), Point::new(x, 0.0), t)
    }

    fn traj(id: u64, pts: Vec<RoadLocation>) -> Trajectory {
        Trajectory::new(TrajectoryId::new(id), pts).unwrap()
    }

    /// Chain network: n0 -s0- n1 -s1- n2 -s2- n3 -s3- n4, 100 m apart.
    fn net5() -> RoadNetwork {
        chain_network(5, 100.0, 10.0)
    }

    #[test]
    fn contiguous_transition_inserts_junction() {
        let net = net5();
        let mut eng = ShortestPathEngine::new(&net);
        // Sample on s0 at x=50, then on s1 at x=150: junction n1 at x=100.
        let tr = traj(1, vec![loc(0, 50.0, 0.0), loc(1, 150.0, 10.0)]);
        let frags = extract_fragments_with_junctions(&net, &mut eng, &tr).unwrap();
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].segment, SegmentId::new(0));
        // Fragment 0 ends at the junction (x=100), halfway in time.
        assert!((frags[0].last.position.x - 100.0).abs() < 1e-9);
        assert!((frags[0].last.time - 5.0).abs() < 1e-9);
        // Fragment 1 starts at the junction.
        assert!((frags[1].first.position.x - 100.0).abs() < 1e-9);
        assert_eq!(frags[1].segment, SegmentId::new(1));
        assert_eq!(frags[1].last.time, 10.0);
    }

    #[test]
    fn gap_repair_creates_passthrough_fragments() {
        let net = net5();
        let mut eng = ShortestPathEngine::new(&net);
        // Sample on s0 then s3: s1 and s2 traversed between samples.
        let tr = traj(1, vec![loc(0, 50.0, 0.0), loc(3, 350.0, 30.0)]);
        let frags = extract_fragments_with_junctions(&net, &mut eng, &tr).unwrap();
        let segs: Vec<usize> = frags.iter().map(|f| f.segment.index()).collect();
        assert_eq!(segs, vec![0, 1, 2, 3]);
        // Pass-through fragments carry the inserted junction endpoints.
        assert_eq!(frags[1].point_count, 2);
        assert!((frags[1].first.position.x - 100.0).abs() < 1e-9);
        assert!((frags[1].last.position.x - 200.0).abs() < 1e-9);
        // Times increase monotonically across the chain.
        for w in frags.windows(2) {
            assert!(w[0].last.time <= w[1].first.time + 1e-9);
        }
        assert!(frags[3].last.time <= 30.0 + 1e-9);
    }

    #[test]
    fn base_clusters_sorted_by_density() {
        let net = net5();
        let mut data = Dataset::new("d");
        // 3 trajectories over s0→s1; 1 over s2→s3.
        for id in 0..3 {
            data.push(traj(id, vec![loc(0, 50.0, 0.0), loc(1, 150.0, 10.0)]));
        }
        data.push(traj(9, vec![loc(2, 250.0, 0.0), loc(3, 350.0, 10.0)]));
        let out = form_base_clusters(&net, &data, true).unwrap();
        assert_eq!(out.base_clusters.len(), 4);
        let dc = out.dense_core().unwrap();
        assert_eq!(dc.density(), 3);
        // s0 and s1 both have density 3; tie broken by segment id.
        assert_eq!(dc.segment(), SegmentId::new(0));
        for w in out.base_clusters.windows(2) {
            assert!(w[0].density() >= w[1].density());
        }
    }

    #[test]
    fn fragment_counts_accumulate() {
        let net = net5();
        let mut data = Dataset::new("d");
        data.push(traj(0, vec![loc(0, 10.0, 0.0), loc(0, 90.0, 9.0)]));
        data.push(traj(1, vec![loc(0, 10.0, 0.0), loc(1, 150.0, 20.0)]));
        let out = form_base_clusters(&net, &data, true).unwrap();
        assert_eq!(out.fragment_count, 3);
        let total: usize = out.base_clusters.iter().map(BaseCluster::density).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn unknown_segment_is_reported() {
        let net = net5();
        let mut data = Dataset::new("d");
        data.push(traj(0, vec![loc(77, 0.0, 0.0), loc(77, 1.0, 1.0)]));
        let err = form_base_clusters(&net, &data, true).unwrap_err();
        assert!(matches!(err, NeatError::UnknownSegment(s) if s.index() == 77));
        // Also without junction insertion.
        let err = form_base_clusters(&net, &data, false).unwrap_err();
        assert!(matches!(err, NeatError::UnknownSegment(_)));
    }

    #[test]
    fn empty_dataset_gives_empty_output() {
        let net = net5();
        let out = form_base_clusters(&net, &Dataset::new("e"), true).unwrap();
        assert!(out.base_clusters.is_empty());
        assert!(out.dense_core().is_none());
        assert_eq!(out.fragment_count, 0);
    }

    #[test]
    fn disconnected_gap_splits_without_insertion() {
        // Two disjoint chains; trajectory jumps between them.
        let mut b = neat_rnet::RoadNetworkBuilder::new();
        let a0 = b.add_node(Point::new(0.0, 0.0));
        let a1 = b.add_node(Point::new(100.0, 0.0));
        let c0 = b.add_node(Point::new(0.0, 5000.0));
        let c1 = b.add_node(Point::new(100.0, 5000.0));
        let s0 = b.add_segment(a0, a1, 10.0).unwrap();
        let s1 = b.add_segment(c0, c1, 10.0).unwrap();
        let net = b.build().unwrap();
        let mut eng = ShortestPathEngine::new(&net);
        let tr = traj(
            1,
            vec![
                RoadLocation::new(s0, Point::new(50.0, 0.0), 0.0),
                RoadLocation::new(s1, Point::new(50.0, 5000.0), 100.0),
            ],
        );
        let frags = extract_fragments_with_junctions(&net, &mut eng, &tr).unwrap();
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].point_count, 1);
        assert_eq!(frags[1].point_count, 1);
    }

    #[test]
    fn no_insertion_mode_matches_plain_split() {
        let net = net5();
        let mut data = Dataset::new("d");
        data.push(traj(0, vec![loc(0, 10.0, 0.0), loc(1, 150.0, 10.0)]));
        let out = form_base_clusters(&net, &data, false).unwrap();
        assert_eq!(out.fragment_count, 2);
        // Without junction insertion the first fragment ends at the sample.
        let s0_cluster = out
            .base_clusters
            .iter()
            .find(|c| c.segment() == SegmentId::new(0))
            .unwrap();
        assert!((s0_cluster.fragments()[0].last.position.x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let net = net5();
        let mut data = Dataset::new("par");
        for id in 0..37 {
            data.push(traj(
                id,
                vec![
                    loc((id % 3) as usize, (id % 3) as f64 * 100.0 + 20.0, 0.0),
                    loc(
                        ((id % 3) + 1) as usize,
                        ((id % 3) + 1) as f64 * 100.0 + 30.0,
                        15.0,
                    ),
                ],
            ));
        }
        let seq = form_base_clusters(&net, &data, true).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let par = form_base_clusters_parallel(&net, &data, true, threads).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_propagates_errors() {
        let net = net5();
        let mut data = Dataset::new("err");
        for id in 0..8 {
            data.push(traj(id, vec![loc(0, 10.0, 0.0), loc(0, 20.0, 5.0)]));
        }
        data.push(traj(99, vec![loc(77, 0.0, 0.0), loc(77, 1.0, 1.0)]));
        let err = form_base_clusters_parallel(&net, &data, true, 4).unwrap_err();
        assert!(matches!(err, NeatError::UnknownSegment(_)));
    }

    /// Mixed dataset: 3 clean trajectories, one entirely on an unknown
    /// segment, one with a single unknown-segment point amid good ones.
    fn mixed_dataset() -> Dataset {
        let mut data = Dataset::new("mixed");
        for id in 0..3 {
            data.push(traj(id, vec![loc(0, 50.0, 0.0), loc(1, 150.0, 10.0)]));
        }
        data.push(traj(90, vec![loc(77, 0.0, 0.0), loc(77, 1.0, 1.0)]));
        data.push(traj(
            91,
            vec![loc(0, 40.0, 0.0), loc(88, 999.0, 5.0), loc(1, 160.0, 12.0)],
        ));
        data
    }

    #[test]
    fn skip_policy_isolates_bad_trajectories() {
        let net = net5();
        let data = mixed_dataset();
        let (out, counters) =
            form_base_clusters_with_policy(&net, &data, true, ErrorPolicy::Skip).unwrap();
        assert_eq!(counters.skipped, 2);
        assert_eq!(counters.repaired, 0);
        assert_eq!(
            counters.skipped_ids,
            vec![TrajectoryId::new(90), TrajectoryId::new(91)]
        );
        // The clean trajectories still cluster.
        assert_eq!(out.dense_core().unwrap().density(), 3);
    }

    #[test]
    fn repair_policy_drops_unknown_points_and_keeps_the_rest() {
        let net = net5();
        let data = mixed_dataset();
        let (out, counters) =
            form_base_clusters_with_policy(&net, &data, true, ErrorPolicy::Repair).unwrap();
        // 91 loses its unknown point but keeps 2 placeable ones; 90 has
        // nothing left and is skipped.
        assert_eq!(counters.repaired, 1);
        assert_eq!(counters.skipped, 1);
        assert_eq!(counters.skipped_ids, vec![TrajectoryId::new(90)]);
        // 91's surviving points join the s0/s1 clusters: density 4.
        assert_eq!(out.dense_core().unwrap().density(), 4);
    }

    #[test]
    fn strict_policy_matches_legacy_failfast() {
        let net = net5();
        let data = mixed_dataset();
        let err =
            form_base_clusters_with_policy(&net, &data, true, ErrorPolicy::Strict).unwrap_err();
        assert!(matches!(err, NeatError::UnknownSegment(_)));
    }

    #[test]
    fn parallel_policy_matches_sequential_policy() {
        let net = net5();
        let mut data = Dataset::new("par-policy");
        for id in 0..30 {
            data.push(traj(id, vec![loc(0, 50.0, 0.0), loc(1, 150.0, 10.0)]));
        }
        data.push(traj(90, vec![loc(77, 0.0, 0.0), loc(77, 1.0, 1.0)]));
        data.push(traj(
            91,
            vec![loc(0, 40.0, 0.0), loc(88, 999.0, 5.0), loc(1, 160.0, 12.0)],
        ));
        for policy in [ErrorPolicy::Skip, ErrorPolicy::Repair] {
            let seq = form_base_clusters_with_policy(&net, &data, true, policy).unwrap();
            for threads in [2usize, 4, 8] {
                let par =
                    form_base_clusters_parallel_with_policy(&net, &data, true, threads, policy)
                        .unwrap();
                assert_eq!(par, seq, "{policy:?} threads={threads}");
            }
        }
    }

    /// The arena fast path must reproduce the legacy per-trajectory path
    /// exactly — clusters, counters, and the samples_scanned counter —
    /// for every policy, junction mode, and thread count.
    #[test]
    fn arena_path_matches_legacy_path() {
        let net = net5();
        let mut data = mixed_dataset();
        // Widen the fixture: multi-fragment trajectories, gap repair, and
        // enough rows to cross several executor chunks.
        for id in 100..170 {
            let s = (id % 3) as usize;
            data.push(traj(
                id,
                vec![
                    loc(s, s as f64 * 100.0 + 20.0, 0.0),
                    loc(s, s as f64 * 100.0 + 40.0, 5.0),
                    loc(s + 1, (s + 1) as f64 * 100.0 + 30.0, 15.0),
                    loc(3, 350.0, 40.0),
                ],
            ));
        }
        for insert_junctions in [false, true] {
            for policy in [ErrorPolicy::Skip, ErrorPolicy::Repair] {
                let ctl = Control::unlimited();
                let (legacy, legacy_counters, status) =
                    form_base_clusters_seq_ctl(&net, &data, insert_junctions, policy, &ctl)
                        .unwrap();
                assert_eq!(status, PhaseStatus::Complete);
                for threads in [1usize, 2, 8] {
                    let (arena, counters) =
                        form_base_clusters_arena(&net, &data, insert_junctions, threads, policy)
                            .unwrap();
                    assert_eq!(
                        arena, legacy,
                        "junctions={insert_junctions} {policy:?} threads={threads}"
                    );
                    assert_eq!(counters, legacy_counters);
                }
            }
        }
    }

    #[test]
    fn samples_scanned_counts_every_processed_sample() {
        let net = net5();
        let data = mixed_dataset();
        // 3 clean trajectories × 2 samples + one skipped pair + one
        // 3-sample trajectory: every policy-processed sample counts.
        let (out, _) =
            form_base_clusters_with_policy(&net, &data, true, ErrorPolicy::Skip).unwrap();
        assert_eq!(out.samples_scanned, 3 * 2 + 2 + 3);
    }

    #[test]
    fn direction_preserved_in_fragment_order() {
        let net = net5();
        let mut eng = ShortestPathEngine::new(&net);
        // Travel backwards: s3 → s0.
        let tr = traj(1, vec![loc(3, 350.0, 0.0), loc(0, 50.0, 30.0)]);
        let frags = extract_fragments_with_junctions(&net, &mut eng, &tr).unwrap();
        let segs: Vec<usize> = frags.iter().map(|f| f.segment.index()).collect();
        assert_eq!(segs, vec![3, 2, 1, 0]);
    }
}
