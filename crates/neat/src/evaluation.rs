//! External cluster-quality evaluation against ground truth.
//!
//! The paper claims NEAT is "highly accurate" by visual comparison; our
//! simulator knows the ground truth (which trajectories genuinely share a
//! route), so accuracy can be quantified. This module scores any
//! trajectory-level clustering against a reference labelling with the
//! standard pairwise measures — precision, recall, F1, Rand index and
//! Adjusted Rand Index — treating unassigned (noise) trajectories as
//! singleton clusters.

use crate::model::TrajectoryCluster;
use neat_traj::TrajectoryId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Pairwise agreement scores between a predicted clustering and the
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PairwiseScores {
    /// Of the pairs predicted together, the fraction truly together.
    pub precision: f64,
    /// Of the pairs truly together, the fraction predicted together.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Fraction of all pairs classified consistently (Rand index).
    pub rand_index: f64,
    /// Chance-corrected Rand index (ARI; 1 = perfect, ≈0 = random).
    pub adjusted_rand: f64,
    /// Number of items scored.
    pub items: usize,
}

/// Scores a predicted clustering against ground-truth labels.
///
/// `truth` maps every item to its true class; `predicted` maps items to a
/// predicted cluster (items absent from `predicted` count as singletons —
/// the usual treatment of noise). Items missing from `truth` are ignored.
///
/// ```
/// use neat_core::evaluation::pairwise_scores;
/// use std::collections::HashMap;
///
/// let truth: HashMap<u32, usize> = [(1, 0), (2, 0), (3, 1), (4, 1)].into();
/// let pred: HashMap<u32, usize> = [(1, 9), (2, 9), (3, 5), (4, 5)].into();
/// let s = pairwise_scores(&truth, &pred);
/// assert_eq!(s.f1, 1.0); // label names don't matter, only co-membership
/// ```
pub fn pairwise_scores<I: std::hash::Hash + Eq + Copy + Ord>(
    truth: &HashMap<I, usize>,
    predicted: &HashMap<I, usize>,
) -> PairwiseScores {
    let mut items: Vec<I> = truth.keys().copied().collect();
    items.sort();
    let n = items.len();
    if n < 2 {
        return PairwiseScores {
            items: n,
            ..PairwiseScores::default()
        };
    }

    // Contingency table between truth classes and predicted clusters
    // (noise items become unique singleton cluster ids).
    let mut next_singleton = usize::MAX;
    let mut pred_of = |i: &I| -> usize {
        match predicted.get(i) {
            Some(&c) => c,
            None => {
                next_singleton -= 1;
                next_singleton + 1
            }
        }
    };
    let mut table: HashMap<(usize, usize), u64> = HashMap::new();
    let mut truth_sizes: HashMap<usize, u64> = HashMap::new();
    let mut pred_sizes: HashMap<usize, u64> = HashMap::new();
    for i in &items {
        let t = truth[i];
        let p = pred_of(i);
        *table.entry((t, p)).or_default() += 1;
        *truth_sizes.entry(t).or_default() += 1;
        *pred_sizes.entry(p).or_default() += 1;
    }

    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let together_both: f64 = table.values().map(|&c| choose2(c)).sum();
    let together_truth: f64 = truth_sizes.values().map(|&c| choose2(c)).sum();
    let together_pred: f64 = pred_sizes.values().map(|&c| choose2(c)).sum();
    let total_pairs = choose2(n as u64);

    let precision = if together_pred > 0.0 {
        together_both / together_pred
    } else {
        0.0
    };
    let recall = if together_truth > 0.0 {
        together_both / together_truth
    } else {
        0.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    // Rand index: (TP + TN) / all pairs.
    let tp = together_both;
    let fp = together_pred - together_both;
    let fn_ = together_truth - together_both;
    let tn = total_pairs - tp - fp - fn_;
    let rand_index = (tp + tn) / total_pairs;
    // ARI.
    let expected = together_truth * together_pred / total_pairs;
    let max_index = 0.5 * (together_truth + together_pred);
    let adjusted_rand = if (max_index - expected).abs() < 1e-12 {
        // Degenerate (e.g. everything in one class on both sides): the
        // clusterings agree perfectly by construction.
        1.0
    } else {
        (together_both - expected) / (max_index - expected)
    };

    PairwiseScores {
        precision,
        recall,
        f1,
        rand_index,
        adjusted_rand,
        items: n,
    }
}

/// Assigns each trajectory to one predicted cluster: the final cluster in
/// which it has the most t-fragments (ties towards the earlier cluster).
/// Trajectories in no cluster are left out (noise).
pub fn assign_trajectories(clusters: &[TrajectoryCluster]) -> HashMap<TrajectoryId, usize> {
    let mut votes: HashMap<TrajectoryId, HashMap<usize, usize>> = HashMap::new();
    for (ci, cluster) in clusters.iter().enumerate() {
        for flow in cluster.flows() {
            for member in flow.members() {
                for frag in member.fragments() {
                    *votes
                        .entry(frag.trajectory)
                        .or_default()
                        .entry(ci)
                        .or_default() += 1;
                }
            }
        }
    }
    votes
        .into_iter()
        .map(|(tr, by_cluster)| {
            let best = by_cluster
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .expect("at least one vote"); // lint:allow(L1) reason=a votes entry is only created when its first vote is inserted
            (tr, best.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(u64, usize)]) -> HashMap<u64, usize> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let truth = map(&[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let s = pairwise_scores(&truth, &truth);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.rand_index, 1.0);
        assert_eq!(s.adjusted_rand, 1.0);
        assert_eq!(s.items, 4);
    }

    #[test]
    fn label_permutation_does_not_matter() {
        let truth = map(&[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let pred = map(&[(1, 7), (2, 7), (3, 3), (4, 3)]);
        let s = pairwise_scores(&truth, &pred);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.adjusted_rand, 1.0);
    }

    #[test]
    fn everything_in_one_cluster_has_full_recall_low_precision() {
        let truth = map(&[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let pred = map(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let s = pairwise_scores(&truth, &pred);
        assert_eq!(s.recall, 1.0);
        // 2 true-together pairs out of 6 predicted-together pairs.
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-9);
        assert!(s.adjusted_rand < 0.2);
    }

    #[test]
    fn all_noise_means_no_predicted_pairs() {
        let truth = map(&[(1, 0), (2, 0), (3, 1)]);
        let pred: HashMap<u64, usize> = HashMap::new();
        let s = pairwise_scores(&truth, &pred);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
        // TN-heavy Rand index stays below 1 because the true pair is
        // split.
        assert!(s.rand_index < 1.0);
    }

    #[test]
    fn tiny_inputs_are_degenerate() {
        let s = pairwise_scores(&map(&[(1, 0)]), &map(&[(1, 0)]));
        assert_eq!(s.items, 1);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn split_cluster_loses_recall_only() {
        let truth = map(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let pred = map(&[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let s = pairwise_scores(&truth, &pred);
        assert_eq!(s.precision, 1.0);
        // 2 of 6 true pairs preserved.
        assert!((s.recall - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn assignment_resolves_multi_cluster_trajectories() {
        use crate::model::{BaseCluster, FlowCluster};
        use neat_rnet::netgen::chain_network;
        use neat_rnet::{Point, RoadLocation, SegmentId};
        use neat_traj::TFragment;

        let net = chain_network(6, 100.0, 10.0);
        let frag = |tr: u64, seg: usize| {
            let loc = RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), 0.0);
            TFragment {
                trajectory: TrajectoryId::new(tr),
                segment: SegmentId::new(seg),
                first: loc,
                last: loc,
                point_count: 2,
            }
        };
        // Trajectory 1 has 2 fragments in cluster 0 and 1 in cluster 1.
        let c0 = TrajectoryCluster::new(vec![FlowCluster::from_base(
            &net,
            BaseCluster::new(SegmentId::new(0), vec![frag(1, 0), frag(1, 0), frag(2, 0)]).unwrap(),
        )
        .unwrap()]);
        let c1 = TrajectoryCluster::new(vec![FlowCluster::from_base(
            &net,
            BaseCluster::new(SegmentId::new(3), vec![frag(1, 3)]).unwrap(),
        )
        .unwrap()]);
        let assign = assign_trajectories(&[c0, c1]);
        assert_eq!(assign[&TrajectoryId::new(1)], 0);
        assert_eq!(assign[&TrajectoryId::new(2)], 0);
        assert_eq!(assign.len(), 2);
    }
}
