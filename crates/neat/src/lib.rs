//! NEAT — road-network-aware trajectory clustering (ICDCS 2012).
//!
//! This crate implements the paper's three-phase clustering framework:
//!
//! 1. **Base cluster formation** ([`phase1`]): trajectories are split at
//!    road junctions into *t-fragments*; fragments on the same road segment
//!    form a *base cluster*; clusters are density-sorted.
//! 2. **Flow cluster formation** ([`phase2`]): starting from the
//!    dense-core, base clusters are merged along the road network into
//!    *flow clusters* by maximising the merging selectivity
//!    `SF = wq·q + wk·k + wv·v` over each end's f-neighbourhood, with a
//!    netflow-domination restart rule (threshold β) and a minimum
//!    trajectory-cardinality filter.
//! 3. **Flow cluster refinement** ([`phase3`]): flow clusters whose
//!    endpoint-based modified Hausdorff *network* distance is within ε are
//!    merged by a deterministic DBSCAN adaptation, using the Euclidean
//!    lower bound (ELB) to skip shortest-path computations.
//!
//! The three user-facing pipeline versions of the paper — `base-NEAT`,
//! `flow-NEAT` and `opt-NEAT` — are selected with [`Mode`] and run through
//! [`Neat`]:
//!
//! ```
//! use neat_core::{Mode, Neat, NeatConfig};
//! use neat_rnet::netgen::chain_network;
//! use neat_rnet::{RoadLocation, SegmentId, Point};
//! use neat_traj::{Dataset, Trajectory, TrajectoryId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = chain_network(4, 100.0, 13.9);
//! let mut data = Dataset::new("demo");
//! for id in 0..3 {
//!     let pts = (0..3).map(|i| RoadLocation::new(
//!         SegmentId::new(i), Point::new(i as f64 * 100.0 + 50.0, 0.0), i as f64 * 10.0,
//!     )).collect();
//!     data.push(Trajectory::new(TrajectoryId::new(id), pts)?);
//! }
//! let config = NeatConfig { min_card: 2, ..NeatConfig::default() };
//! let result = Neat::new(&net, config).run(&data, Mode::Opt)?;
//! assert_eq!(result.flow_clusters.len(), 1); // one shared flow
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod checkpoint;
pub mod concache;
pub mod config;
pub mod control;
pub mod error;
pub mod evaluation;
pub mod incremental;
pub mod model;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod pipeline;
pub mod query;
pub mod retention;

pub use analysis::{ClusterStatistics, DirectionSplit, FlowStatistics};
pub use checkpoint::{
    config_hash, network_fingerprint, CheckpointError, CheckpointStore, ResumeReport,
    CHECKPOINT_VERSION,
};
pub use config::{NeatConfig, RouteDistance, SpStrategy, Weights};
pub use control::{Completeness, Degradation, DegradationStep, Outcome, PhaseStatus};
pub use error::NeatError;
pub use evaluation::{assign_trajectories, pairwise_scores, PairwiseScores};
pub use incremental::{IncrementalNeat, IngestOutcome};
pub use model::{BaseCluster, FlowCluster, TrajectoryCluster};
pub use neat_traj::sanitize::ErrorPolicy;
pub use phase1::ResilienceCounters;
pub use phase2::MergeEvent;
pub use phase3::Phase3Stats;
pub use pipeline::{Mode, Neat, NeatResult, PhaseTimings};
pub use query::{FlowHit, FlowIndex};
pub use retention::{diff_drift, DriftCounts, DriftEvent, ExpiryOutcome};
