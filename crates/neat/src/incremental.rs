//! Incremental (online) trajectory clustering.
//!
//! Section III-C of the paper motivates the Phase-3 design with real-time
//! clustering: "the first two phases of NEAT can be performed on each
//! newly arrived set of trajectories. The new flow clusters are then
//! merged with the available flow clusters to produce compact clustering
//! results."
//!
//! [`IncrementalNeat`] implements exactly that loop: each
//! [`IncrementalNeat::ingest`] call runs Phases 1–2 on the fresh batch
//! only, appends the resulting flow clusters to the retained set and
//! re-refines with the density-based Phase 3.

use crate::checkpoint::{self, CheckpointError, CheckpointStore, ResumeReport};
use crate::config::NeatConfig;
use crate::control::{Completeness, Degradation, DegradationStep, PhaseStatus};
use crate::error::NeatError;
use crate::model::{FlowCluster, TrajectoryCluster};
use crate::phase1::{form_base_clusters_ctl, form_base_clusters_with_policy, ResilienceCounters};
use crate::phase2::{form_flow_clusters, form_flow_clusters_ctl};
use crate::phase3::{refine_flow_clusters, refine_flow_clusters_ctl, Phase3Stats};
use crate::pipeline::Mode;
use crate::retention::{self, ExpiryOutcome};
use neat_durability::fs::Fs;
use neat_rnet::RoadNetwork;
use neat_runctl::{Control, Interrupt};
use neat_traj::sanitize::ErrorPolicy;
use neat_traj::Dataset;

/// Result of [`IncrementalNeat::ingest_controlled`].
///
/// Ingestion under a [`Control`] is *atomic with respect to the retained
/// state*: the batch's Phases 1–2 run to the side, and only when both
/// complete uninterrupted is the state mutated (`applied == true`). An
/// interrupt during the batch phases leaves the session exactly as it was
/// — resuming with the same batch later reproduces the uninterrupted
/// result, preserving the replay-determinism guarantees of the
/// checkpoint journal.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Current trajectory clusters. Empty when `applied` is false (the
    /// pre-batch view is available via
    /// [`IncrementalNeat::current_clusters`]); possibly produced by a
    /// degraded refinement when `applied` is true.
    pub clusters: Vec<TrajectoryCluster>,
    /// Whether the batch was folded into the retained state. False only
    /// when Phase 1 or Phase 2 of the batch was interrupted.
    pub applied: bool,
    /// Per-phase completion status for this ingest call.
    pub completeness: Completeness,
    /// Degradation ladder record (requested mode is always [`Mode::Opt`]).
    pub degradation: Degradation,
    /// The first interrupt observed, if any.
    pub interrupt: Option<Interrupt>,
}

/// Online NEAT clusterer retaining flow clusters across batches.
///
/// ```
/// use neat_core::incremental::IncrementalNeat;
/// use neat_core::NeatConfig;
/// use neat_rnet::netgen::chain_network;
/// use neat_rnet::{RoadLocation, SegmentId, Point};
/// use neat_traj::{Dataset, Trajectory, TrajectoryId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = chain_network(4, 100.0, 13.9);
/// let config = NeatConfig { min_card: 1, ..NeatConfig::default() };
/// let mut online = IncrementalNeat::new(&net, config);
/// let mut batch = Dataset::new("batch1");
/// batch.push(Trajectory::new(TrajectoryId::new(1), vec![
///     RoadLocation::new(SegmentId::new(0), Point::new(50.0, 0.0), 0.0),
///     RoadLocation::new(SegmentId::new(1), Point::new(150.0, 0.0), 10.0),
/// ])?);
/// let clusters = online.ingest(&batch)?;
/// assert_eq!(clusters.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalNeat<'a> {
    net: &'a RoadNetwork,
    config: NeatConfig,
    flows: Vec<FlowCluster>,
    batches: usize,
    last_stats: Phase3Stats,
    resilience: ResilienceCounters,
    /// Logical-time retention watermark: every retained t-fragment has
    /// `last.time >= watermark`. `None` until the first expiry.
    watermark: Option<f64>,
}

impl<'a> IncrementalNeat<'a> {
    /// Creates an online clusterer with no retained state.
    pub fn new(net: &'a RoadNetwork, config: NeatConfig) -> Self {
        IncrementalNeat {
            net,
            config,
            flows: Vec::new(),
            batches: 0,
            last_stats: Phase3Stats::default(),
            resilience: ResilienceCounters::default(),
            watermark: None,
        }
    }

    /// Number of state-changing operations applied so far. Every ingest
    /// *and* every watermark advance counts one: this is the sequence
    /// domain of the checkpoint journal, so replay stays contiguous when
    /// expiry records are interleaved with batches.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// The current retention watermark, if any expiry has run.
    pub fn watermark(&self) -> Option<f64> {
        self.watermark
    }

    /// Number of t-fragments currently retained across all flows.
    pub fn live_fragments(&self) -> usize {
        self.flows.iter().map(FlowCluster::density).sum()
    }

    /// The earliest `last.time` among retained t-fragments — the first
    /// observation a watermark advance could expire — or `None` when
    /// nothing is retained. A watermark at or below this value is
    /// guaranteed to expire zero fragments, which lets idle-stream
    /// retention skip no-op advances (each advance is a journaled
    /// operation, so callers only want ones that reclaim something).
    pub fn oldest_retained_time(&self) -> Option<f64> {
        self.flows
            .iter()
            .flat_map(|flow| flow.members())
            .flat_map(|member| member.fragments())
            .map(|f| f.last.time)
            .min_by(f64::total_cmp)
    }

    /// The retained flow clusters (across all batches).
    pub fn flow_clusters(&self) -> &[FlowCluster] {
        &self.flows
    }

    /// Phase-3 instrumentation of the most recent [`IncrementalNeat::ingest`].
    pub fn last_refinement_stats(&self) -> Phase3Stats {
        self.last_stats
    }

    /// Ingests a new batch of trajectories: Phases 1–2 run on the batch
    /// alone; the new flows join the retained set; Phase 3 re-refines the
    /// combined set and returns the current trajectory clusters.
    ///
    /// # Errors
    ///
    /// Propagates configuration and unknown-segment errors from the
    /// underlying phases.
    pub fn ingest(&mut self, batch: &Dataset) -> Result<Vec<TrajectoryCluster>, NeatError> {
        self.ingest_with_policy(batch, ErrorPolicy::Strict)
    }

    /// [`IncrementalNeat::ingest`] under an explicit [`ErrorPolicy`]:
    /// with [`ErrorPolicy::Skip`] or [`ErrorPolicy::Repair`] a faulty
    /// trajectory in the batch is isolated — and accumulated into
    /// [`IncrementalNeat::resilience`] — instead of poisoning the whole
    /// online session.
    ///
    /// # Errors
    ///
    /// Configuration errors always fail; data errors only under
    /// [`ErrorPolicy::Strict`].
    pub fn ingest_with_policy(
        &mut self,
        batch: &Dataset,
        policy: ErrorPolicy,
    ) -> Result<Vec<TrajectoryCluster>, NeatError> {
        self.config.validate()?;
        let (p1, counters) =
            form_base_clusters_with_policy(self.net, batch, self.config.insert_junctions, policy)?;
        let p2 = form_flow_clusters(self.net, p1.base_clusters, &self.config)?;
        self.flows.extend(self.admit_flows(p2.flow_clusters));
        self.batches += 1;
        self.resilience.merge(&counters);
        let p3 = refine_flow_clusters(self.net, self.flows.clone(), &self.config)?;
        self.last_stats = p3.stats;
        Ok(p3.clusters)
    }

    /// [`IncrementalNeat::ingest_with_policy`] under a [`Control`]:
    /// cooperative cancel points run through the batch's Phases 1–2 and
    /// the combined refinement, and on interrupt the call degrades
    /// gracefully instead of erroring.
    ///
    /// State mutation is atomic: an interrupt during the batch's Phase 1
    /// or Phase 2 returns `applied == false` and leaves the retained
    /// flows, batch count and counters untouched, so the caller can
    /// simply retry the batch with a fresh budget. Once the batch is
    /// applied, a refinement interrupt only degrades the *returned view*
    /// (ELB-only distances or partial grouping) — the retained flow set
    /// is already consistent.
    ///
    /// # Errors
    ///
    /// Same as [`IncrementalNeat::ingest_with_policy`]; interrupts are
    /// reported inside the [`IngestOutcome`], never as errors.
    pub fn ingest_controlled(
        &mut self,
        batch: &Dataset,
        policy: ErrorPolicy,
        ctl: &Control,
    ) -> Result<IngestOutcome, NeatError> {
        self.config.validate()?;
        // Phases 1–2 run on the batch alone, without touching `self`.
        let (p1, counters, s1) = form_base_clusters_ctl(
            self.net,
            batch,
            self.config.insert_junctions,
            1, // sequential: deterministic cut points for replay
            policy,
            ctl,
        )?;
        if !s1.is_complete() {
            let why = s1.interrupt();
            let mut steps = Vec::new();
            if let PhaseStatus::Partial { done, total, .. } = s1 {
                steps.push(DegradationStep::TruncatedPhase1 { done, total });
            }
            steps.push(DegradationStep::SkippedPhase2);
            steps.push(DegradationStep::SkippedPhase3);
            return Ok(IngestOutcome {
                clusters: Vec::new(),
                applied: false,
                completeness: Completeness {
                    phase1: s1,
                    phase2: PhaseStatus::Skipped {
                        why: why.unwrap_or(Interrupt::Cancelled),
                    },
                    phase3: PhaseStatus::Skipped {
                        why: why.unwrap_or(Interrupt::Cancelled),
                    },
                },
                degradation: Degradation {
                    requested: Mode::Opt,
                    delivered: Mode::Base,
                    steps,
                },
                interrupt: why,
            });
        }
        let (p2, s2) = form_flow_clusters_ctl(self.net, p1.base_clusters, &self.config, ctl)?;
        if !s2.is_complete() {
            let why = s2.interrupt();
            let mut steps = Vec::new();
            if let PhaseStatus::Partial { done, total, .. } = s2 {
                steps.push(DegradationStep::TruncatedPhase2 { done, total });
            }
            steps.push(DegradationStep::SkippedPhase3);
            return Ok(IngestOutcome {
                clusters: Vec::new(),
                applied: false,
                completeness: Completeness {
                    phase1: s1,
                    phase2: s2,
                    phase3: PhaseStatus::Skipped {
                        why: why.unwrap_or(Interrupt::Cancelled),
                    },
                },
                degradation: Degradation {
                    requested: Mode::Opt,
                    delivered: Mode::Flow,
                    steps,
                },
                interrupt: why,
            });
        }

        // Both batch phases completed: fold into the retained state.
        let admitted = self.admit_flows(p2.flow_clusters);
        self.flows.extend(admitted);
        self.batches += 1;
        self.resilience.merge(&counters);

        // Refinement reads the retained flows but never mutates them, so
        // a degraded or partial grouping here only affects this view.
        let refined = refine_flow_clusters_ctl(self.net, self.flows.clone(), &self.config, ctl)?;
        self.last_stats = refined.output.stats;
        let s3 = refined.status;
        let mut steps = Vec::new();
        if refined.elb_only {
            steps.push(DegradationStep::ElbOnlyPhase3);
        }
        if let PhaseStatus::Partial { done, total, .. } = s3 {
            steps.push(DegradationStep::TruncatedPhase3 {
                grouped: done,
                total,
            });
        }
        Ok(IngestOutcome {
            clusters: refined.output.clusters,
            applied: true,
            completeness: Completeness {
                phase1: s1,
                phase2: s2,
                phase3: s3,
            },
            degradation: Degradation {
                requested: Mode::Opt,
                delivered: Mode::Opt,
                steps,
            },
            interrupt: s3.interrupt(),
        })
    }

    /// Trajectories isolated (skipped/repaired) across all batches
    /// ingested so far under non-strict policies.
    pub fn resilience(&self) -> &ResilienceCounters {
        &self.resilience
    }

    /// The configuration this clusterer runs under.
    pub fn config(&self) -> &NeatConfig {
        &self.config
    }

    /// Re-runs Phase 3 on the retained flows and returns the current
    /// trajectory clusters without ingesting anything — the view a
    /// resumed session exposes before its first new batch.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the refinement phase.
    pub fn current_clusters(&self) -> Result<Vec<TrajectoryCluster>, NeatError> {
        let p3 = refine_flow_clusters(self.net, self.flows.clone(), &self.config)?;
        Ok(p3.clusters)
    }

    /// Filters freshly formed batch flows through the current watermark
    /// before they join the retained set. Running the *same* per-flow
    /// expiry at ingest time is what makes expiry commute with ingestion
    /// (`ingest(A); expire(w); ingest(B)` ≡
    /// `ingest(A); ingest(B); expire(w)`): both orders leave exactly
    /// `expire(flows_A) ++ expire(flows_B)` retained.
    fn admit_flows(&self, fresh: Vec<FlowCluster>) -> Vec<FlowCluster> {
        match self.watermark {
            None => fresh,
            Some(w) => retention::expire_flows(fresh, w).0,
        }
    }

    /// Advances the retention watermark to `watermark` and expires every
    /// retained t-fragment observed strictly before it
    /// (`fragment.last.time < watermark`). Flows whose interior members
    /// empty out are split into contiguous runs; fully expired flows are
    /// dropped. The state is re-refined and the cluster-level changes are
    /// reported as typed [`retention::DriftEvent`]s.
    ///
    /// The watermark is monotonic: a `watermark` at or below the current
    /// one is an idempotent no-op (`advanced == false`, no state change,
    /// no operation counted). An advance counts one operation in
    /// [`IncrementalNeat::batches`] — the journal sequence domain — even
    /// when nothing expires, because the new watermark itself changes how
    /// future batches are admitted.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the refinement phase.
    pub fn expire_before(&mut self, watermark: f64) -> Result<ExpiryOutcome, NeatError> {
        self.config.validate()?;
        if let Some(current) = self.watermark {
            if watermark <= current {
                let p3 = refine_flow_clusters(self.net, self.flows.clone(), &self.config)?;
                return Ok(ExpiryOutcome {
                    watermark: current,
                    advanced: false,
                    expired_fragments: 0,
                    expired_flows: 0,
                    split_flows: 0,
                    events: Vec::new(),
                    clusters: p3.clusters,
                });
            }
        }
        let before = refine_flow_clusters(self.net, self.flows.clone(), &self.config)?;
        let (kept, stats) = retention::expire_flows(std::mem::take(&mut self.flows), watermark);
        self.flows = kept;
        self.watermark = Some(watermark);
        self.batches += 1;
        let after = refine_flow_clusters(self.net, self.flows.clone(), &self.config)?;
        self.last_stats = after.stats;
        let events = retention::diff_drift(&before.clusters, &after.clusters);
        Ok(ExpiryOutcome {
            watermark,
            advanced: true,
            expired_fragments: stats.expired_fragments,
            expired_flows: stats.expired_flows,
            split_flows: stats.split_flows,
            events,
            clusters: after.clusters,
        })
    }

    /// [`IncrementalNeat::expire_before`] plus durability: a watermark
    /// advance is appended to `store`'s journal as an expiry operation so
    /// a crash before the next snapshot replays it at the same point in
    /// the operation stream. No-op expiries journal nothing.
    ///
    /// The same divergence-window invariant as
    /// [`IncrementalNeat::ingest_logged`] applies when the append fails.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Neat`] when refinement fails (nothing applied),
    /// [`CheckpointError::Durability`] when the journal append fails (the
    /// expiry *was* applied; repair with a checkpoint or restart).
    pub fn expire_logged<F: Fs>(
        &mut self,
        watermark: f64,
        store: &CheckpointStore<F>,
    ) -> Result<ExpiryOutcome, CheckpointError> {
        let outcome = self
            .expire_before(watermark)
            .map_err(CheckpointError::Neat)?;
        if outcome.advanced {
            store.log_expiry(self.batches as u64, watermark)?;
        }
        Ok(outcome)
    }

    /// [`IncrementalNeat::ingest_with_policy`] plus durability: after the
    /// batch is successfully applied, it is appended to `store`'s batch
    /// journal so a crash before the next snapshot replays it.
    ///
    /// The append happens strictly *after* the apply. A crash between
    /// the two loses only this batch's acknowledgement: resume reports
    /// one batch fewer via [`IncrementalNeat::batches`] and the driver
    /// re-feeds it, which is exactly once overall.
    ///
    /// # Divergence-window invariant
    ///
    /// When the **append itself fails** (`Err(Durability)`) the call
    /// returns an error but the batch *was* applied: from that instant
    /// until the next successful [`IncrementalNeat::save_checkpoint`],
    /// in-memory state is ahead of durable state by exactly this batch.
    /// The invariant callers must preserve is:
    ///
    /// * **Crash inside the window** → safe. The journal has no record
    ///   for the batch, so resume reconstructs the pre-batch state and
    ///   re-feeding the batch reproduces the uninterrupted result
    ///   byte-for-byte (regression-tested by
    ///   `journal_append_crash_window_recovers_exactly_once` in
    ///   `tests/service_chaos.rs`).
    /// * **Continue inside the window** → the caller must either repair
    ///   immediately (take a checkpoint, which persists the applied
    ///   batch and empties the window — what `neat-svc` does, counting
    ///   it as a `journal_repair`) or treat the session as un-acknowledged
    ///   and restart from the store. It must **not** journal any later
    ///   batch first: a subsequent append would create a sequence gap
    ///   ([`CheckpointError::JournalGap`]) because this batch consumed a
    ///   sequence number that never reached disk.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Neat`] when ingestion itself fails (nothing is
    /// journaled and nothing was applied — the session is unchanged),
    /// [`CheckpointError::Durability`] when the journal append fails
    /// (the divergence window above is open; repair or restart).
    pub fn ingest_logged<F: Fs>(
        &mut self,
        batch: &Dataset,
        policy: ErrorPolicy,
        store: &CheckpointStore<F>,
    ) -> Result<Vec<TrajectoryCluster>, CheckpointError> {
        let clusters = self
            .ingest_with_policy(batch, policy)
            .map_err(CheckpointError::Neat)?;
        store.log_batch(self.batches as u64, batch, policy)?;
        Ok(clusters)
    }

    /// Atomically snapshots the full retained state (flows, counters,
    /// batch count, watermark, Phase-3 stats) into `store`, tagged with
    /// the current configuration hash and road-network fingerprint.
    /// Older snapshots and already-covered journal records are then
    /// reclaimed per the store's retention policy.
    ///
    /// Retention is best-effort: the returned
    /// [`RetentionReport`](neat_durability::RetentionReport) carries the
    /// compaction outcome and any non-fatal reclamation error (e.g.
    /// disk full while compacting) — the snapshot itself is durable
    /// either way and the store keeps serving from the old segments.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Durability`] only when the snapshot itself
    /// failed to land; the previous snapshot and journal survive intact.
    pub fn save_checkpoint<F: Fs>(
        &self,
        store: &CheckpointStore<F>,
    ) -> Result<neat_durability::RetentionReport, CheckpointError> {
        let payload = checkpoint::encode_state(&checkpoint::StateParts {
            config: &self.config,
            net: self.net,
            flows: &self.flows,
            batches: self.batches,
            last_stats: self.last_stats,
            resilience: &self.resilience,
            watermark: self.watermark,
        });
        Ok(store
            .store()
            .write_snapshot(self.batches as u64, &payload)?)
    }

    /// Reconstructs an online clusterer from a checkpoint directory:
    /// loads the newest valid snapshot (falling back to the previous one
    /// on damage), validates its configuration hash and network
    /// fingerprint against the arguments, then replays every journaled
    /// batch newer than the snapshot.
    ///
    /// The resumed instance is state-identical to the one that wrote the
    /// checkpoint — continuing the batch stream yields byte-identical
    /// clusters to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::NoCheckpoint`] when the directory holds
    /// neither a snapshot nor journal records;
    /// [`CheckpointError::ConfigMismatch`] /
    /// [`CheckpointError::NetworkMismatch`] when the checkpoint belongs
    /// to a different session; [`CheckpointError::JournalGap`] on lost
    /// records; [`CheckpointError::Durability`] on storage damage beyond
    /// what fallback can absorb.
    pub fn resume<F: Fs>(
        net: &'a RoadNetwork,
        config: NeatConfig,
        store: &CheckpointStore<F>,
    ) -> Result<(Self, ResumeReport), CheckpointError> {
        config.validate().map_err(CheckpointError::Neat)?;
        let recovery = store.store().load()?;
        if recovery.snapshot.is_none() {
            if !recovery.rejected_snapshots.is_empty() {
                // Snapshots exist but none loads — surface every
                // rejection instead of quietly replaying from scratch
                // (the journal alone no longer covers early batches once
                // pruning has run).
                return Err(CheckpointError::Durability(
                    neat_durability::DurabilityError::NoSnapshot {
                        dir: store.dir().display().to_string(),
                        rejected: recovery.rejected_snapshots,
                    },
                ));
            }
            if recovery.journal.is_empty() {
                return Err(CheckpointError::NoCheckpoint {
                    dir: store.dir().display().to_string(),
                });
            }
        }

        let mut report = ResumeReport {
            snapshot_seq: recovery.snapshot.as_ref().map(|(seq, _)| *seq),
            replayed_batches: 0,
            rejected_snapshots: recovery.rejected_snapshots,
            torn_tail_bytes: recovery.torn_tail_bytes,
        };

        let mut session = match &recovery.snapshot {
            Some((seq, payload)) => {
                let state = checkpoint::decode_state(payload, net, &config)?;
                if state.batches as u64 != *seq {
                    return Err(CheckpointError::InvalidState {
                        detail: format!(
                            "snapshot file sequence {seq} disagrees with encoded \
                             batch count {}",
                            state.batches
                        ),
                    });
                }
                IncrementalNeat {
                    net,
                    config,
                    flows: state.flows,
                    batches: state.batches,
                    last_stats: state.last_stats,
                    resilience: state.resilience,
                    watermark: state.watermark,
                }
            }
            None => IncrementalNeat::new(net, config),
        };

        let first_seq = session.batches as u64 + 1;
        for (expected, entry) in (first_seq..).zip(&recovery.journal) {
            if entry.seq != expected {
                return Err(CheckpointError::JournalGap {
                    expected,
                    got: entry.seq,
                });
            }
            // The journal is an *operation* log: a record is either an
            // ingested batch or a watermark advance, told apart by the
            // first payload byte (expiry marker vs. error-policy code).
            if checkpoint::is_expiry_record(&entry.payload) {
                let w = checkpoint::decode_expiry(&entry.payload)?;
                session
                    .expire_before(w)
                    .map_err(|source| CheckpointError::Replay {
                        seq: entry.seq,
                        source,
                    })?;
            } else {
                let (batch, policy) = checkpoint::decode_batch(&entry.payload)?;
                session
                    .ingest_with_policy(&batch, policy)
                    .map_err(|source| CheckpointError::Replay {
                        seq: entry.seq,
                        source,
                    })?;
            }
            report.replayed_batches += 1;
        }
        Ok((session, report))
    }

    /// Compacts the retained flow set: drops flows whose trajectory
    /// cardinality has fallen below `min_card` (e.g. noise from early
    /// batches) and returns how many were evicted. Long-running online
    /// deployments call this periodically to bound state.
    pub fn compact(&mut self, min_card: usize) -> usize {
        let before = self.flows.len();
        self.flows
            .retain(|f| f.trajectory_cardinality() >= min_card);
        before - self.flows.len()
    }

    /// Drops all retained state.
    pub fn reset(&mut self) {
        self.flows.clear();
        self.batches = 0;
        self.last_stats = Phase3Stats::default();
        self.resilience = ResilienceCounters::default();
        self.watermark = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{Trajectory, TrajectoryId};

    fn traverse(id0: u64, count: u64, segs: &[usize]) -> Vec<Trajectory> {
        traverse_at(id0, count, segs, 0.0)
    }

    fn traverse_at(id0: u64, count: u64, segs: &[usize], t0: f64) -> Vec<Trajectory> {
        (0..count)
            .map(|i| {
                let pts = segs
                    .iter()
                    .enumerate()
                    .map(|(k, &s)| {
                        RoadLocation::new(
                            SegmentId::new(s),
                            Point::new(s as f64 * 100.0 + 50.0, 0.0),
                            t0 + k as f64 * 10.0,
                        )
                    })
                    .collect();
                Trajectory::new(TrajectoryId::new(id0 + i), pts).unwrap()
            })
            .collect()
    }

    fn cfg() -> NeatConfig {
        NeatConfig {
            min_card: 2,
            epsilon: 250.0,
            ..NeatConfig::default()
        }
    }

    #[test]
    fn batches_accumulate_flows() {
        let net = chain_network(10, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut batch1 = Dataset::new("b1");
        batch1.extend(traverse(0, 3, &[0, 1, 2]));
        let c1 = online.ingest(&batch1).unwrap();
        assert_eq!(online.batches(), 1);
        assert_eq!(online.flow_clusters().len(), 1);
        assert_eq!(c1.len(), 1);

        let mut batch2 = Dataset::new("b2");
        batch2.extend(traverse(100, 3, &[6, 7, 8]));
        let c2 = online.ingest(&batch2).unwrap();
        assert_eq!(online.batches(), 2);
        assert_eq!(online.flow_clusters().len(), 2);
        // Far apart (Hausdorff 600 m > 250 m): two clusters.
        assert_eq!(c2.len(), 2);
    }

    #[test]
    fn nearby_batches_merge_in_refinement() {
        let net = chain_network(10, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b1 = Dataset::new("b1");
        b1.extend(traverse(0, 3, &[0, 1]));
        online.ingest(&b1).unwrap();
        let mut b2 = Dataset::new("b2");
        b2.extend(traverse(100, 3, &[2, 3]));
        let clusters = online.ingest(&b2).unwrap();
        // Adjacent routes (Hausdorff 200 m ≤ 250 m) merge into one
        // cluster even though they arrived in different batches.
        assert_eq!(online.flow_clusters().len(), 2);
        assert_eq!(clusters.len(), 1);
    }

    #[test]
    fn incremental_matches_oneshot_for_disjoint_populations() {
        let net = chain_network(12, 100.0, 10.0);
        // Two disjoint traffic populations that arrive as two batches.
        let pop1 = traverse(0, 4, &[0, 1, 2]);
        let pop2 = traverse(100, 4, &[8, 9, 10]);

        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b1 = Dataset::new("b1");
        b1.extend(pop1.clone());
        online.ingest(&b1).unwrap();
        let mut b2 = Dataset::new("b2");
        b2.extend(pop2.clone());
        let incr = online.ingest(&b2).unwrap();

        let mut all = Dataset::new("all");
        all.extend(pop1);
        all.extend(pop2);
        let oneshot = crate::pipeline::Neat::new(&net, cfg())
            .run(&all, crate::pipeline::Mode::Opt)
            .unwrap();
        assert_eq!(incr.len(), oneshot.clusters.len());
        let sizes = |cs: &[TrajectoryCluster]| {
            let mut v: Vec<usize> = cs.iter().map(|c| c.flows().len()).collect();
            v.sort();
            v
        };
        assert_eq!(sizes(&incr), sizes(&oneshot.clusters));
    }

    #[test]
    fn reset_clears_state() {
        let net = chain_network(6, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b = Dataset::new("b");
        b.extend(traverse(0, 3, &[0, 1]));
        online.ingest(&b).unwrap();
        assert!(!online.flow_clusters().is_empty());
        online.reset();
        assert!(online.flow_clusters().is_empty());
        assert_eq!(online.batches(), 0);
    }

    #[test]
    fn compact_evicts_small_flows() {
        let net = chain_network(10, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b1 = Dataset::new("b1");
        b1.extend(traverse(0, 5, &[0, 1]));
        b1.extend(traverse(100, 2, &[5, 6]));
        online.ingest(&b1).unwrap();
        assert_eq!(online.flow_clusters().len(), 2);
        let evicted = online.compact(4);
        assert_eq!(evicted, 1);
        assert_eq!(online.flow_clusters().len(), 1);
        assert!(online.flow_clusters()[0].trajectory_cardinality() >= 4);
    }

    #[test]
    fn faulty_batch_degrades_without_poisoning_the_session() {
        let net = chain_network(10, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b1 = Dataset::new("b1");
        b1.extend(traverse(0, 3, &[0, 1]));
        online.ingest(&b1).unwrap();

        // Batch 2 carries a trajectory on a segment this network lacks.
        let mut b2 = Dataset::new("b2");
        b2.extend(traverse(100, 3, &[4, 5]));
        b2.push(
            Trajectory::new(
                TrajectoryId::new(900),
                vec![
                    RoadLocation::new(SegmentId::new(77), Point::new(0.0, 0.0), 0.0),
                    RoadLocation::new(SegmentId::new(77), Point::new(1.0, 0.0), 1.0),
                ],
            )
            .unwrap(),
        );
        // Strict ingestion fails and does not advance the batch count.
        assert!(online.ingest(&b2).is_err());
        assert_eq!(online.batches(), 1);
        // Skip ingests the clean part of the batch.
        let clusters = online.ingest_with_policy(&b2, ErrorPolicy::Skip).unwrap();
        assert_eq!(online.batches(), 2);
        assert_eq!(online.flow_clusters().len(), 2);
        assert!(!clusters.is_empty());
        assert_eq!(online.resilience().skipped, 1);
        assert_eq!(
            online.resilience().skipped_ids,
            vec![TrajectoryId::new(900)]
        );
        online.reset();
        assert!(online.resilience().is_clean());
    }

    #[test]
    fn empty_batch_is_harmless() {
        let net = chain_network(6, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let clusters = online.ingest(&Dataset::new("empty")).unwrap();
        assert!(clusters.is_empty());
        assert_eq!(online.batches(), 1);
    }

    #[test]
    fn checkpoint_save_resume_round_trip() {
        use neat_durability::MemFs;

        let net = chain_network(10, 100.0, 10.0);
        let store = CheckpointStore::open(MemFs::new(), "/ckpt").unwrap();
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b1 = Dataset::new("b1");
        b1.extend(traverse(0, 3, &[0, 1, 2]));
        online
            .ingest_logged(&b1, ErrorPolicy::Strict, &store)
            .unwrap();
        online.save_checkpoint(&store).unwrap();
        let mut b2 = Dataset::new("b2");
        b2.extend(traverse(100, 3, &[6, 7, 8]));
        let live = online
            .ingest_logged(&b2, ErrorPolicy::Strict, &store)
            .unwrap();

        // "Crash": drop the instance, resume from the surviving bytes.
        let (resumed, report) = IncrementalNeat::resume(&net, cfg(), &store).unwrap();
        assert_eq!(report.snapshot_seq, Some(1));
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(resumed.batches(), 2);
        assert_eq!(resumed.flow_clusters(), online.flow_clusters());
        let resumed_clusters = resumed.current_clusters().unwrap();
        assert_eq!(
            format!("{live:#?}"),
            format!("{resumed_clusters:#?}"),
            "resumed clusters must be identical to the uninterrupted run"
        );
    }

    #[test]
    fn resume_rejects_other_config_and_network() {
        use neat_durability::MemFs;

        let net = chain_network(10, 100.0, 10.0);
        let store = CheckpointStore::open(MemFs::new(), "/ckpt").unwrap();
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b = Dataset::new("b");
        b.extend(traverse(0, 3, &[0, 1]));
        online
            .ingest_logged(&b, ErrorPolicy::Strict, &store)
            .unwrap();
        online.save_checkpoint(&store).unwrap();

        let other_cfg = NeatConfig {
            epsilon: 9.0,
            ..cfg()
        };
        assert!(matches!(
            IncrementalNeat::resume(&net, other_cfg, &store).unwrap_err(),
            CheckpointError::ConfigMismatch { .. }
        ));
        let other_net = chain_network(11, 100.0, 10.0);
        assert!(matches!(
            IncrementalNeat::resume(&other_net, cfg(), &store).unwrap_err(),
            CheckpointError::NetworkMismatch { .. }
        ));
    }

    #[test]
    fn resume_from_journal_alone_before_first_snapshot() {
        use neat_durability::MemFs;

        let net = chain_network(10, 100.0, 10.0);
        let store = CheckpointStore::open(MemFs::new(), "/ckpt").unwrap();
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b = Dataset::new("b");
        b.extend(traverse(0, 3, &[0, 1]));
        online
            .ingest_logged(&b, ErrorPolicy::Strict, &store)
            .unwrap();
        // No snapshot was ever written: resume replays the journal.
        let (resumed, report) = IncrementalNeat::resume(&net, cfg(), &store).unwrap();
        assert_eq!(report.snapshot_seq, None);
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(resumed.batches(), 1);
        assert_eq!(resumed.flow_clusters(), online.flow_clusters());
    }

    #[test]
    fn resume_empty_dir_is_no_checkpoint() {
        use neat_durability::MemFs;

        let net = chain_network(4, 100.0, 10.0);
        let store = CheckpointStore::open(MemFs::new(), "/ckpt").unwrap();
        assert!(matches!(
            IncrementalNeat::resume(&net, cfg(), &store).unwrap_err(),
            CheckpointError::NoCheckpoint { .. }
        ));
    }

    #[test]
    fn resume_preserves_resilience_counters() {
        use neat_durability::MemFs;

        let net = chain_network(10, 100.0, 10.0);
        let store = CheckpointStore::open(MemFs::new(), "/ckpt").unwrap();
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut bad = Dataset::new("bad");
        bad.extend(traverse(0, 3, &[0, 1]));
        bad.push(
            Trajectory::new(
                TrajectoryId::new(900),
                vec![
                    RoadLocation::new(SegmentId::new(77), Point::new(0.0, 0.0), 0.0),
                    RoadLocation::new(SegmentId::new(77), Point::new(1.0, 0.0), 1.0),
                ],
            )
            .unwrap(),
        );
        online
            .ingest_logged(&bad, ErrorPolicy::Skip, &store)
            .unwrap();
        online.save_checkpoint(&store).unwrap();
        let (resumed, _) = IncrementalNeat::resume(&net, cfg(), &store).unwrap();
        assert_eq!(resumed.resilience().skipped, 1);
        assert_eq!(
            resumed.resilience().skipped_ids,
            vec![TrajectoryId::new(900)]
        );
        assert_eq!(
            resumed.last_refinement_stats(),
            online.last_refinement_stats()
        );
    }

    #[test]
    fn controlled_ingest_is_atomic_on_interrupt() {
        use neat_runctl::{CancelToken, Control, Interrupt, RunBudget};

        let net = chain_network(10, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b1 = Dataset::new("b1");
        b1.extend(traverse(0, 3, &[0, 1, 2]));
        online.ingest(&b1).unwrap();
        let flows_before = online.flow_clusters().to_vec();

        // A batch interrupted during its own phases must not touch state.
        let mut b2 = Dataset::new("b2");
        b2.extend(traverse(100, 3, &[6, 7, 8]));
        let ctl = Control::new(RunBudget::unlimited(), CancelToken::armed_after(0));
        let out = online
            .ingest_controlled(&b2, ErrorPolicy::Strict, &ctl)
            .unwrap();
        assert!(!out.applied);
        assert_eq!(out.interrupt, Some(Interrupt::Cancelled));
        assert!(out.clusters.is_empty());
        assert_eq!(online.batches(), 1);
        assert_eq!(online.flow_clusters(), flows_before.as_slice());

        // Retrying the same batch with a fresh budget applies it and
        // matches the uncontrolled path exactly.
        let mut reference = IncrementalNeat::new(&net, cfg());
        reference.ingest(&b1).unwrap();
        let expected = reference.ingest(&b2).unwrap();
        let out = online
            .ingest_controlled(&b2, ErrorPolicy::Strict, &Control::unlimited())
            .unwrap();
        assert!(out.applied);
        assert!(out.interrupt.is_none());
        assert_eq!(online.batches(), 2);
        assert_eq!(
            format!("{expected:?}"),
            format!("{:?}", out.clusters),
            "controlled retry must reproduce the uncontrolled ingest"
        );
    }

    #[test]
    fn expire_before_removes_old_state_and_emits_drift() {
        use crate::retention::DriftEvent;

        let net = chain_network(12, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut old = Dataset::new("old");
        old.extend(traverse_at(0, 3, &[0, 1, 2], 0.0));
        online.ingest(&old).unwrap();
        let mut fresh = Dataset::new("fresh");
        fresh.extend(traverse_at(100, 3, &[8, 9, 10], 1000.0));
        online.ingest(&fresh).unwrap();
        assert_eq!(online.current_clusters().unwrap().len(), 2);
        let live_before = online.live_fragments();

        let out = online.expire_before(500.0).unwrap();
        assert!(out.advanced);
        assert_eq!(online.watermark(), Some(500.0));
        assert_eq!(out.expired_flows, 1);
        assert!(out.expired_fragments > 0);
        assert!(online.live_fragments() < live_before);
        assert_eq!(out.clusters.len(), 1);
        // The old population's cluster died; the fresh one is untouched.
        assert_eq!(out.events, vec![DriftEvent::Died { key: 0, size: 3 }]);
        // Expiry counts one operation in the journal sequence domain.
        assert_eq!(online.batches(), 3);

        // Idempotent: re-expiring at or below the watermark is a no-op.
        let noop = online.expire_before(500.0).unwrap();
        assert!(!noop.advanced);
        assert!(noop.events.is_empty());
        assert_eq!(online.batches(), 3);
        assert_eq!(noop.clusters.len(), 1);
    }

    #[test]
    fn ingest_respects_the_watermark() {
        let net = chain_network(12, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        online.expire_before(500.0).unwrap();
        // A batch entirely behind the watermark is admitted as nothing.
        let mut stale = Dataset::new("stale");
        stale.extend(traverse_at(0, 3, &[0, 1, 2], 0.0));
        online.ingest(&stale).unwrap();
        assert_eq!(online.live_fragments(), 0);
        assert_eq!(online.batches(), 2);
        // A batch ahead of it is admitted whole.
        let mut fresh = Dataset::new("fresh");
        fresh.extend(traverse_at(100, 3, &[8, 9, 10], 1000.0));
        online.ingest(&fresh).unwrap();
        assert!(online.live_fragments() > 0);
    }

    #[test]
    fn expiry_checkpoint_resume_round_trip() {
        use neat_durability::MemFs;

        let net = chain_network(12, 100.0, 10.0);
        let store = CheckpointStore::open(MemFs::new(), "/ckpt").unwrap();
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b1 = Dataset::new("b1");
        b1.extend(traverse_at(0, 3, &[0, 1, 2], 0.0));
        online
            .ingest_logged(&b1, ErrorPolicy::Strict, &store)
            .unwrap();
        online.save_checkpoint(&store).unwrap();
        // Expiry and a later batch live only in the journal.
        online.expire_logged(500.0, &store).unwrap();
        let mut b2 = Dataset::new("b2");
        b2.extend(traverse_at(100, 3, &[8, 9, 10], 1000.0));
        let live = online
            .ingest_logged(&b2, ErrorPolicy::Strict, &store)
            .unwrap();

        let (resumed, report) = IncrementalNeat::resume(&net, cfg(), &store).unwrap();
        assert_eq!(report.snapshot_seq, Some(1));
        assert_eq!(report.replayed_batches, 2); // expiry op + batch
        assert_eq!(resumed.batches(), 3);
        assert_eq!(resumed.watermark(), Some(500.0));
        assert_eq!(resumed.flow_clusters(), online.flow_clusters());
        let resumed_clusters = resumed.current_clusters().unwrap();
        assert_eq!(format!("{live:#?}"), format!("{resumed_clusters:#?}"));

        // A checkpoint after the expiry persists the watermark too.
        online.save_checkpoint(&store).unwrap();
        let (resumed2, report2) = IncrementalNeat::resume(&net, cfg(), &store).unwrap();
        assert_eq!(report2.snapshot_seq, Some(3));
        assert_eq!(report2.replayed_batches, 0);
        assert_eq!(resumed2.watermark(), Some(500.0));
        assert_eq!(resumed2.flow_clusters(), online.flow_clusters());
    }

    #[test]
    fn noop_expiry_journals_nothing() {
        use neat_durability::MemFs;

        let net = chain_network(6, 100.0, 10.0);
        let store = CheckpointStore::open(MemFs::new(), "/ckpt").unwrap();
        let mut online = IncrementalNeat::new(&net, cfg());
        let out = online.expire_logged(100.0, &store).unwrap();
        assert!(out.advanced);
        let noop = online.expire_logged(50.0, &store).unwrap();
        assert!(!noop.advanced);
        assert_eq!(online.batches(), 1);
        let (resumed, report) = IncrementalNeat::resume(&net, cfg(), &store).unwrap();
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(resumed.watermark(), Some(100.0));
    }

    #[test]
    fn refinement_stats_update_per_batch() {
        let net = chain_network(10, 100.0, 10.0);
        let mut online = IncrementalNeat::new(&net, cfg());
        let mut b1 = Dataset::new("b1");
        b1.extend(traverse(0, 3, &[0, 1]));
        online.ingest(&b1).unwrap();
        let s1 = online.last_refinement_stats();
        let mut b2 = Dataset::new("b2");
        b2.extend(traverse(100, 3, &[4, 5]));
        online.ingest(&b2).unwrap();
        let s2 = online.last_refinement_stats();
        // Second refinement sees more flows, so it considers more pairs.
        assert!(s2.pairs_considered >= s1.pairs_considered);
    }
}
