//! Phase 3 — flow cluster refinement (Section III-C).
//!
//! Flow clusters whose representative routes end near each other (in
//! *network* distance) are merged into final trajectory clusters:
//!
//! * the distance between two flows is a modified Hausdorff distance over
//!   the two endpoint pairs of their representative routes
//!   (Definition 11), computed with undirected shortest paths;
//! * merging uses a deterministic adaptation of DBSCAN: the data units are
//!   flow clusters, there is no minimum cardinality, and each round is
//!   seeded by the unprocessed flow with the longest representative route;
//! * the Euclidean lower bound (ELB) `d_E(a,b) ≤ d_N(a,b)` filters
//!   candidate pairs before any shortest-path computation: if the minimum
//!   Euclidean distance between the endpoint sets exceeds ε, the network
//!   distance must too (Section III-C3).

use crate::config::{NeatConfig, RouteDistance, SpStrategy};
use crate::control::PhaseStatus;
use crate::error::NeatError;
use crate::model::{FlowCluster, TrajectoryCluster};
use neat_rnet::path::TravelMode;
use neat_rnet::{NodeId, RoadNetwork, ShortestPathEngine};
use neat_runctl::{Control, Interrupt, OverrunMode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Instrumentation counters for the Figure-7 ablation (ELB vs Dijkstra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Phase3Stats {
    /// Ordered flow pairs examined while retrieving ε-neighbourhoods.
    pub pairs_considered: u64,
    /// Pairs eliminated by the Euclidean lower bound before any
    /// shortest-path computation.
    pub elb_skips: u64,
    /// Individual shortest-path computations performed (up to four per
    /// surviving pair, minus cache hits).
    pub sp_computations: u64,
    /// Node-pair distance lookups answered by the memo table.
    pub sp_cache_hits: u64,
}

/// Output of Phase 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase3Output {
    /// Final trajectory clusters, in formation order.
    pub clusters: Vec<TrajectoryCluster>,
    /// Instrumentation counters.
    pub stats: Phase3Stats,
}

/// Network-distance oracle with memoisation and the ELB filter.
struct DistanceOracle<'a> {
    net: &'a RoadNetwork,
    engine: ShortestPathEngine,
    strategy: SpStrategy,
    epsilon: f64,
    cache: HashMap<(NodeId, NodeId), Option<f64>>,
    stats: Phase3Stats,
}

impl<'a> DistanceOracle<'a> {
    fn new(net: &'a RoadNetwork, strategy: SpStrategy, epsilon: f64) -> Self {
        DistanceOracle {
            net,
            engine: ShortestPathEngine::new(net),
            strategy,
            epsilon,
            cache: HashMap::new(),
            stats: Phase3Stats::default(),
        }
    }

    /// Undirected network distance `d_N(a, b)`, memoised symmetrically.
    ///
    /// Phase 3 only needs to decide `d_N ≤ ε`, so the A* strategy bounds
    /// its search at ε and returns `None` for anything farther (or
    /// unreachable); the Dijkstra strategy reproduces the paper's
    /// unbounded network-expansion baseline.
    fn network_distance(
        &mut self,
        a: NodeId,
        b: NodeId,
        ctl: Option<&Control>,
    ) -> Result<Option<f64>, Interrupt> {
        if a == b {
            return Ok(Some(0.0));
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&d) = self.cache.get(&key) {
            self.stats.sp_cache_hits += 1;
            return Ok(d);
        }
        self.stats.sp_computations += 1;
        let d = match (self.strategy, ctl) {
            (SpStrategy::AStar, None) => self.engine.distance_bounded(
                self.net,
                key.0,
                key.1,
                TravelMode::Undirected,
                self.epsilon,
            ),
            (SpStrategy::AStar, Some(c)) => self.engine.distance_bounded_ctl(
                self.net,
                key.0,
                key.1,
                TravelMode::Undirected,
                self.epsilon,
                c,
            )?,
            (SpStrategy::Dijkstra, None) => {
                // Plain unbounded network expansion: the paper's
                // opt-NEAT-Dijkstra baseline (Figure 7).
                self.engine.distance_plain(self.net, key.0, key.1)
            }
            (SpStrategy::Dijkstra, Some(c)) => {
                self.engine.distance_plain_ctl(self.net, key.0, key.1, c)?
            }
        };
        self.cache.insert(key, d);
        Ok(d)
    }

    /// Modified Hausdorff distance between two representative routes:
    /// over the endpoint pairs (Definition 11, the paper's first
    /// prototype) or over every junction of both routes
    /// ([`RouteDistance::FullRoute`]). `None` when some required distance
    /// exceeds ε (A* strategy) or is unreachable.
    fn flow_distance(
        &mut self,
        fi: &FlowCluster,
        fj: &FlowCluster,
        points: RouteDistance,
        ctl: Option<&Control>,
    ) -> Result<Option<f64>, Interrupt> {
        let (xs, ys): (Vec<NodeId>, Vec<NodeId>) = match points {
            RouteDistance::Endpoints => {
                let (a1, a2) = fi.endpoints();
                let (b1, b2) = fj.endpoints();
                (vec![a1, a2], vec![b1, b2])
            }
            RouteDistance::FullRoute => (fi.node_chain().to_vec(), fj.node_chain().to_vec()),
        };
        let mut h = 0.0f64;
        for &a in &xs {
            let mut m = f64::INFINITY;
            for &b in &ys {
                if let Some(d) = self.network_distance(a, b, ctl)? {
                    m = m.min(d);
                }
            }
            if !m.is_finite() {
                return Ok(None);
            }
            h = h.max(m);
        }
        for &b in &ys {
            let mut m = f64::INFINITY;
            for &a in &xs {
                if let Some(d) = self.network_distance(b, a, ctl)? {
                    m = m.min(d);
                }
            }
            if !m.is_finite() {
                return Ok(None);
            }
            h = h.max(m);
        }
        Ok(Some(h))
    }

    /// Minimum Euclidean distance between the compared point sets — the
    /// ELB pre-filter of Section III-C3. The point sets must match the
    /// route-distance setting: when every cross Euclidean distance
    /// exceeds ε, every network distance does too, so every `min` term of
    /// the Hausdorff (and hence the Hausdorff itself) exceeds ε.
    fn min_euclidean(&self, fi: &FlowCluster, fj: &FlowCluster, points: RouteDistance) -> f64 {
        let (xs, ys): (Vec<NodeId>, Vec<NodeId>) = match points {
            RouteDistance::Endpoints => {
                let (a1, a2) = fi.endpoints();
                let (b1, b2) = fj.endpoints();
                (vec![a1, a2], vec![b1, b2])
            }
            RouteDistance::FullRoute => (fi.node_chain().to_vec(), fj.node_chain().to_vec()),
        };
        let mut m = f64::INFINITY;
        for &a in &xs {
            for &b in &ys {
                m = m.min(self.net.euclidean_distance(a, b));
            }
        }
        m
    }
}

/// Runs Phase 3: merges flow clusters whose modified Hausdorff network
/// distance is within `config.epsilon`, using the deterministic DBSCAN
/// adaptation described in the module docs.
///
/// # Errors
///
/// Returns [`NeatError::InvalidConfig`] when the configuration fails
/// validation.
pub fn refine_flow_clusters(
    net: &RoadNetwork,
    flows: Vec<FlowCluster>,
    config: &NeatConfig,
) -> Result<Phase3Output, NeatError> {
    refine_inner(net, flows, config, None).map(|c| c.output)
}

/// Result of a controlled Phase 3.
#[derive(Debug, Clone)]
pub struct ControlledRefinement {
    /// The refinement output: always covers *every* input flow (flows
    /// not reached before a stop become singleton clusters).
    pub output: Phase3Output,
    /// How the phase ended.
    pub status: PhaseStatus,
    /// `true` when the ELB-only continuation decided some suffix of the
    /// pair comparisons (degradation ladder rung between "exhaustive"
    /// and "skip refinement").
    pub elb_only: bool,
}

/// Phase 3 under a [`Control`], walking the in-phase degradation ladder:
///
/// 1. **Exhaustive** — exact network distances (with the ELB pre-filter
///    when configured), one cancel point per candidate pair and per
///    settled node inside each shortest path.
/// 2. **ELB-only** — on budget exhaustion under [`OverrunMode::Degrade`]
///    the remaining pairs are decided by the Euclidean lower bound alone
///    (`d_E ≤ ε`), which costs no shortest paths. Only cancellation is
///    polled from here on: the budget is knowingly spent.
/// 3. **Stop** — on cancellation (any rung) or any interrupt under
///    [`OverrunMode::Partial`], refinement stops; flows not yet grouped
///    are emitted as singleton clusters so the output stays a valid
///    partition of the input.
///
/// # Errors
///
/// Same as [`refine_flow_clusters`] — interrupts are reported in the
/// returned status, never as errors.
pub fn refine_flow_clusters_ctl(
    net: &RoadNetwork,
    flows: Vec<FlowCluster>,
    config: &NeatConfig,
    ctl: &Control,
) -> Result<ControlledRefinement, NeatError> {
    refine_inner(net, flows, config, Some(ctl))
}

/// `true` when interrupt `why` should switch the phase to the ELB-only
/// continuation rather than stop it: budget-style interrupts under
/// [`OverrunMode::Degrade`], and only if not already degraded.
fn should_degrade(why: Interrupt, ctl: &Control, already_degraded: bool) -> bool {
    !already_degraded && !why.is_cancellation() && ctl.overrun() == OverrunMode::Degrade
}

fn refine_inner(
    net: &RoadNetwork,
    flows: Vec<FlowCluster>,
    config: &NeatConfig,
    ctl: Option<&Control>,
) -> Result<ControlledRefinement, NeatError> {
    config.validate()?;
    let n = flows.len();
    if n == 0 {
        return Ok(ControlledRefinement {
            output: Phase3Output {
                clusters: Vec::new(),
                stats: Phase3Stats::default(),
            },
            status: PhaseStatus::Complete,
            elb_only: false,
        });
    }

    // Deterministic processing order: longest representative route first
    // (ties by fewer members, then original index).
    let mut order: Vec<usize> = (0..n).collect();
    let lengths: Vec<f64> = flows.iter().map(|f| f.route_length(net)).collect();
    order.sort_by(|&i, &j| {
        lengths[j]
            .total_cmp(&lengths[i])
            .then_with(|| flows[i].members().len().cmp(&flows[j].members().len()))
            .then_with(|| i.cmp(&j))
    });

    let mut oracle = DistanceOracle::new(net, config.sp_strategy, config.epsilon);
    let mut label: Vec<Option<usize>> = vec![None; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    // Some(why) once the ELB-only continuation took over.
    let mut degraded: Option<Interrupt> = None;
    // Some(why) once refinement stopped outright.
    let mut stopped: Option<Interrupt> = None;

    'outer: for &seed in &order {
        if label[seed].is_some() {
            continue;
        }
        let gid = groups.len();
        groups.push(Vec::new());
        // DBSCAN-style expansion with a FIFO frontier; no minPts — every
        // ε-reachable flow joins the cluster (Section III-C2, mod. 3).
        let mut queue = std::collections::VecDeque::from([seed]);
        label[seed] = Some(gid);
        while let Some(cur) = queue.pop_front() {
            groups[gid].push(cur);
            // ε-neighbourhood of `cur` among unlabelled flows, scanned in
            // index order for determinism.
            for other in 0..n {
                if label[other].is_some() {
                    continue;
                }
                // One cancel point per candidate pair. Once degraded the
                // budget is knowingly spent, so only cancellation polls.
                if let Some(c) = ctl {
                    let verdict = if degraded.is_some() {
                        c.check_cancel()
                    } else {
                        c.check()
                    };
                    if let Err(why) = verdict {
                        if should_degrade(why, c, degraded.is_some()) {
                            degraded = Some(why);
                            c.degrade("phase3: exact network distances -> ELB-only");
                        } else {
                            stopped = Some(why);
                            // Flows still queued were already judged
                            // ε-reachable: group them before stopping.
                            for &rest in &queue {
                                groups[gid].push(rest);
                            }
                            break 'outer;
                        }
                    }
                }
                oracle.stats.pairs_considered += 1;
                let near = if degraded.is_some() {
                    // ELB-only continuation: the Euclidean lower bound is
                    // the distance — no further shortest paths.
                    oracle.min_euclidean(&flows[cur], &flows[other], config.route_distance)
                        <= config.epsilon
                } else if config.use_elb
                    && oracle.min_euclidean(&flows[cur], &flows[other], config.route_distance)
                        > config.epsilon
                {
                    oracle.stats.elb_skips += 1;
                    false
                } else {
                    match oracle.flow_distance(
                        &flows[cur],
                        &flows[other],
                        config.route_distance,
                        ctl,
                    ) {
                        Ok(Some(d)) => d <= config.epsilon,
                        Ok(None) => false,
                        Err(why) => {
                            // A shortest path hit the budget mid-pair.
                            // `ctl` must be Some for an interrupt to
                            // surface; fall back to a stop if not.
                            match ctl {
                                Some(c) if should_degrade(why, c, false) => {
                                    degraded = Some(why);
                                    c.degrade("phase3: exact network distances -> ELB-only");
                                    // Decide this pair by the lower bound.
                                    oracle.min_euclidean(
                                        &flows[cur],
                                        &flows[other],
                                        config.route_distance,
                                    ) <= config.epsilon
                                }
                                _ => {
                                    stopped = Some(why);
                                    for &rest in &queue {
                                        groups[gid].push(rest);
                                    }
                                    break 'outer;
                                }
                            }
                        }
                    }
                };
                if near {
                    label[other] = Some(gid);
                    queue.push_back(other);
                }
            }
        }
    }

    // On a stop, flows never reached become singleton clusters (in
    // seeding order) so the output remains a partition of the input.
    let grouped: usize = groups.iter().map(Vec::len).sum();
    if stopped.is_some() {
        for &i in &order {
            if label[i].is_none() {
                label[i] = Some(groups.len());
                groups.push(vec![i]);
            }
        }
    }

    // Materialise clusters, preserving in-group discovery order.
    let mut flows_opt: Vec<Option<FlowCluster>> = flows.into_iter().map(Some).collect();
    let clusters = groups
        .into_iter()
        .map(|members| {
            TrajectoryCluster::new(
                members
                    .into_iter()
                    .map(|i| flows_opt[i].take().expect("each flow used once")) // lint:allow(L1) reason=each flow index appears in exactly one cluster's member list
                    .collect(),
            )
        })
        .collect();
    let status = match (stopped, degraded) {
        (Some(why), _) => PhaseStatus::Partial {
            done: grouped,
            total: n,
            why,
        },
        (None, Some(why)) => PhaseStatus::Degraded { why },
        (None, None) => PhaseStatus::Complete,
    };
    Ok(ControlledRefinement {
        output: Phase3Output {
            clusters,
            stats: oracle.stats,
        },
        status,
        elb_only: degraded.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouteDistance;
    use crate::model::BaseCluster;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{TFragment, TrajectoryId};

    fn frag(tr: u64, seg: usize) -> TFragment {
        let loc = RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), 0.0);
        TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(seg),
            first: loc,
            last: loc,
            point_count: 2,
        }
    }

    fn frag2(tr: u64, seg: neat_rnet::SegmentId) -> neat_traj::TFragment {
        let loc = RoadLocation::new(seg, Point::new(0.0, 0.0), 0.0);
        neat_traj::TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: seg,
            first: loc,
            last: loc,
            point_count: 2,
        }
    }

    fn flow_on(net: &RoadNetwork, segs: &[usize], tr: u64) -> FlowCluster {
        let mut it = segs.iter();
        let first = *it.next().expect("non-empty");
        let mut f = FlowCluster::from_base(
            net,
            BaseCluster::new(SegmentId::new(first), vec![frag(tr, first)]).unwrap(),
        )
        .unwrap();
        for &s in it {
            f.push_back(
                net,
                BaseCluster::new(SegmentId::new(s), vec![frag(tr, s)]).unwrap(),
            )
            .unwrap();
        }
        f
    }

    fn cfg(epsilon: f64, use_elb: bool) -> NeatConfig {
        NeatConfig {
            epsilon,
            use_elb,
            ..NeatConfig::default()
        }
    }

    #[test]
    fn nearby_flows_merge() {
        // Chain of 10 segments (100 m each). Flow A = s0..s3 (ends n0,
        // n4), flow B = s5..s8 (ends n5, n9). Definition 11 pairs each
        // endpoint with its nearest counterpart: max-min = 500 m (the
        // n0↔n5 / n4↔n9 correspondence).
        let net = chain_network(11, 100.0, 10.0);
        let a = flow_on(&net, &[0, 1, 2, 3], 1);
        let b = flow_on(&net, &[5, 6, 7, 8], 2);
        let out =
            refine_flow_clusters(&net, vec![a.clone(), b.clone()], &cfg(500.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].flows().len(), 2);
        // Just below the Hausdorff distance they stay apart.
        let out = refine_flow_clusters(&net, vec![a, b], &cfg(499.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn far_flows_stay_apart() {
        let net = chain_network(30, 100.0, 10.0);
        let a = flow_on(&net, &[0, 1], 1);
        let b = flow_on(&net, &[27, 28], 2);
        let out = refine_flow_clusters(&net, vec![a, b], &cfg(500.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn hausdorff_uses_max_not_min() {
        // Flow A = s0..s1 (endpoints n0, n2); flow B = s2 (endpoints n2,
        // n3). Nearest endpoints coincide (n2) but the far ends are 300 m /
        // 200 m away. dist = max over maxmin = 300 (n0's nearest B endpoint
        // is n2 at 200m? n0→n2=200, n0→n3=300 → min 200; n2→{n0,n2}: 0;
        // n3→{n0,n2} = min(300,100)=100; A side: n0:200, n2:0 → max 200;
        // B side: max(0, 100) = 100; overall 200.
        let net = chain_network(5, 100.0, 10.0);
        let a = flow_on(&net, &[0, 1], 1);
        let b = flow_on(&net, &[2], 2);
        // ε just below 200 keeps them apart…
        let out =
            refine_flow_clusters(&net, vec![a.clone(), b.clone()], &cfg(199.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 2);
        // …and ε at 200 merges them.
        let out = refine_flow_clusters(&net, vec![a, b], &cfg(200.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 1);
    }

    #[test]
    fn elb_and_dijkstra_agree() {
        let net = chain_network(20, 100.0, 10.0);
        let flows = vec![
            flow_on(&net, &[0, 1, 2], 1),
            flow_on(&net, &[4, 5], 2),
            flow_on(&net, &[10, 11, 12, 13], 3),
            flow_on(&net, &[16, 17], 4),
        ];
        let with_elb = refine_flow_clusters(&net, flows.clone(), &cfg(250.0, true)).unwrap();
        let mut dij = cfg(250.0, false);
        dij.sp_strategy = SpStrategy::Dijkstra;
        let without = refine_flow_clusters(&net, flows, &dij).unwrap();
        let shape = |o: &Phase3Output| {
            let mut v: Vec<usize> = o.clusters.iter().map(|c| c.flows().len()).collect();
            v.sort();
            v
        };
        assert_eq!(shape(&with_elb), shape(&without));
        // ELB actually skipped work.
        assert!(with_elb.stats.elb_skips > 0);
        assert!(with_elb.stats.sp_computations < without.stats.sp_computations);
    }

    #[test]
    fn seeded_by_longest_route() {
        let net = chain_network(12, 100.0, 10.0);
        let short = flow_on(&net, &[0], 1);
        let long = flow_on(&net, &[3, 4, 5, 6], 2);
        let out = refine_flow_clusters(&net, vec![short, long], &cfg(50.0, true)).unwrap();
        // Longest route seeds the first cluster.
        assert_eq!(out.clusters[0].flows()[0].members().len(), 4);
    }

    #[test]
    fn transitive_chain_merges_via_density_connectivity() {
        // A–B within ε (400 m), B–C within ε, A–C beyond ε (800 m): all
        // three join one cluster through B (density-connected set).
        let net = chain_network(16, 100.0, 10.0);
        let a = flow_on(&net, &[0, 1], 1); // ends n0,n2
        let b = flow_on(&net, &[4, 5], 2); // ends n4,n6
        let c = flow_on(&net, &[8, 9], 3); // ends n8,n10
        let out = refine_flow_clusters(&net, vec![a, b, c], &cfg(400.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].flows().len(), 3);
    }

    #[test]
    fn empty_input() {
        let net = chain_network(3, 100.0, 10.0);
        let out = refine_flow_clusters(&net, vec![], &cfg(100.0, true)).unwrap();
        assert!(out.clusters.is_empty());
        assert_eq!(out.stats, Phase3Stats::default());
    }

    #[test]
    fn single_flow_single_cluster() {
        let net = chain_network(4, 100.0, 10.0);
        let out =
            refine_flow_clusters(&net, vec![flow_on(&net, &[1, 2], 1)], &cfg(10.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 1);
    }

    #[test]
    fn cache_avoids_recomputation() {
        let net = chain_network(12, 100.0, 10.0);
        // Flows sharing endpoints → repeated node pairs.
        let flows = vec![
            flow_on(&net, &[0, 1], 1),
            flow_on(&net, &[2, 3], 2),
            flow_on(&net, &[4, 5], 3),
        ];
        let out = refine_flow_clusters(&net, flows, &cfg(1e6, true)).unwrap();
        assert!(out.stats.sp_cache_hits > 0);
    }

    #[test]
    fn full_route_distance_is_stricter_than_endpoints() {
        // Two parallel-ish flows sharing endpoints-region but diverging in
        // the middle cannot be built on a chain; instead compare a long
        // flow against a short one whose endpoints sit near the long
        // flow's ends via the chain: endpoints measure sees distance 200,
        // full-route sees the far interior nodes too.
        let net = chain_network(12, 100.0, 10.0);
        let long = flow_on(&net, &[0, 1, 2, 3, 4, 5], 1); // ends n0, n6
        let short = flow_on(&net, &[7, 8], 2); // ends n7, n9
                                               // Endpoint Hausdorff: n0→{n7,n9}=700; n6→100; n7→100; n9→300 → 700.
                                               // Full-route Hausdorff: same max (n0 is farthest) → equal here;
                                               // verify both settings agree on the decision at ε = 700.
        for (rd, expect_merge) in [
            (RouteDistance::Endpoints, true),
            (RouteDistance::FullRoute, true),
        ] {
            let mut c = cfg(700.0, true);
            c.route_distance = rd;
            let out = refine_flow_clusters(&net, vec![long.clone(), short.clone()], &c).unwrap();
            assert_eq!(out.clusters.len() == 1, expect_merge, "{rd:?}");
        }
        // At ε = 300 the endpoint measure keeps them apart too (700 > 300).
        let mut c = cfg(300.0, true);
        c.route_distance = RouteDistance::FullRoute;
        let out = refine_flow_clusters(&net, vec![long, short], &c).unwrap();
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn full_route_separates_what_endpoints_merge() {
        // A horseshoe: flow A runs along the bottom, flow B is a short
        // stub near both of A's endpoints but far from A's middle… on a
        // ring network. Build a loop of 12 nodes (100 m apart).
        let mut b = neat_rnet::RoadNetworkBuilder::new();
        let n: Vec<_> = (0..12)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / 12.0;
                b.add_node(neat_rnet::Point::new(200.0 * ang.cos(), 200.0 * ang.sin()))
            })
            .collect();
        let mut segs = Vec::new();
        for i in 0..12 {
            segs.push(b.add_segment(n[i], n[(i + 1) % 12], 10.0).unwrap());
        }
        let net = b.build().unwrap();
        // Flow A: half the ring (segments 0..5, endpoints n0 and n6).
        // Flow B: one segment on the other side (segment 8: n8-n9).
        let mk = |sids: &[neat_rnet::SegmentId], tr: u64| {
            let mut it = sids.iter();
            let mut f = FlowCluster::from_base(
                &net,
                BaseCluster::new(*it.next().unwrap(), vec![frag2(tr, *sids.first().unwrap())])
                    .unwrap(),
            )
            .unwrap();
            for &s in it {
                f.push_back(&net, BaseCluster::new(s, vec![frag2(tr, s)]).unwrap())
                    .unwrap();
            }
            f
        };
        let a = mk(&segs[0..6], 1);
        let b_flow = mk(&segs[8..9], 2);
        // Endpoint distances (along the ring): A ends at n0/n6; B at n8/n9.
        // n6→n8 = 2 hops ≈ 207 m; n0→n9 = 3 hops ≈ 310 m; endpoint
        // Hausdorff ≈ 311. Full-route adds A's middle nodes (n3 is 5 hops
        // from B) → ≈ 518. ε between the two separates the settings.
        let seg_len = net.segment(segs[0]).unwrap().length;
        let eps = 4.0 * seg_len; // between 3 and 5 hops
        let mut c = cfg(eps, true);
        c.route_distance = RouteDistance::Endpoints;
        let merged = refine_flow_clusters(&net, vec![a.clone(), b_flow.clone()], &c).unwrap();
        assert_eq!(merged.clusters.len(), 1, "endpoints should merge");
        c.route_distance = RouteDistance::FullRoute;
        let apart = refine_flow_clusters(&net, vec![a, b_flow], &c).unwrap();
        assert_eq!(apart.clusters.len(), 2, "full route should separate");
    }

    #[test]
    fn deterministic_output() {
        let net = chain_network(20, 100.0, 10.0);
        let mk = || {
            vec![
                flow_on(&net, &[0, 1, 2], 1),
                flow_on(&net, &[5, 6], 2),
                flow_on(&net, &[9, 10, 11], 3),
                flow_on(&net, &[15], 4),
            ]
        };
        let a = refine_flow_clusters(&net, mk(), &cfg(300.0, true)).unwrap();
        let b = refine_flow_clusters(&net, mk(), &cfg(300.0, true)).unwrap();
        assert_eq!(a.clusters, b.clusters);
    }
}
