//! Phase 3 — flow cluster refinement (Section III-C).
//!
//! Flow clusters whose representative routes end near each other (in
//! *network* distance) are merged into final trajectory clusters:
//!
//! * the distance between two flows is a modified Hausdorff distance over
//!   the two endpoint pairs of their representative routes
//!   (Definition 11), computed with undirected shortest paths;
//! * merging uses a deterministic adaptation of DBSCAN: the data units are
//!   flow clusters, there is no minimum cardinality, and each round is
//!   seeded by the unprocessed flow with the longest representative route;
//! * the Euclidean lower bound (ELB) `d_E(a,b) ≤ d_N(a,b)` filters
//!   candidate pairs before any shortest-path computation: if the minimum
//!   Euclidean distance between the endpoint sets exceeds ε, the network
//!   distance must too (Section III-C3).
//!
//! On top of the paper's design this implementation layers three
//! output-preserving optimisations:
//!
//! * **ALT landmark bounds** ([`AltLandmarks`]): the pre-filter becomes
//!   `max(euclidean, alt)`, which is still a lower bound on the network
//!   distance, so it only ever skips *more* pairs — never different ones.
//! * **Endpoint one-to-many tables**: in the default
//!   [`RouteDistance::Endpoints`] + [`SpStrategy::AStar`] configuration,
//!   each neighbourhood scan runs one bounded one-to-many Dijkstra per
//!   scanned endpoint and answers every candidate pair from the resulting
//!   tables. A node absent from a table is provably farther than ε, so
//!   the decisions equal the per-pair bounded searches they replace.
//! * **Deterministic parallel scans** ([`Executor`]): candidate pairs of
//!   one neighbourhood scan are independent, so they fan out across
//!   `config.threads` workers. Results and statistics are folded in index
//!   order, and under a [`Control`] the executor's speculative-charging
//!   protocol lands interrupts at the exact op index the sequential loop
//!   would — the clustering output is bit-identical for any thread count.

use crate::concache::ShardedMap;
use crate::config::{NeatConfig, RouteDistance, SpStrategy};
use crate::control::PhaseStatus;
use crate::error::NeatError;
use crate::model::{FlowCluster, TrajectoryCluster};
use neat_exec::Executor;
use neat_rnet::alt::AltLandmarks;
use neat_rnet::path::{NodeDistances, TravelMode};
use neat_rnet::{NodeId, RoadNetwork, ShortestPathEngine};
use neat_runctl::{Control, Interrupt, OverrunMode};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Instrumentation counters for the Figure-7 ablation (ELB vs Dijkstra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Phase3Stats {
    /// Ordered flow pairs examined while retrieving ε-neighbourhoods.
    pub pairs_considered: u64,
    /// Pairs eliminated by the Euclidean lower bound before any
    /// shortest-path computation.
    pub elb_skips: u64,
    /// Pairs that survived the Euclidean bound but were eliminated by
    /// the ALT landmark bound (still before any shortest path).
    pub alt_skips: u64,
    /// Individual point-to-point shortest-path computations performed
    /// (up to four per surviving pair, minus cache hits).
    pub sp_computations: u64,
    /// Node-pair distance lookups answered by a memo table — the
    /// sharded pair cache or a one-to-many endpoint table.
    pub sp_cache_hits: u64,
    /// Bounded one-to-many Dijkstra expansions run to build endpoint
    /// distance tables (each replaces up to `4 × candidates` bounded
    /// point-to-point searches).
    pub one_to_many_scans: u64,
}

impl Phase3Stats {
    /// Folds `other` into `self` (per-item deltas are accumulated in
    /// item order by the scan loops).
    pub fn absorb(&mut self, other: &Phase3Stats) {
        self.pairs_considered += other.pairs_considered;
        self.elb_skips += other.elb_skips;
        self.alt_skips += other.alt_skips;
        self.sp_computations += other.sp_computations;
        self.sp_cache_hits += other.sp_cache_hits;
        self.one_to_many_scans += other.one_to_many_scans;
    }
}

/// Output of Phase 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase3Output {
    /// Final trajectory clusters, in formation order.
    pub clusters: Vec<TrajectoryCluster>,
    /// Instrumentation counters.
    pub stats: Phase3Stats,
}

/// Packs a symmetric node pair into one cache key (smaller index in the
/// high half, so `(a, b)` and `(b, a)` collide by construction).
fn pair_key(lo: NodeId, hi: NodeId) -> u64 {
    debug_assert!(lo <= hi);
    ((lo.index() as u64) << 32) | (hi.index() as u64)
}

/// The two point sets a flow-pair distance compares under `points`.
fn point_sets(
    fi: &FlowCluster,
    fj: &FlowCluster,
    points: RouteDistance,
) -> (Vec<NodeId>, Vec<NodeId>) {
    match points {
        RouteDistance::Endpoints => {
            let (a1, a2) = fi.endpoints();
            let (b1, b2) = fj.endpoints();
            (vec![a1, a2], vec![b1, b2])
        }
        RouteDistance::FullRoute => (fi.node_chain().to_vec(), fj.node_chain().to_vec()),
    }
}

/// Network-distance oracle: sharded symmetric-pair memo, optional ALT
/// landmark tables and optional per-endpoint one-to-many tables.
///
/// The oracle itself is shared (`&self`) across scan workers; mutable
/// scratch state — the shortest-path engine and the statistics deltas —
/// is supplied per call so each worker owns its own.
struct DistanceOracle<'a> {
    net: &'a RoadNetwork,
    strategy: SpStrategy,
    epsilon: f64,
    use_elb: bool,
    /// Symmetric `(NodeId, NodeId) → Option<distance>` memo. Values are
    /// computed under the shard lock, so concurrent scans compute each
    /// pair exactly once and `sp_computations` stays exact.
    pair_cache: ShardedMap<Option<f64>>,
    /// `NodeId → bounded one-to-many table`, reused across scans that
    /// share an endpoint.
    tables: ShardedMap<Arc<NodeDistances>>,
    /// Landmark tables for the ALT lower bound (`None` when disabled).
    alt: Option<AltLandmarks>,
}

/// The one-to-many tables of one scanned flow's two endpoints.
struct EndpointTables {
    ends: (NodeId, NodeId),
    t1: Arc<NodeDistances>,
    t2: Arc<NodeDistances>,
}

impl<'a> DistanceOracle<'a> {
    /// Undirected network distance `d_N(a, b)`, memoised symmetrically.
    ///
    /// Phase 3 only needs to decide `d_N ≤ ε`, so the A* strategy bounds
    /// its search at ε and returns `None` for anything farther (or
    /// unreachable); the Dijkstra strategy reproduces the paper's
    /// unbounded network-expansion baseline.
    fn network_distance(
        &self,
        engine: &mut ShortestPathEngine,
        a: NodeId,
        b: NodeId,
        ctl: Option<&Control>,
        stats: &mut Phase3Stats,
    ) -> Result<Option<f64>, Interrupt> {
        if a == b {
            return Ok(Some(0.0));
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (d, fresh) = self
            .pair_cache
            .try_get_or_insert_with(pair_key(lo, hi), || match (self.strategy, ctl) {
                (SpStrategy::AStar, None) => Ok(engine.distance_bounded(
                    self.net,
                    lo,
                    hi,
                    TravelMode::Undirected,
                    self.epsilon,
                )),
                (SpStrategy::AStar, Some(c)) => engine.distance_bounded_ctl(
                    self.net,
                    lo,
                    hi,
                    TravelMode::Undirected,
                    self.epsilon,
                    c,
                ),
                (SpStrategy::Dijkstra, None) => {
                    // Plain unbounded network expansion: the paper's
                    // opt-NEAT-Dijkstra baseline (Figure 7).
                    Ok(engine.distance_plain(self.net, lo, hi))
                }
                (SpStrategy::Dijkstra, Some(c)) => engine.distance_plain_ctl(self.net, lo, hi, c),
            })?;
        if fresh {
            stats.sp_computations += 1;
        } else {
            stats.sp_cache_hits += 1;
        }
        Ok(d)
    }

    /// Modified Hausdorff distance between two representative routes:
    /// over the endpoint pairs (Definition 11, the paper's first
    /// prototype) or over every junction of both routes
    /// ([`RouteDistance::FullRoute`]). `None` when some required distance
    /// exceeds ε (A* strategy) or is unreachable.
    fn flow_distance(
        &self,
        engine: &mut ShortestPathEngine,
        fi: &FlowCluster,
        fj: &FlowCluster,
        points: RouteDistance,
        ctl: Option<&Control>,
        stats: &mut Phase3Stats,
    ) -> Result<Option<f64>, Interrupt> {
        let (xs, ys) = point_sets(fi, fj, points);
        let mut h = 0.0f64;
        for &a in &xs {
            let mut m = f64::INFINITY;
            for &b in &ys {
                if let Some(d) = self.network_distance(engine, a, b, ctl, stats)? {
                    m = m.min(d);
                }
            }
            if !m.is_finite() {
                return Ok(None);
            }
            h = h.max(m);
        }
        for &b in &ys {
            let mut m = f64::INFINITY;
            for &a in &xs {
                if let Some(d) = self.network_distance(engine, b, a, ctl, stats)? {
                    m = m.min(d);
                }
            }
            if !m.is_finite() {
                return Ok(None);
            }
            h = h.max(m);
        }
        Ok(Some(h))
    }

    /// Minimum Euclidean distance between the compared point sets — the
    /// ELB pre-filter of Section III-C3. The point sets must match the
    /// route-distance setting: when every cross Euclidean distance
    /// exceeds ε, every network distance does too, so every `min` term of
    /// the Hausdorff (and hence the Hausdorff itself) exceeds ε.
    fn min_euclidean(&self, fi: &FlowCluster, fj: &FlowCluster, points: RouteDistance) -> f64 {
        let (xs, ys) = point_sets(fi, fj, points);
        let mut m = f64::INFINITY;
        for &a in &xs {
            for &b in &ys {
                m = m.min(self.net.euclidean_distance(a, b));
            }
        }
        m
    }

    /// `true` when the lower-bound pre-filter proves the pair distance
    /// exceeds ε, charging the skip to the right counter: `elb_skips`
    /// when the Euclidean bound alone suffices, `alt_skips` when the
    /// landmark-tightened bound `max(euclidean, alt)` was needed. Both
    /// bounds never exceed the true network distance, so a filtered pair
    /// could never have merged — filtering is output-preserving.
    fn bound_filters_out(
        &self,
        fi: &FlowCluster,
        fj: &FlowCluster,
        points: RouteDistance,
        stats: &mut Phase3Stats,
    ) -> bool {
        if !self.use_elb {
            return false;
        }
        let (xs, ys) = point_sets(fi, fj, points);
        let mut min_e = f64::INFINITY;
        let mut min_combined = f64::INFINITY;
        for &a in &xs {
            for &b in &ys {
                let e = self.net.euclidean_distance(a, b);
                min_e = min_e.min(e);
                let c = match &self.alt {
                    Some(alt) => e.max(alt.lower_bound(a, b)),
                    None => e,
                };
                min_combined = min_combined.min(c);
            }
        }
        if min_e > self.epsilon {
            stats.elb_skips += 1;
            true
        } else if min_combined > self.epsilon {
            stats.alt_skips += 1;
            true
        } else {
            false
        }
    }

    /// Every flow endpoint a table from `src` may ever be asked about:
    /// those whose combined lower bound (Euclidean, tightened by ALT
    /// when landmarks are loaded) does not already prove `d > ε`. The
    /// one-to-many expansion stops once all of them are settled, which
    /// on large networks is far earlier than the full ε-ball. The set
    /// depends only on `src` and the fixed flow list — never on which
    /// scan requests the table — so cached tables stay coherent.
    fn table_targets(&self, flows: &[FlowCluster], src: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for f in flows {
            let (b1, b2) = f.endpoints();
            for b in [b1, b2] {
                let e = self.net.euclidean_distance(src, b);
                let lb = match &self.alt {
                    Some(alt) => e.max(alt.lower_bound(src, b)),
                    None => e,
                };
                if lb <= self.epsilon {
                    out.push(b);
                }
            }
        }
        out.sort_unstable_by_key(|n| n.index());
        out.dedup();
        out
    }

    /// Fetches (building on miss) the bounded one-to-many tables for the
    /// scanned flow's two endpoints. Table expansions are charged to
    /// `ctl` one settlement per finalised node, exactly like the
    /// point-to-point searches they replace.
    fn endpoint_tables(
        &self,
        engine: &mut ShortestPathEngine,
        flows: &[FlowCluster],
        cur: usize,
        ctl: Option<&Control>,
        stats: &mut Phase3Stats,
    ) -> Result<EndpointTables, Interrupt> {
        let (a1, a2) = flows[cur].endpoints();
        let t1 = self.table_for(engine, flows, a1, ctl, stats)?;
        let t2 = if a2 == a1 {
            Arc::clone(&t1)
        } else {
            self.table_for(engine, flows, a2, ctl, stats)?
        };
        Ok(EndpointTables {
            ends: (a1, a2),
            t1,
            t2,
        })
    }

    fn table_for(
        &self,
        engine: &mut ShortestPathEngine,
        flows: &[FlowCluster],
        src: NodeId,
        ctl: Option<&Control>,
        stats: &mut Phase3Stats,
    ) -> Result<Arc<NodeDistances>, Interrupt> {
        let (table, fresh) = self.tables.try_get_or_insert_with(src.index() as u64, || {
            let targets = self.table_targets(flows, src);
            engine
                .distances_within_targets_ctl(
                    self.net,
                    src,
                    TravelMode::Undirected,
                    self.epsilon,
                    Some(&targets),
                    ctl,
                )
                .map(Arc::new)
        })?;
        if fresh {
            stats.one_to_many_scans += 1;
        }
        Ok(table)
    }

    /// Endpoint-pair Hausdorff decision (`d ≤ ε`) answered entirely from
    /// the scanned flow's one-to-many tables. A node absent from a table
    /// is strictly farther than ε from its source: either its lower
    /// bound already proved `d > ε` (so it was never a table target) or
    /// the target-pruned expansion ran the full ε-ball. Either way the
    /// decision is identical to the bounded point-to-point searches of
    /// [`DistanceOracle::flow_distance`].
    fn table_near(&self, tabs: &EndpointTables, fj: &FlowCluster, stats: &mut Phase3Stats) -> bool {
        let (b1, b2) = fj.endpoints();
        let mut look = |t: &NodeDistances, a: NodeId, b: NodeId| -> Option<f64> {
            if a == b {
                return Some(0.0);
            }
            stats.sp_cache_hits += 1;
            t.get(b)
        };
        let d11 = look(&tabs.t1, tabs.ends.0, b1);
        let d12 = look(&tabs.t1, tabs.ends.0, b2);
        let d21 = look(&tabs.t2, tabs.ends.1, b1);
        let d22 = look(&tabs.t2, tabs.ends.1, b2);
        let min2 = |x: Option<f64>, y: Option<f64>| match (x, y) {
            (Some(p), Some(q)) => Some(p.min(q)),
            (Some(p), None) | (None, Some(p)) => Some(p),
            (None, None) => None,
        };
        // Forward terms pair each endpoint of the scanned flow with its
        // nearest endpoint of `fj`; backward terms are read from the same
        // four distances (the undirected metric is symmetric).
        let mut h = 0.0f64;
        for term in [
            min2(d11, d12),
            min2(d21, d22),
            min2(d11, d21),
            min2(d12, d22),
        ] {
            match term {
                Some(d) => h = h.max(d),
                // Some min-term exceeds ε or is unreachable: not near.
                None => return false,
            }
        }
        h <= self.epsilon
    }
}

/// Runs Phase 3: merges flow clusters whose modified Hausdorff network
/// distance is within `config.epsilon`, using the deterministic DBSCAN
/// adaptation described in the module docs.
///
/// # Errors
///
/// Returns [`NeatError::InvalidConfig`] when the configuration fails
/// validation.
pub fn refine_flow_clusters(
    net: &RoadNetwork,
    flows: Vec<FlowCluster>,
    config: &NeatConfig,
) -> Result<Phase3Output, NeatError> {
    refine_inner(net, flows, config, None).map(|c| c.output)
}

/// Result of a controlled Phase 3.
#[derive(Debug, Clone)]
pub struct ControlledRefinement {
    /// The refinement output: always covers *every* input flow (flows
    /// not reached before a stop become singleton clusters).
    pub output: Phase3Output,
    /// How the phase ended.
    pub status: PhaseStatus,
    /// `true` when the ELB-only continuation decided some suffix of the
    /// pair comparisons (degradation ladder rung between "exhaustive"
    /// and "skip refinement").
    pub elb_only: bool,
}

/// Phase 3 under a [`Control`], walking the in-phase degradation ladder:
///
/// 1. **Exhaustive** — exact network distances (with the ELB/ALT
///    pre-filter when configured), one cancel point per candidate pair
///    and per settled node inside each shortest path or one-to-many
///    expansion.
/// 2. **ELB-only** — on budget exhaustion under [`OverrunMode::Degrade`]
///    the remaining pairs are decided by the Euclidean lower bound alone
///    (`d_E ≤ ε`), which costs no shortest paths. Only cancellation is
///    polled from here on: the budget is knowingly spent.
/// 3. **Stop** — on cancellation (any rung) or any interrupt under
///    [`OverrunMode::Partial`], refinement stops; flows not yet grouped
///    are emitted as singleton clusters so the output stays a valid
///    partition of the input.
///
/// # Errors
///
/// Same as [`refine_flow_clusters`] — interrupts are reported in the
/// returned status, never as errors.
pub fn refine_flow_clusters_ctl(
    net: &RoadNetwork,
    flows: Vec<FlowCluster>,
    config: &NeatConfig,
    ctl: &Control,
) -> Result<ControlledRefinement, NeatError> {
    refine_inner(net, flows, config, Some(ctl))
}

/// `true` when interrupt `why` should switch the phase to the ELB-only
/// continuation rather than stop it: budget-style interrupts under
/// [`OverrunMode::Degrade`], and only if not already degraded.
fn should_degrade(why: Interrupt, ctl: &Control, already_degraded: bool) -> bool {
    !already_degraded && !why.is_cancellation() && ctl.overrun() == OverrunMode::Degrade
}

/// Degradation note recorded when exact distances are abandoned.
const DEGRADE_NOTE: &str = "phase3: exact network distances -> ELB-only";

/// Decides candidate pairs with the Euclidean lower bound alone — the
/// degraded continuation. `skip_first_poll` is set when the interrupt
/// that triggered degradation already consumed the current pair's cancel
/// point.
///
/// # Errors
///
/// Returns the interrupt on cancellation (the only poll left here).
#[allow(clippy::too_many_arguments)]
fn scan_elb_only(
    oracle: &DistanceOracle,
    flows: &[FlowCluster],
    cur: usize,
    cands: &[usize],
    config: &NeatConfig,
    ctl: Option<&Control>,
    skip_first_poll: bool,
    stats: &mut Phase3Stats,
    label: &mut [Option<usize>],
    queue: &mut VecDeque<usize>,
    gid: usize,
) -> Result<(), Interrupt> {
    for (k, &other) in cands.iter().enumerate() {
        if !(skip_first_poll && k == 0) {
            if let Some(c) = ctl {
                c.check_cancel()?;
            }
        }
        stats.pairs_considered += 1;
        if oracle.min_euclidean(&flows[cur], &flows[other], config.route_distance) <= config.epsilon
        {
            label[other] = Some(gid);
            queue.push_back(other);
        }
    }
    Ok(())
}

/// One sequential exhaustive neighbourhood scan for the configurations
/// whose per-pair shortest-path work is charged to `ctl` as it happens
/// (full-route distances and the Dijkstra ablation). May flip the phase
/// into the degraded continuation mid-scan.
///
/// # Errors
///
/// Returns the interrupt that stops refinement outright.
#[allow(clippy::too_many_arguments)]
fn scan_exact_sequential(
    oracle: &DistanceOracle,
    engine: &mut ShortestPathEngine,
    flows: &[FlowCluster],
    cur: usize,
    cands: &[usize],
    config: &NeatConfig,
    ctl: Option<&Control>,
    stats: &mut Phase3Stats,
    degraded: &mut Option<Interrupt>,
    label: &mut [Option<usize>],
    queue: &mut VecDeque<usize>,
    gid: usize,
) -> Result<(), Interrupt> {
    for &other in cands {
        // One cancel point per candidate pair. Once degraded the budget
        // is knowingly spent, so only cancellation polls.
        if let Some(c) = ctl {
            let verdict = if degraded.is_some() {
                c.check_cancel()
            } else {
                c.check()
            };
            if let Err(why) = verdict {
                if should_degrade(why, c, degraded.is_some()) {
                    *degraded = Some(why);
                    c.degrade(DEGRADE_NOTE);
                } else {
                    return Err(why);
                }
            }
        }
        stats.pairs_considered += 1;
        let near = if degraded.is_some() {
            // ELB-only continuation: the Euclidean lower bound is the
            // distance — no further shortest paths.
            oracle.min_euclidean(&flows[cur], &flows[other], config.route_distance)
                <= config.epsilon
        } else if oracle.bound_filters_out(&flows[cur], &flows[other], config.route_distance, stats)
        {
            false
        } else {
            match oracle.flow_distance(
                engine,
                &flows[cur],
                &flows[other],
                config.route_distance,
                ctl,
                stats,
            ) {
                Ok(Some(d)) => d <= config.epsilon,
                Ok(None) => false,
                Err(why) => {
                    // A shortest path hit the budget mid-pair. `ctl` must
                    // be Some for an interrupt to surface; fall back to a
                    // stop if not.
                    match ctl {
                        Some(c) if should_degrade(why, c, false) => {
                            *degraded = Some(why);
                            c.degrade(DEGRADE_NOTE);
                            // Decide this pair by the lower bound.
                            oracle.min_euclidean(&flows[cur], &flows[other], config.route_distance)
                                <= config.epsilon
                        }
                        _ => return Err(why),
                    }
                }
            }
        };
        if near {
            label[other] = Some(gid);
            queue.push_back(other);
        }
    }
    Ok(())
}

fn refine_inner(
    net: &RoadNetwork,
    flows: Vec<FlowCluster>,
    config: &NeatConfig,
    ctl: Option<&Control>,
) -> Result<ControlledRefinement, NeatError> {
    config.validate()?;
    let n = flows.len();
    if n == 0 {
        return Ok(ControlledRefinement {
            output: Phase3Output {
                clusters: Vec::new(),
                stats: Phase3Stats::default(),
            },
            status: PhaseStatus::Complete,
            elb_only: false,
        });
    }

    // Deterministic processing order: longest representative route first
    // (ties by fewer members, then original index).
    let mut order: Vec<usize> = (0..n).collect();
    let lengths: Vec<f64> = flows.iter().map(|f| f.route_length(net)).collect();
    order.sort_by(|&i, &j| {
        lengths[j]
            .total_cmp(&lengths[i])
            .then_with(|| flows[i].members().len().cmp(&flows[j].members().len()))
            .then_with(|| i.cmp(&j))
    });

    let mut engine = ShortestPathEngine::new(net);
    let mut stats = Phase3Stats::default();
    // Some(why) once the ELB-only continuation took over.
    let mut degraded: Option<Interrupt> = None;
    // Some(why) once refinement stopped outright.
    let mut stopped: Option<Interrupt> = None;

    // ALT landmark preprocessing: exactly `alt_landmarks` full Dijkstra
    // expansions, charged to `ctl` like the query-time searches whose
    // skips pay for them. Only worthwhile when the ELB filter runs.
    let alt = if config.use_elb && config.alt_landmarks > 0 && n >= 2 {
        match AltLandmarks::build_ctl(
            net,
            &mut engine,
            config.alt_landmarks,
            TravelMode::Undirected,
            ctl,
        ) {
            Ok(a) => Some(a),
            Err(why) => {
                match ctl {
                    Some(c) if should_degrade(why, c, false) => {
                        degraded = Some(why);
                        c.degrade(DEGRADE_NOTE);
                    }
                    _ => stopped = Some(why),
                }
                None
            }
        }
    } else {
        None
    };

    // Endpoint tables replace bounded point-to-point searches only where
    // both are defined: endpoint distances under the bounded strategy.
    let use_tables = config.endpoint_tables
        && config.route_distance == RouteDistance::Endpoints
        && config.sp_strategy == SpStrategy::AStar;
    let oracle = DistanceOracle {
        net,
        strategy: config.sp_strategy,
        epsilon: config.epsilon,
        use_elb: config.use_elb,
        pair_cache: ShardedMap::new(),
        tables: ShardedMap::new(),
        alt,
    };
    let exec = Executor::new(config.threads);

    let mut label: Vec<Option<usize>> = vec![None; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();

    if stopped.is_none() {
        'outer: for &seed in &order {
            if label[seed].is_some() {
                continue;
            }
            let gid = groups.len();
            groups.push(Vec::new());
            // DBSCAN-style expansion with a FIFO frontier; no minPts — every
            // ε-reachable flow joins the cluster (Section III-C2, mod. 3).
            let mut queue = VecDeque::from([seed]);
            label[seed] = Some(gid);
            while let Some(cur) = queue.pop_front() {
                groups[gid].push(cur);
                // ε-neighbourhood of `cur` among unlabelled flows, scanned
                // in index order for determinism (queued flows are already
                // labelled, so each pair is examined at most once).
                let cands: Vec<usize> = (0..n).filter(|&o| label[o].is_none()).collect();
                if cands.is_empty() {
                    continue;
                }

                let scan: Result<(), Interrupt> = if degraded.is_some() {
                    scan_elb_only(
                        &oracle, &flows, cur, &cands, config, ctl, false, &mut stats, &mut label,
                        &mut queue, gid,
                    )
                } else if use_tables {
                    // Pass 1 — bound filter (ELB + ALT): pure geometry,
                    // exactly one op per pair, parallelised by the
                    // deterministic executor (results and charges fold
                    // in index order, so interrupts land at the
                    // sequential op index). The tables build *after*
                    // the filter: a scan whose candidates are all
                    // bound-filtered never pays for an expansion, which
                    // is where the ALT skips turn into saved Dijkstras.
                    let filter = |k: usize, ds: &mut Phase3Stats| {
                        ds.pairs_considered = 1;
                        !oracle.bound_filters_out(
                            &flows[cur],
                            &flows[cands[k]],
                            config.route_distance,
                            ds,
                        )
                    };
                    let (kept, halted) = match ctl {
                        Some(c) => {
                            let res = exec.try_map_ctl(
                                cands.len(),
                                c,
                                || (),
                                |k, (), cc| {
                                    cc.check()?;
                                    let mut ds = Phase3Stats::default();
                                    let keep = filter(k, &mut ds);
                                    Ok((keep, ds))
                                },
                            );
                            (res.items, res.halted)
                        }
                        None => (
                            exec.map(cands.len(), |k| {
                                let mut ds = Phase3Stats::default();
                                (filter(k, &mut ds), ds)
                            }),
                            None,
                        ),
                    };
                    let done = kept.len();
                    let mut survivors: Vec<usize> = Vec::new();
                    for (k, (keep, ds)) in kept.into_iter().enumerate() {
                        stats.absorb(&ds);
                        if keep {
                            survivors.push(k);
                        }
                    }
                    match halted {
                        Some(why) => match ctl {
                            Some(c) if should_degrade(why, c, false) => {
                                degraded = Some(why);
                                c.degrade(DEGRADE_NOTE);
                                // Degraded decision = the bound itself:
                                // prefix survivors join (their op is
                                // already paid; the lower bound passing
                                // is exactly the ELB-only policy, made
                                // no looser by the ALT tightening). The
                                // pair whose check fired consumed its
                                // cancel point.
                                for k in survivors {
                                    label[cands[k]] = Some(gid);
                                    queue.push_back(cands[k]);
                                }
                                scan_elb_only(
                                    &oracle,
                                    &flows,
                                    cur,
                                    &cands[done..],
                                    config,
                                    ctl,
                                    true,
                                    &mut stats,
                                    &mut label,
                                    &mut queue,
                                    gid,
                                )
                            }
                            _ => Err(why),
                        },
                        None if survivors.is_empty() => Ok(()),
                        None => {
                            match oracle.endpoint_tables(&mut engine, &flows, cur, ctl, &mut stats)
                            {
                                Err(why) => match ctl {
                                    Some(c) if should_degrade(why, c, false) => {
                                        // A one-to-many expansion hit the
                                        // budget. Every pair this scan is
                                        // already bound-decided; survivors
                                        // join under the ELB-only policy.
                                        degraded = Some(why);
                                        c.degrade(DEGRADE_NOTE);
                                        for k in survivors {
                                            label[cands[k]] = Some(gid);
                                            queue.push_back(cands[k]);
                                        }
                                        Ok(())
                                    }
                                    _ => Err(why),
                                },
                                Ok(tabs) => {
                                    // Pass 2 — exact decisions for the
                                    // survivors: pure table lookups, no
                                    // cancel points left to consume.
                                    for k in survivors {
                                        if oracle.table_near(&tabs, &flows[cands[k]], &mut stats) {
                                            label[cands[k]] = Some(gid);
                                            queue.push_back(cands[k]);
                                        }
                                    }
                                    Ok(())
                                }
                            }
                        }
                    }
                } else if ctl.is_some() || !exec.is_parallel_for(cands.len()) {
                    // Controlled full-route / Dijkstra scans stay
                    // sequential: their per-pair op counts depend on the
                    // search, so live charging is the only exact protocol.
                    scan_exact_sequential(
                        &oracle,
                        &mut engine,
                        &flows,
                        cur,
                        &cands,
                        config,
                        ctl,
                        &mut stats,
                        &mut degraded,
                        &mut label,
                        &mut queue,
                        gid,
                    )
                } else {
                    // Uncontrolled exact scan: per-worker engines, shared
                    // sharded memo. Decisions are order-independent, and
                    // compute-under-lock keeps the counters exact.
                    let res = exec.map_ctx(
                        cands.len(),
                        || ShortestPathEngine::new(net),
                        |k, eng| {
                            let mut ds = Phase3Stats {
                                pairs_considered: 1,
                                ..Phase3Stats::default()
                            };
                            let other = &flows[cands[k]];
                            let near = if oracle.bound_filters_out(
                                &flows[cur],
                                other,
                                config.route_distance,
                                &mut ds,
                            ) {
                                false
                            } else {
                                match oracle.flow_distance(
                                    eng,
                                    &flows[cur],
                                    other,
                                    config.route_distance,
                                    None,
                                    &mut ds,
                                ) {
                                    Ok(Some(d)) => d <= config.epsilon,
                                    // Uncontrolled searches cannot be
                                    // interrupted; Err is unreachable.
                                    Ok(None) | Err(_) => false,
                                }
                            };
                            (near, ds)
                        },
                    );
                    for (k, (near, ds)) in res.into_iter().enumerate() {
                        stats.absorb(&ds);
                        if near {
                            label[cands[k]] = Some(gid);
                            queue.push_back(cands[k]);
                        }
                    }
                    Ok(())
                };

                if let Err(why) = scan {
                    stopped = Some(why);
                    // Flows still queued were already judged ε-reachable:
                    // group them before stopping.
                    for &rest in &queue {
                        groups[gid].push(rest);
                    }
                    break 'outer;
                }
            }
        }
    }

    // On a stop, flows never reached become singleton clusters (in
    // seeding order) so the output remains a partition of the input.
    let grouped: usize = groups.iter().map(Vec::len).sum();
    if stopped.is_some() {
        for &i in &order {
            if label[i].is_none() {
                label[i] = Some(groups.len());
                groups.push(vec![i]);
            }
        }
    }

    // Materialise clusters, preserving in-group discovery order.
    let mut flows_opt: Vec<Option<FlowCluster>> = flows.into_iter().map(Some).collect();
    let clusters = groups
        .into_iter()
        .map(|members| {
            TrajectoryCluster::new(
                members
                    .into_iter()
                    .map(|i| flows_opt[i].take().expect("each flow used once")) // lint:allow(L1) reason=each flow index appears in exactly one cluster's member list
                    .collect(),
            )
        })
        .collect();
    let status = match (stopped, degraded) {
        (Some(why), _) => PhaseStatus::Partial {
            done: grouped,
            total: n,
            why,
        },
        (None, Some(why)) => PhaseStatus::Degraded { why },
        (None, None) => PhaseStatus::Complete,
    };
    Ok(ControlledRefinement {
        output: Phase3Output { clusters, stats },
        status,
        elb_only: degraded.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouteDistance;
    use crate::model::BaseCluster;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{TFragment, TrajectoryId};

    fn frag(tr: u64, seg: usize) -> TFragment {
        let loc = RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), 0.0);
        TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(seg),
            first: loc,
            last: loc,
            point_count: 2,
        }
    }

    fn frag2(tr: u64, seg: neat_rnet::SegmentId) -> neat_traj::TFragment {
        let loc = RoadLocation::new(seg, Point::new(0.0, 0.0), 0.0);
        neat_traj::TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: seg,
            first: loc,
            last: loc,
            point_count: 2,
        }
    }

    fn flow_on(net: &RoadNetwork, segs: &[usize], tr: u64) -> FlowCluster {
        let mut it = segs.iter();
        let first = *it.next().expect("non-empty");
        let mut f = FlowCluster::from_base(
            net,
            BaseCluster::new(SegmentId::new(first), vec![frag(tr, first)]).unwrap(),
        )
        .unwrap();
        for &s in it {
            f.push_back(
                net,
                BaseCluster::new(SegmentId::new(s), vec![frag(tr, s)]).unwrap(),
            )
            .unwrap();
        }
        f
    }

    fn cfg(epsilon: f64, use_elb: bool) -> NeatConfig {
        NeatConfig {
            epsilon,
            use_elb,
            ..NeatConfig::default()
        }
    }

    #[test]
    fn nearby_flows_merge() {
        // Chain of 10 segments (100 m each). Flow A = s0..s3 (ends n0,
        // n4), flow B = s5..s8 (ends n5, n9). Definition 11 pairs each
        // endpoint with its nearest counterpart: max-min = 500 m (the
        // n0↔n5 / n4↔n9 correspondence).
        let net = chain_network(11, 100.0, 10.0);
        let a = flow_on(&net, &[0, 1, 2, 3], 1);
        let b = flow_on(&net, &[5, 6, 7, 8], 2);
        let out =
            refine_flow_clusters(&net, vec![a.clone(), b.clone()], &cfg(500.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].flows().len(), 2);
        // Just below the Hausdorff distance they stay apart.
        let out = refine_flow_clusters(&net, vec![a, b], &cfg(499.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn far_flows_stay_apart() {
        let net = chain_network(30, 100.0, 10.0);
        let a = flow_on(&net, &[0, 1], 1);
        let b = flow_on(&net, &[27, 28], 2);
        let out = refine_flow_clusters(&net, vec![a, b], &cfg(500.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn hausdorff_uses_max_not_min() {
        // Flow A = s0..s1 (endpoints n0, n2); flow B = s2 (endpoints n2,
        // n3). Nearest endpoints coincide (n2) but the far ends are 300 m /
        // 200 m away. dist = max over maxmin = 300 (n0's nearest B endpoint
        // is n2 at 200m? n0→n2=200, n0→n3=300 → min 200; n2→{n0,n2}: 0;
        // n3→{n0,n2} = min(300,100)=100; A side: n0:200, n2:0 → max 200;
        // B side: max(0, 100) = 100; overall 200.
        let net = chain_network(5, 100.0, 10.0);
        let a = flow_on(&net, &[0, 1], 1);
        let b = flow_on(&net, &[2], 2);
        // ε just below 200 keeps them apart…
        let out =
            refine_flow_clusters(&net, vec![a.clone(), b.clone()], &cfg(199.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 2);
        // …and ε at 200 merges them.
        let out = refine_flow_clusters(&net, vec![a, b], &cfg(200.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 1);
    }

    #[test]
    fn elb_and_dijkstra_agree() {
        let net = chain_network(20, 100.0, 10.0);
        let flows = vec![
            flow_on(&net, &[0, 1, 2], 1),
            flow_on(&net, &[4, 5], 2),
            flow_on(&net, &[10, 11, 12, 13], 3),
            flow_on(&net, &[16, 17], 4),
        ];
        let with_elb = refine_flow_clusters(&net, flows.clone(), &cfg(250.0, true)).unwrap();
        let mut dij = cfg(250.0, false);
        dij.sp_strategy = SpStrategy::Dijkstra;
        let without = refine_flow_clusters(&net, flows, &dij).unwrap();
        let shape = |o: &Phase3Output| {
            let mut v: Vec<usize> = o.clusters.iter().map(|c| c.flows().len()).collect();
            v.sort();
            v
        };
        assert_eq!(shape(&with_elb), shape(&without));
        // ELB actually skipped work.
        assert!(with_elb.stats.elb_skips > 0);
        assert!(with_elb.stats.sp_computations < without.stats.sp_computations);
    }

    #[test]
    fn seeded_by_longest_route() {
        let net = chain_network(12, 100.0, 10.0);
        let short = flow_on(&net, &[0], 1);
        let long = flow_on(&net, &[3, 4, 5, 6], 2);
        let out = refine_flow_clusters(&net, vec![short, long], &cfg(50.0, true)).unwrap();
        // Longest route seeds the first cluster.
        assert_eq!(out.clusters[0].flows()[0].members().len(), 4);
    }

    #[test]
    fn transitive_chain_merges_via_density_connectivity() {
        // A–B within ε (400 m), B–C within ε, A–C beyond ε (800 m): all
        // three join one cluster through B (density-connected set).
        let net = chain_network(16, 100.0, 10.0);
        let a = flow_on(&net, &[0, 1], 1); // ends n0,n2
        let b = flow_on(&net, &[4, 5], 2); // ends n4,n6
        let c = flow_on(&net, &[8, 9], 3); // ends n8,n10
        let out = refine_flow_clusters(&net, vec![a, b, c], &cfg(400.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].flows().len(), 3);
    }

    #[test]
    fn empty_input() {
        let net = chain_network(3, 100.0, 10.0);
        let out = refine_flow_clusters(&net, vec![], &cfg(100.0, true)).unwrap();
        assert!(out.clusters.is_empty());
        assert_eq!(out.stats, Phase3Stats::default());
    }

    #[test]
    fn single_flow_single_cluster() {
        let net = chain_network(4, 100.0, 10.0);
        let out =
            refine_flow_clusters(&net, vec![flow_on(&net, &[1, 2], 1)], &cfg(10.0, true)).unwrap();
        assert_eq!(out.clusters.len(), 1);
    }

    #[test]
    fn cache_avoids_recomputation() {
        let net = chain_network(12, 100.0, 10.0);
        // Flows sharing endpoints → repeated node pairs.
        let flows = vec![
            flow_on(&net, &[0, 1], 1),
            flow_on(&net, &[2, 3], 2),
            flow_on(&net, &[4, 5], 3),
        ];
        let out = refine_flow_clusters(&net, flows, &cfg(1e6, true)).unwrap();
        assert!(out.stats.sp_cache_hits > 0);
    }

    #[test]
    fn full_route_distance_is_stricter_than_endpoints() {
        // Two parallel-ish flows sharing endpoints-region but diverging in
        // the middle cannot be built on a chain; instead compare a long
        // flow against a short one whose endpoints sit near the long
        // flow's ends via the chain: endpoints measure sees distance 200,
        // full-route sees the far interior nodes too.
        let net = chain_network(12, 100.0, 10.0);
        let long = flow_on(&net, &[0, 1, 2, 3, 4, 5], 1); // ends n0, n6
        let short = flow_on(&net, &[7, 8], 2); // ends n7, n9
                                               // Endpoint Hausdorff: n0→{n7,n9}=700; n6→100; n7→100; n9→300 → 700.
                                               // Full-route Hausdorff: same max (n0 is farthest) → equal here;
                                               // verify both settings agree on the decision at ε = 700.
        for (rd, expect_merge) in [
            (RouteDistance::Endpoints, true),
            (RouteDistance::FullRoute, true),
        ] {
            let mut c = cfg(700.0, true);
            c.route_distance = rd;
            let out = refine_flow_clusters(&net, vec![long.clone(), short.clone()], &c).unwrap();
            assert_eq!(out.clusters.len() == 1, expect_merge, "{rd:?}");
        }
        // At ε = 300 the endpoint measure keeps them apart too (700 > 300).
        let mut c = cfg(300.0, true);
        c.route_distance = RouteDistance::FullRoute;
        let out = refine_flow_clusters(&net, vec![long, short], &c).unwrap();
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn full_route_separates_what_endpoints_merge() {
        // A horseshoe: flow A runs along the bottom, flow B is a short
        // stub near both of A's endpoints but far from A's middle… on a
        // ring network. Build a loop of 12 nodes (100 m apart).
        let mut b = neat_rnet::RoadNetworkBuilder::new();
        let n: Vec<_> = (0..12)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / 12.0;
                b.add_node(neat_rnet::Point::new(200.0 * ang.cos(), 200.0 * ang.sin()))
            })
            .collect();
        let mut segs = Vec::new();
        for i in 0..12 {
            segs.push(b.add_segment(n[i], n[(i + 1) % 12], 10.0).unwrap());
        }
        let net = b.build().unwrap();
        // Flow A: half the ring (segments 0..5, endpoints n0 and n6).
        // Flow B: one segment on the other side (segment 8: n8-n9).
        let mk = |sids: &[neat_rnet::SegmentId], tr: u64| {
            let mut it = sids.iter();
            let mut f = FlowCluster::from_base(
                &net,
                BaseCluster::new(*it.next().unwrap(), vec![frag2(tr, *sids.first().unwrap())])
                    .unwrap(),
            )
            .unwrap();
            for &s in it {
                f.push_back(&net, BaseCluster::new(s, vec![frag2(tr, s)]).unwrap())
                    .unwrap();
            }
            f
        };
        let a = mk(&segs[0..6], 1);
        let b_flow = mk(&segs[8..9], 2);
        // Endpoint distances (along the ring): A ends at n0/n6; B at n8/n9.
        // n6→n8 = 2 hops ≈ 207 m; n0→n9 = 3 hops ≈ 310 m; endpoint
        // Hausdorff ≈ 311. Full-route adds A's middle nodes (n3 is 5 hops
        // from B) → ≈ 518. ε between the two separates the settings.
        let seg_len = net.segment(segs[0]).unwrap().length;
        let eps = 4.0 * seg_len; // between 3 and 5 hops
        let mut c = cfg(eps, true);
        c.route_distance = RouteDistance::Endpoints;
        let merged = refine_flow_clusters(&net, vec![a.clone(), b_flow.clone()], &c).unwrap();
        assert_eq!(merged.clusters.len(), 1, "endpoints should merge");
        c.route_distance = RouteDistance::FullRoute;
        let apart = refine_flow_clusters(&net, vec![a, b_flow], &c).unwrap();
        assert_eq!(apart.clusters.len(), 2, "full route should separate");
    }

    #[test]
    fn deterministic_output() {
        let net = chain_network(20, 100.0, 10.0);
        let mk = || {
            vec![
                flow_on(&net, &[0, 1, 2], 1),
                flow_on(&net, &[5, 6], 2),
                flow_on(&net, &[9, 10, 11], 3),
                flow_on(&net, &[15], 4),
            ]
        };
        let a = refine_flow_clusters(&net, mk(), &cfg(300.0, true)).unwrap();
        let b = refine_flow_clusters(&net, mk(), &cfg(300.0, true)).unwrap();
        assert_eq!(a.clusters, b.clusters);
    }

    /// A ring network where Euclidean chords undercut path distances, so
    /// the ALT bound has room to beat the ELB.
    fn ring_net() -> (RoadNetwork, Vec<neat_rnet::SegmentId>) {
        let mut b = neat_rnet::RoadNetworkBuilder::new();
        let n: Vec<_> = (0..16)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / 16.0;
                b.add_node(neat_rnet::Point::new(400.0 * ang.cos(), 400.0 * ang.sin()))
            })
            .collect();
        let mut segs = Vec::new();
        for i in 0..16 {
            segs.push(b.add_segment(n[i], n[(i + 1) % 16], 10.0).unwrap());
        }
        (b.build().unwrap(), segs)
    }

    fn ring_flow(
        net: &RoadNetwork,
        segs: &[neat_rnet::SegmentId],
        range: std::ops::Range<usize>,
        tr: u64,
    ) -> FlowCluster {
        let mut it = segs[range].iter();
        let first = *it.next().unwrap();
        let mut f = FlowCluster::from_base(
            net,
            BaseCluster::new(first, vec![frag2(tr, first)]).unwrap(),
        )
        .unwrap();
        for &s in it {
            f.push_back(net, BaseCluster::new(s, vec![frag2(tr, s)]).unwrap())
                .unwrap();
        }
        f
    }

    #[test]
    fn alt_bound_skips_pairs_elb_cannot_without_changing_output() {
        let (net, segs) = ring_net();
        // Flows on opposite arcs: endpoint chords (Euclidean) are much
        // shorter than the around-the-ring network distances. Per-hop
        // chord ≈ 156 m, so the nearest endpoints (6 hops) are ≈ 936 m
        // apart on the network while every straight-line chord is at most
        // the diameter (800 m).
        let a = ring_flow(&net, &segs, 0..2, 1);
        let b = ring_flow(&net, &segs, 8..10, 2);
        let flows = vec![a, b];
        // ε above every chord but below the shortest path distance.
        let eps = 900.0;
        // With every node a landmark the ALT bound is exact, so any pair
        // with network distance > ε ≥ its chord must be alt-skipped.
        // Pairwise searches (no per-seed tables) so the saving is visible
        // directly in `sp_computations`.
        let mut with_alt = cfg(eps, true);
        with_alt.alt_landmarks = 16;
        with_alt.endpoint_tables = false;
        let mut no_alt = cfg(eps, true);
        no_alt.alt_landmarks = 0;
        no_alt.endpoint_tables = false;
        let out_alt = refine_flow_clusters(&net, flows.clone(), &with_alt).unwrap();
        let out_plain = refine_flow_clusters(&net, flows, &no_alt).unwrap();
        assert_eq!(
            out_alt.clusters, out_plain.clusters,
            "ALT must not change output"
        );
        assert!(out_alt.stats.alt_skips > 0, "stats: {:?}", out_alt.stats);
        assert!(
            out_alt.stats.sp_computations + out_alt.stats.one_to_many_scans
                < out_plain.stats.sp_computations + out_plain.stats.one_to_many_scans,
            "ALT skips must save searches: {:?} vs {:?}",
            out_alt.stats,
            out_plain.stats
        );
    }

    #[test]
    fn endpoint_tables_match_pairwise_searches() {
        let net = chain_network(24, 100.0, 10.0);
        let mk = || {
            vec![
                flow_on(&net, &[0, 1, 2], 1),
                flow_on(&net, &[4, 5], 2),
                flow_on(&net, &[8, 9, 10], 3),
                flow_on(&net, &[13, 14], 4),
                flow_on(&net, &[17, 18, 19], 5),
            ]
        };
        let mut tab = cfg(450.0, true);
        tab.endpoint_tables = true;
        let mut pair = cfg(450.0, true);
        pair.endpoint_tables = false;
        let with_tables = refine_flow_clusters(&net, mk(), &tab).unwrap();
        let pairwise = refine_flow_clusters(&net, mk(), &pair).unwrap();
        assert_eq!(with_tables.clusters, pairwise.clusters);
        // Tables fully replace point-to-point searches…
        assert_eq!(with_tables.stats.sp_computations, 0);
        assert!(with_tables.stats.one_to_many_scans > 0);
        // …and the filter counters agree pair by pair.
        assert_eq!(
            with_tables.stats.pairs_considered,
            pairwise.stats.pairs_considered
        );
        assert_eq!(with_tables.stats.elb_skips, pairwise.stats.elb_skips);
        assert_eq!(with_tables.stats.alt_skips, pairwise.stats.alt_skips);
    }

    #[test]
    fn parallel_scan_matches_sequential_clusters_and_stats() {
        let net = chain_network(40, 100.0, 10.0);
        let mk = || {
            (0..12)
                .map(|i| flow_on(&net, &[3 * i, 3 * i + 1], i as u64 + 1))
                .collect::<Vec<_>>()
        };
        for endpoint_tables in [true, false] {
            let mut seq = cfg(350.0, true);
            seq.threads = 1;
            seq.endpoint_tables = endpoint_tables;
            let base = refine_flow_clusters(&net, mk(), &seq).unwrap();
            for threads in [2, 8] {
                let mut par = seq;
                par.threads = threads;
                let out = refine_flow_clusters(&net, mk(), &par).unwrap();
                assert_eq!(out.clusters, base.clusters, "threads={threads}");
                assert_eq!(out.stats, base.stats, "threads={threads}");
            }
        }
    }
}
