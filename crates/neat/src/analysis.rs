//! Summary statistics over clustering results.
//!
//! The paper's Figures 5(a)–(c) compare clusterings by the lengths of
//! their representative routes and by cluster counts; this module computes
//! those summaries (plus cardinality and coverage measures useful to
//! downstream applications) for any set of flow clusters.

use crate::model::{FlowCluster, TrajectoryCluster};
use neat_rnet::RoadNetwork;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Aggregate statistics of a set of flow clusters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowStatistics {
    /// Number of flow clusters.
    pub count: usize,
    /// Mean representative-route length in metres (Figure 5a).
    pub avg_route_length_m: f64,
    /// Maximum representative-route length in metres (Figure 5b).
    pub max_route_length_m: f64,
    /// Mean trajectory cardinality per flow.
    pub avg_cardinality: f64,
    /// Number of distinct road segments covered by the flows.
    pub covered_segments: usize,
    /// Number of distinct trajectories participating in any flow.
    pub distinct_trajectories: usize,
}

/// Computes [`FlowStatistics`] over `flows`.
pub fn flow_statistics(net: &RoadNetwork, flows: &[FlowCluster]) -> FlowStatistics {
    if flows.is_empty() {
        return FlowStatistics::default();
    }
    let lens: Vec<f64> = flows.iter().map(|f| f.route_length(net)).collect();
    let mut segments = BTreeSet::new();
    let mut trajectories = BTreeSet::new();
    for f in flows {
        segments.extend(f.route());
        trajectories.extend(f.participating_trajectories().iter().copied());
    }
    FlowStatistics {
        count: flows.len(),
        avg_route_length_m: lens.iter().sum::<f64>() / lens.len() as f64,
        max_route_length_m: lens.iter().copied().fold(0.0, f64::max),
        avg_cardinality: flows
            .iter()
            .map(|f| f.trajectory_cardinality() as f64)
            .sum::<f64>()
            / flows.len() as f64,
        covered_segments: segments.len(),
        distinct_trajectories: trajectories.len(),
    }
}

/// Direction of travel of the t-fragments in a base cluster along its
/// representative segment: the paper preserves movement direction in
/// t-fragments, so a cluster's traffic can be split by travel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DirectionSplit {
    /// Fragments travelling from the segment's `a` endpoint towards `b`.
    pub forward: usize,
    /// Fragments travelling from `b` towards `a`.
    pub backward: usize,
    /// Fragments with no measurable displacement along the segment
    /// (single-sample fragments or stationary objects).
    pub undetermined: usize,
}

impl DirectionSplit {
    /// Fraction of directed fragments going forward, in `[0, 1]`;
    /// 0.5 when no fragment has a measurable direction.
    pub fn forward_fraction(&self) -> f64 {
        let directed = self.forward + self.backward;
        if directed == 0 {
            0.5
        } else {
            self.forward as f64 / directed as f64
        }
    }
}

/// Splits a base cluster's fragments by travel direction along its
/// representative segment (projection of first→last displacement onto
/// the segment's `a → b` axis).
pub fn direction_split(net: &RoadNetwork, cluster: &crate::model::BaseCluster) -> DirectionSplit {
    let mut out = DirectionSplit::default();
    let Ok(seg) = net.segment(cluster.segment()) else {
        out.undetermined = cluster.density();
        return out;
    };
    let axis = net.position(seg.b) - net.position(seg.a);
    for f in cluster.fragments() {
        let disp = f.last.position - f.first.position;
        let along = disp.dot(axis);
        if along > 1e-9 {
            out.forward += 1;
        } else if along < -1e-9 {
            out.backward += 1;
        } else {
            out.undetermined += 1;
        }
    }
    out
}

/// Aggregate statistics of the final trajectory clusters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterStatistics {
    /// Number of trajectory clusters.
    pub count: usize,
    /// Mean flows per cluster.
    pub avg_flows_per_cluster: f64,
    /// Size (in flows) of the largest cluster.
    pub max_flows_per_cluster: usize,
    /// Mean total route length per cluster, in metres.
    pub avg_total_route_length_m: f64,
}

/// Computes [`ClusterStatistics`] over `clusters`.
pub fn cluster_statistics(net: &RoadNetwork, clusters: &[TrajectoryCluster]) -> ClusterStatistics {
    if clusters.is_empty() {
        return ClusterStatistics::default();
    }
    ClusterStatistics {
        count: clusters.len(),
        avg_flows_per_cluster: clusters.iter().map(|c| c.flows().len() as f64).sum::<f64>()
            / clusters.len() as f64,
        max_flows_per_cluster: clusters.iter().map(|c| c.flows().len()).max().unwrap_or(0),
        avg_total_route_length_m: clusters
            .iter()
            .map(|c| c.total_route_length(net))
            .sum::<f64>()
            / clusters.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BaseCluster;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{TFragment, TrajectoryId};

    fn frag(tr: u64, seg: usize) -> TFragment {
        let loc = RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), 0.0);
        TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(seg),
            first: loc,
            last: loc,
            point_count: 2,
        }
    }

    fn flow(net: &neat_rnet::RoadNetwork, segs: &[usize], trs: &[u64]) -> FlowCluster {
        let mut it = segs.iter();
        let first = *it.next().unwrap();
        let mk = |s: usize| {
            BaseCluster::new(SegmentId::new(s), trs.iter().map(|&t| frag(t, s)).collect()).unwrap()
        };
        let mut f = FlowCluster::from_base(net, mk(first)).unwrap();
        for &s in it {
            f.push_back(net, mk(s)).unwrap();
        }
        f
    }

    #[test]
    fn empty_inputs_give_defaults() {
        let net = chain_network(3, 100.0, 10.0);
        assert_eq!(flow_statistics(&net, &[]), FlowStatistics::default());
        assert_eq!(cluster_statistics(&net, &[]), ClusterStatistics::default());
    }

    #[test]
    fn flow_statistics_aggregate() {
        let net = chain_network(8, 100.0, 10.0);
        let flows = vec![
            flow(&net, &[0, 1, 2], &[1, 2]), // 300 m, card 2
            flow(&net, &[4], &[2, 3, 4]),    // 100 m, card 3
        ];
        let s = flow_statistics(&net, &flows);
        assert_eq!(s.count, 2);
        assert!((s.avg_route_length_m - 200.0).abs() < 1e-9);
        assert!((s.max_route_length_m - 300.0).abs() < 1e-9);
        assert!((s.avg_cardinality - 2.5).abs() < 1e-9);
        assert_eq!(s.covered_segments, 4);
        assert_eq!(s.distinct_trajectories, 4); // trajectories 1..=4
    }

    #[test]
    fn direction_split_classifies_fragments() {
        let net = chain_network(3, 100.0, 10.0);
        // Segment 0 runs from x=0 (a) to x=100 (b).
        let mk = |tr: u64, x0: f64, x1: f64| TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(0),
            first: RoadLocation::new(SegmentId::new(0), Point::new(x0, 0.0), 0.0),
            last: RoadLocation::new(SegmentId::new(0), Point::new(x1, 0.0), 5.0),
            point_count: 2,
        };
        let cluster = BaseCluster::new(
            SegmentId::new(0),
            vec![
                mk(1, 10.0, 90.0), // forward
                mk(2, 20.0, 80.0), // forward
                mk(3, 90.0, 10.0), // backward
                mk(4, 50.0, 50.0), // stationary
            ],
        )
        .unwrap();
        let split = super::direction_split(&net, &cluster);
        assert_eq!(split.forward, 2);
        assert_eq!(split.backward, 1);
        assert_eq!(split.undetermined, 1);
        assert!((split.forward_fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn direction_split_of_unknown_segment_is_undetermined() {
        let net = chain_network(3, 100.0, 10.0);
        let cluster = BaseCluster::new(SegmentId::new(77), vec![frag(1, 77)]).unwrap();
        let split = super::direction_split(&net, &cluster);
        assert_eq!(split.undetermined, 1);
        assert_eq!(split.forward_fraction(), 0.5);
    }

    #[test]
    fn cluster_statistics_aggregate() {
        let net = chain_network(10, 100.0, 10.0);
        let clusters = vec![
            TrajectoryCluster::new(vec![flow(&net, &[0, 1], &[1]), flow(&net, &[3], &[2])]),
            TrajectoryCluster::new(vec![flow(&net, &[6, 7, 8], &[3])]),
        ];
        let s = cluster_statistics(&net, &clusters);
        assert_eq!(s.count, 2);
        assert!((s.avg_flows_per_cluster - 1.5).abs() < 1e-9);
        assert_eq!(s.max_flows_per_cluster, 2);
        assert!((s.avg_total_route_length_m - 300.0).abs() < 1e-9);
    }
}
