//! Spatial queries over clustering results.
//!
//! The paper's motivating applications (Section I) both ask questions of
//! the *result*: "which major flows pass near this store?", "which routes
//! carry enough riders for a bus line?". [`FlowIndex`] answers those
//! without rescanning the network: it indexes the flows' representative
//! routes by segment and supports point-radius and segment lookups.

use crate::model::FlowCluster;
use neat_rnet::geometry::point_segment_distance;
use neat_rnet::{Point, RoadNetwork, SegmentId, SegmentIndex};
use std::collections::HashMap;

/// A hit returned by [`FlowIndex::flows_near`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowHit {
    /// Index of the flow in the slice the index was built from.
    pub flow: usize,
    /// Distance from the query point to the nearest segment of the flow's
    /// representative route, in metres.
    pub distance: f64,
}

/// Segment-keyed index over a set of flow clusters.
///
/// ```
/// use neat_core::query::FlowIndex;
/// use neat_core::{BaseCluster, FlowCluster};
/// use neat_rnet::netgen::chain_network;
/// use neat_rnet::{Point, RoadLocation, SegmentId};
/// use neat_traj::{TFragment, TrajectoryId};
///
/// # fn main() -> Result<(), neat_core::NeatError> {
/// let net = chain_network(4, 100.0, 13.9);
/// let loc = RoadLocation::new(SegmentId::new(0), Point::new(0.0, 0.0), 0.0);
/// let frag = TFragment { trajectory: TrajectoryId::new(1), segment: SegmentId::new(0),
///                        first: loc, last: loc, point_count: 2 };
/// let flow = FlowCluster::from_base(&net, BaseCluster::new(SegmentId::new(0), vec![frag])?)?;
/// let flows = vec![flow];
/// let index = FlowIndex::build(&net, &flows);
/// let hits = index.flows_near(&net, Point::new(50.0, 20.0), 50.0);
/// assert_eq!(hits.len(), 1);
/// assert!((hits[0].distance - 20.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlowIndex {
    /// Which flows cover each road segment.
    by_segment: HashMap<SegmentId, Vec<usize>>,
    /// Spatial index over the full network's segments.
    spatial: SegmentIndex,
}

impl FlowIndex {
    /// Builds an index over `flows` (order defines the hit indices).
    pub fn build(net: &RoadNetwork, flows: &[FlowCluster]) -> Self {
        let mut by_segment: HashMap<SegmentId, Vec<usize>> = HashMap::new();
        for (i, f) in flows.iter().enumerate() {
            for sid in f.route() {
                by_segment.entry(sid).or_default().push(i);
            }
        }
        FlowIndex {
            by_segment,
            spatial: SegmentIndex::build(net, 250.0),
        }
    }

    /// Flows whose representative route covers road segment `sid`.
    pub fn flows_on(&self, sid: SegmentId) -> &[usize] {
        self.by_segment.get(&sid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct segments covered by any flow.
    pub fn covered_segment_count(&self) -> usize {
        self.by_segment.len()
    }

    /// Flows whose representative route passes within `radius` metres of
    /// `point`, sorted by distance (ties by flow index). Each flow is
    /// reported once with its closest approach.
    pub fn flows_near(&self, net: &RoadNetwork, point: Point, radius: f64) -> Vec<FlowHit> {
        let mut best: HashMap<usize, f64> = HashMap::new();
        for hit in self.spatial.within(net, point, radius) {
            let Some(owners) = self.by_segment.get(&hit.segment) else {
                continue;
            };
            let seg = net.segment(hit.segment).expect("indexed segment"); // lint:allow(L1) reason=index hits reference segments of the same network
            let d = point_segment_distance(point, net.position(seg.a), net.position(seg.b));
            for &f in owners {
                let e = best.entry(f).or_insert(f64::INFINITY);
                if d < *e {
                    *e = d;
                }
            }
        }
        let mut out: Vec<FlowHit> = best
            .into_iter()
            .map(|(flow, distance)| FlowHit { flow, distance })
            .collect();
        out.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.flow.cmp(&b.flow))
        });
        out
    }

    /// Total trajectory reach of the flows within `radius` of `point` —
    /// the "advertising reach" quantity of the paper's second motivating
    /// application.
    pub fn reach_near(
        &self,
        net: &RoadNetwork,
        flows: &[FlowCluster],
        point: Point,
        radius: f64,
    ) -> usize {
        let mut ids = std::collections::BTreeSet::new();
        for hit in self.flows_near(net, point, radius) {
            ids.extend(flows[hit.flow].participating_trajectories().iter().copied());
        }
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BaseCluster;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::RoadLocation;
    use neat_traj::{TFragment, TrajectoryId};

    fn frag(tr: u64, seg: usize) -> TFragment {
        let loc = RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), 0.0);
        TFragment {
            trajectory: TrajectoryId::new(tr),
            segment: SegmentId::new(seg),
            first: loc,
            last: loc,
            point_count: 2,
        }
    }

    fn flow(net: &RoadNetwork, segs: &[usize], trs: &[u64]) -> FlowCluster {
        let mk = |s: usize| {
            BaseCluster::new(SegmentId::new(s), trs.iter().map(|&t| frag(t, s)).collect()).unwrap()
        };
        let mut it = segs.iter();
        let mut f = FlowCluster::from_base(net, mk(*it.next().unwrap())).unwrap();
        for &s in it {
            f.push_back(net, mk(s)).unwrap();
        }
        f
    }

    #[test]
    fn flows_on_segment() {
        let net = chain_network(8, 100.0, 10.0);
        // Two flows sharing segment 2 (Phase 2 never produces overlap,
        // but the index supports flows from multiple runs).
        let flows = vec![flow(&net, &[0, 1, 2], &[1]), flow(&net, &[2, 3], &[2])];
        let idx = FlowIndex::build(&net, &flows);
        assert_eq!(idx.flows_on(SegmentId::new(0)), &[0]);
        assert_eq!(idx.flows_on(SegmentId::new(2)), &[0, 1]);
        assert!(idx.flows_on(SegmentId::new(6)).is_empty());
        assert_eq!(idx.covered_segment_count(), 4);
    }

    #[test]
    fn flows_near_point() {
        let net = chain_network(10, 100.0, 10.0);
        let flows = vec![flow(&net, &[0, 1], &[1]), flow(&net, &[7, 8], &[2])];
        let idx = FlowIndex::build(&net, &flows);
        // Point above segment 0.
        let hits = idx.flows_near(&net, Point::new(50.0, 30.0), 100.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].flow, 0);
        assert!((hits[0].distance - 30.0).abs() < 1e-9);
        // Point far from everything.
        assert!(idx
            .flows_near(&net, Point::new(450.0, 5000.0), 100.0)
            .is_empty());
    }

    #[test]
    fn hits_sorted_by_distance() {
        let net = chain_network(10, 100.0, 10.0);
        let flows = vec![flow(&net, &[0, 1], &[1]), flow(&net, &[2, 3], &[2])];
        let idx = FlowIndex::build(&net, &flows);
        // Point near the boundary between segments 1 and 2, slightly
        // inside segment 2's half.
        let hits = idx.flows_near(&net, Point::new(205.0, 10.0), 300.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].flow, 1);
        assert!(hits[0].distance <= hits[1].distance);
    }

    #[test]
    fn reach_counts_distinct_trajectories() {
        let net = chain_network(10, 100.0, 10.0);
        let flows = vec![
            flow(&net, &[0, 1], &[1, 2, 3]),
            flow(&net, &[2, 3], &[3, 4]),
        ];
        let idx = FlowIndex::build(&net, &flows);
        // Point covering both flows: distinct trajectories {1,2,3,4}.
        let reach = idx.reach_near(&net, &flows, Point::new(200.0, 0.0), 150.0);
        assert_eq!(reach, 4);
        // Far point reaches nobody.
        assert_eq!(idx.reach_near(&net, &flows, Point::new(0.0, 9e5), 100.0), 0);
    }

    #[test]
    fn empty_flows() {
        let net = chain_network(4, 100.0, 10.0);
        let flows: Vec<FlowCluster> = Vec::new();
        let idx = FlowIndex::build(&net, &flows);
        assert_eq!(idx.covered_segment_count(), 0);
        assert!(idx
            .flows_near(&net, Point::new(0.0, 0.0), 1000.0)
            .is_empty());
    }
}
