//! Candidate road segments for each raw sample.

use neat_rnet::geometry::Point;
use neat_rnet::index::SegmentHit;
use neat_rnet::{RoadNetwork, SegmentIndex};

/// Finds candidate segments near query points via a grid index.
#[derive(Debug, Clone)]
pub struct CandidateFinder<'a> {
    net: &'a RoadNetwork,
    index: SegmentIndex,
    radius: f64,
    max_candidates: usize,
}

impl<'a> CandidateFinder<'a> {
    /// Builds a finder with the given search radius (metres) and candidate
    /// cap. The index cell size is tied to the radius.
    pub fn new(net: &'a RoadNetwork, radius: f64, max_candidates: usize) -> Self {
        CandidateFinder {
            net,
            index: SegmentIndex::build(net, radius.max(25.0)),
            radius,
            max_candidates: max_candidates.max(1),
        }
    }

    /// Candidate segments for `p`: all segments within the radius (up to
    /// the cap, nearest first). When none fall inside the radius, the
    /// single nearest segment is returned so matching never dead-ends;
    /// an empty vector means the network has no segments at all.
    pub fn candidates(&self, p: Point) -> Vec<SegmentHit> {
        let mut hits = self.index.within(self.net, p, self.radius);
        if hits.is_empty() {
            return self.index.nearest(self.net, p).into_iter().collect();
        }
        hits.truncate(self.max_candidates);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;

    #[test]
    fn candidates_within_radius() {
        let net = chain_network(5, 100.0, 10.0);
        let f = CandidateFinder::new(&net, 30.0, 4);
        let hits = f.candidates(Point::new(150.0, 10.0));
        assert!(!hits.is_empty());
        assert_eq!(hits[0].segment.index(), 1);
        assert!(hits.iter().all(|h| h.distance <= 30.0));
    }

    #[test]
    fn falls_back_to_nearest_when_radius_empty() {
        let net = chain_network(5, 100.0, 10.0);
        let f = CandidateFinder::new(&net, 10.0, 4);
        let hits = f.candidates(Point::new(150.0, 500.0));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].distance > 10.0);
    }

    #[test]
    fn cap_limits_candidate_count() {
        let net = chain_network(30, 10.0, 10.0); // dense short segments
        let f = CandidateFinder::new(&net, 100.0, 3);
        let hits = f.candidates(Point::new(150.0, 0.0));
        assert!(hits.len() <= 3);
        // Nearest first.
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn empty_network_yields_no_candidates() {
        let net = neat_rnet::RoadNetworkBuilder::new().build().unwrap();
        let f = CandidateFinder::new(&net, 30.0, 4);
        assert!(f.candidates(Point::new(0.0, 0.0)).is_empty());
    }
}
