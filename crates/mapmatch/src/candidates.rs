//! Candidate road segments for each raw sample.

use neat_rnet::geometry::Point;
use neat_rnet::index::SegmentHit;
use neat_rnet::{GridScratch, RoadNetwork, SegmentIndex};

/// Finds candidate segments near query points via a grid index.
#[derive(Debug, Clone)]
pub struct CandidateFinder<'a> {
    net: &'a RoadNetwork,
    index: SegmentIndex,
    radius: f64,
    max_candidates: usize,
}

impl<'a> CandidateFinder<'a> {
    /// Builds a finder with the given search radius (metres) and candidate
    /// cap. The index cell size is tied to the radius.
    pub fn new(net: &'a RoadNetwork, radius: f64, max_candidates: usize) -> Self {
        CandidateFinder {
            net,
            index: SegmentIndex::build(net, radius.max(25.0)),
            radius,
            max_candidates: max_candidates.max(1),
        }
    }

    /// Candidate segments for `p`: all segments within the radius (up to
    /// the cap, nearest first). When none fall inside the radius, the
    /// single nearest segment is returned so matching never dead-ends;
    /// an empty vector means the network has no segments at all.
    pub fn candidates(&self, p: Point) -> Vec<SegmentHit> {
        let mut scratch = GridScratch::new();
        let mut hits = Vec::new();
        self.candidates_into(p, &mut scratch, &mut hits);
        hits
    }

    /// Allocation-reusing variant of [`CandidateFinder::candidates`]:
    /// clears `out` and fills it with the same hits in the same order,
    /// amortizing the per-point lookup buffers across a whole trace.
    /// Returns the number of grid queries performed (1, or 2 when the
    /// nearest-segment fallback fired).
    pub fn candidates_into(
        &self,
        p: Point,
        scratch: &mut GridScratch,
        out: &mut Vec<SegmentHit>,
    ) -> usize {
        self.index.within_into(p, self.radius, scratch, out);
        if out.is_empty() {
            out.extend(self.index.nearest(self.net, p));
            return 2;
        }
        out.truncate(self.max_candidates);
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;

    #[test]
    fn candidates_within_radius() {
        let net = chain_network(5, 100.0, 10.0);
        let f = CandidateFinder::new(&net, 30.0, 4);
        let hits = f.candidates(Point::new(150.0, 10.0));
        assert!(!hits.is_empty());
        assert_eq!(hits[0].segment.index(), 1);
        assert!(hits.iter().all(|h| h.distance <= 30.0));
    }

    #[test]
    fn falls_back_to_nearest_when_radius_empty() {
        let net = chain_network(5, 100.0, 10.0);
        let f = CandidateFinder::new(&net, 10.0, 4);
        let hits = f.candidates(Point::new(150.0, 500.0));
        assert_eq!(hits.len(), 1);
        assert!(hits[0].distance > 10.0);
    }

    #[test]
    fn cap_limits_candidate_count() {
        let net = chain_network(30, 10.0, 10.0); // dense short segments
        let f = CandidateFinder::new(&net, 100.0, 3);
        let hits = f.candidates(Point::new(150.0, 0.0));
        assert!(hits.len() <= 3);
        // Nearest first.
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn candidates_into_matches_allocating_path() {
        let net = chain_network(30, 10.0, 10.0);
        let f = CandidateFinder::new(&net, 100.0, 3);
        let mut scratch = GridScratch::new();
        let mut hits = Vec::new();
        for &(x, y) in &[(150.0, 0.0), (5.0, 3.0), (150.0, 500.0), (299.0, -2.0)] {
            let p = Point::new(x, y);
            let queries = f.candidates_into(p, &mut scratch, &mut hits);
            assert!(queries == 1 || queries == 2);
            let fresh = f.candidates(p);
            assert_eq!(hits.len(), fresh.len());
            for (a, b) in hits.iter().zip(&fresh) {
                assert_eq!(a.segment, b.segment);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
        }
    }

    #[test]
    fn empty_network_yields_no_candidates() {
        let net = neat_rnet::RoadNetworkBuilder::new().build().unwrap();
        let f = CandidateFinder::new(&net, 30.0, 4);
        assert!(f.candidates(Point::new(0.0, 0.0)).is_empty());
    }
}
