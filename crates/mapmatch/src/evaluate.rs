//! Map-matching quality evaluation against ground truth.
//!
//! Simulated datasets carry the true segment of every sample, so matcher
//! output can be scored exactly — the harness uses this to validate the
//! SLAMM-style matcher before trusting it in the pipeline experiments.

use neat_traj::Dataset;
use std::fmt;

/// Aggregate matcher accuracy over a dataset pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatchEvaluation {
    /// Samples compared.
    pub total: usize,
    /// Samples assigned the ground-truth segment.
    pub correct: usize,
    /// Samples assigned a segment adjacent to the ground-truth segment
    /// (near-misses around junctions).
    pub adjacent: usize,
}

impl MatchEvaluation {
    /// Exact-segment accuracy in `[0, 1]`; zero when nothing was compared.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Accuracy counting adjacent-segment assignments as correct.
    pub fn relaxed_accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.correct + self.adjacent) as f64 / self.total as f64
        }
    }
}

impl fmt::Display for MatchEvaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} exact ({:.1}%), {:.1}% within one segment",
            self.correct,
            self.total,
            100.0 * self.accuracy(),
            100.0 * self.relaxed_accuracy()
        )
    }
}

/// Compares matched output against ground truth, pairing trajectories by
/// position in the dataset and samples by index. Trajectories or samples
/// without a counterpart are skipped.
pub fn evaluate(
    net: &neat_rnet::RoadNetwork,
    truth: &Dataset,
    matched: &Dataset,
) -> MatchEvaluation {
    let mut ev = MatchEvaluation::default();
    for (t, m) in truth.trajectories().iter().zip(matched.trajectories()) {
        for (tp, mp) in t.points().iter().zip(m.points()) {
            ev.total += 1;
            if tp.segment == mp.segment {
                ev.correct += 1;
            } else if net.intersection_of(tp.segment, mp.segment).is_some() {
                ev.adjacent += 1;
            }
        }
    }
    ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{Trajectory, TrajectoryId};

    fn traj(id: u64, sids: &[usize]) -> Trajectory {
        let pts = sids
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                RoadLocation::new(SegmentId::new(s), Point::new(i as f64, 0.0), i as f64)
            })
            .collect();
        Trajectory::new(TrajectoryId::new(id), pts).unwrap()
    }

    #[test]
    fn perfect_match_scores_one() {
        let net = chain_network(5, 100.0, 10.0);
        let mut d = Dataset::new("t");
        d.push(traj(0, &[0, 0, 1, 2]));
        let ev = evaluate(&net, &d, &d);
        assert_eq!(ev.total, 4);
        assert_eq!(ev.correct, 4);
        assert_eq!(ev.accuracy(), 1.0);
        assert_eq!(ev.relaxed_accuracy(), 1.0);
    }

    #[test]
    fn adjacent_misses_counted_separately() {
        let net = chain_network(5, 100.0, 10.0);
        let mut truth = Dataset::new("t");
        truth.push(traj(0, &[0, 1]));
        let mut matched = Dataset::new("m");
        matched.push(traj(0, &[0, 2])); // s2 adjacent to s1
        let ev = evaluate(&net, &truth, &matched);
        assert_eq!(ev.correct, 1);
        assert_eq!(ev.adjacent, 1);
        assert_eq!(ev.accuracy(), 0.5);
        assert_eq!(ev.relaxed_accuracy(), 1.0);
    }

    #[test]
    fn far_misses_hurt_both_scores() {
        let net = chain_network(6, 100.0, 10.0);
        let mut truth = Dataset::new("t");
        truth.push(traj(0, &[0, 0]));
        let mut matched = Dataset::new("m");
        matched.push(traj(0, &[4, 4]));
        let ev = evaluate(&net, &truth, &matched);
        assert_eq!(ev.correct, 0);
        assert_eq!(ev.adjacent, 0);
        assert_eq!(ev.relaxed_accuracy(), 0.0);
    }

    #[test]
    fn empty_comparison_is_zero() {
        let net = chain_network(3, 100.0, 10.0);
        let ev = evaluate(&net, &Dataset::new("a"), &Dataset::new("b"));
        assert_eq!(ev.total, 0);
        assert_eq!(ev.accuracy(), 0.0);
    }

    #[test]
    fn display_mentions_percentages() {
        let ev = MatchEvaluation {
            total: 10,
            correct: 9,
            adjacent: 1,
        };
        let s = ev.to_string();
        assert!(s.contains("90.0%"));
        assert!(s.contains("100.0%"));
    }
}
