//! The look-ahead matcher: a Viterbi-style dynamic program over candidate
//! segments.

use crate::candidates::CandidateFinder;
use crate::error::MapMatchError;
use neat_rnet::geometry::project_onto_segment;
use neat_rnet::location::RawSample;
use neat_rnet::{RoadLocation, RoadNetwork, SegmentId};
use neat_traj::{Dataset, Trajectory, TrajectoryId};

/// Map-matching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// Candidate search radius in metres (≈ 3× the expected GPS error).
    pub candidate_radius_m: f64,
    /// Maximum candidates retained per sample.
    pub max_candidates: usize,
    /// Transition cost (metres-equivalent) for moving between *adjacent*
    /// segments.
    pub adjacent_cost: f64,
    /// Transition cost for moving between segments that are two hops
    /// apart (one segment skipped between samples).
    pub skip_cost: f64,
    /// Transition cost for any larger discontinuity — effectively a jump
    /// penalty that the look-ahead optimisation avoids when possible.
    pub jump_cost: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            candidate_radius_m: 30.0,
            max_candidates: 4,
            adjacent_cost: 2.0,
            skip_cost: 10.0,
            jump_cost: 200.0,
        }
    }
}

impl MatchConfig {
    fn validate(&self) -> Result<(), MapMatchError> {
        // NaN must fail too, hence the negated comparison.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.candidate_radius_m > 0.0) {
            return Err(MapMatchError::InvalidConfig(
                "candidate radius must be positive".into(),
            ));
        }
        if self.max_candidates == 0 {
            return Err(MapMatchError::InvalidConfig(
                "max candidates must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// A reusable map matcher bound to one road network.
#[derive(Debug, Clone)]
pub struct MapMatcher<'a> {
    net: &'a RoadNetwork,
    finder: CandidateFinder<'a>,
    config: MatchConfig,
}

impl<'a> MapMatcher<'a> {
    /// Creates a matcher over `net`.
    pub fn new(net: &'a RoadNetwork, config: MatchConfig) -> Self {
        let finder = CandidateFinder::new(net, config.candidate_radius_m, config.max_candidates);
        MapMatcher {
            net,
            finder,
            config,
        }
    }

    /// Matches one raw trace to road-network locations.
    ///
    /// Every output location carries the chosen segment id and the sample
    /// position snapped onto that segment's chord; timestamps are
    /// preserved.
    ///
    /// # Errors
    ///
    /// [`MapMatchError::EmptyTrace`] for an empty input,
    /// [`MapMatchError::EmptyNetwork`] when the network has no segments,
    /// and [`MapMatchError::InvalidConfig`] for bad parameters.
    pub fn match_trace(&self, trace: &[RawSample]) -> Result<Vec<RoadLocation>, MapMatchError> {
        self.config.validate()?;
        if trace.is_empty() {
            return Err(MapMatchError::EmptyTrace);
        }
        if self.net.segment_count() == 0 {
            return Err(MapMatchError::EmptyNetwork);
        }

        // Candidate sets per sample.
        let cand: Vec<Vec<neat_rnet::index::SegmentHit>> = trace
            .iter()
            .map(|s| self.finder.candidates(s.position))
            .collect();

        // Viterbi over the candidate lattice: cost = snap distance +
        // transition discontinuity. This is the "look-ahead" — the global
        // optimum can prefer a slightly-farther candidate now to avoid a
        // large discontinuity later (e.g. parallel-road flip-flops).
        let n = trace.len();
        let mut cost: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(n);
        cost.push(cand[0].iter().map(|h| h.distance).collect());
        back.push(vec![0; cand[0].len()]);
        for i in 1..n {
            let mut row_cost = Vec::with_capacity(cand[i].len());
            let mut row_back = Vec::with_capacity(cand[i].len());
            for hj in &cand[i] {
                let mut best = f64::INFINITY;
                let mut best_k = 0usize;
                for (k, hk) in cand[i - 1].iter().enumerate() {
                    let t = self.transition_cost(hk.segment, hj.segment);
                    let c = cost[i - 1][k] + t;
                    if c < best {
                        best = c;
                        best_k = k;
                    }
                }
                row_cost.push(best + hj.distance);
                row_back.push(best_k);
            }
            cost.push(row_cost);
            back.push(row_back);
        }

        // Backtrack the optimal assignment.
        let mut idx = (0..cand[n - 1].len())
            .min_by(|&a, &b| cost[n - 1][a].total_cmp(&cost[n - 1][b]))
            .expect("candidate sets are non-empty"); // lint:allow(L1) reason=candidate sets are checked non-empty when built
        let mut chosen = vec![0usize; n];
        chosen[n - 1] = idx;
        for i in (1..n).rev() {
            idx = back[i][idx];
            chosen[i - 1] = idx;
        }

        Ok(trace
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let sid = cand[i][chosen[i]].segment;
                let seg = self.net.segment(sid).expect("candidate segment exists"); // lint:allow(L1) reason=candidates are drawn from this network's own index
                let a = self.net.position(seg.a);
                let b = self.net.position(seg.b);
                let snapped = project_onto_segment(s.position, a, b).point;
                RoadLocation::new(sid, snapped, s.time)
            })
            .collect())
    }

    /// Matches a batch of traces into a [`Dataset`]. Traces that fail to
    /// produce a valid trajectory (fewer than two samples) are skipped and
    /// counted in the second return value.
    ///
    /// # Errors
    ///
    /// Propagates [`MapMatchError::EmptyNetwork`] / invalid-config errors;
    /// per-trace empty inputs are treated as skips instead.
    pub fn match_traces(
        &self,
        traces: &[Vec<RawSample>],
        name: impl Into<String>,
    ) -> Result<(Dataset, usize), MapMatchError> {
        self.config.validate()?;
        if self.net.segment_count() == 0 {
            return Err(MapMatchError::EmptyNetwork);
        }
        let mut dataset = Dataset::new(name);
        let mut skipped = 0usize;
        for (i, trace) in traces.iter().enumerate() {
            if trace.len() < 2 {
                skipped += 1;
                continue;
            }
            let pts = self.match_trace(trace)?;
            match Trajectory::new(TrajectoryId::new(i as u64), pts) {
                Ok(tr) => dataset.push(tr),
                Err(_) => skipped += 1,
            }
        }
        Ok((dataset, skipped))
    }

    /// Discontinuity cost between consecutive segment assignments.
    fn transition_cost(&self, from: SegmentId, to: SegmentId) -> f64 {
        if from == to {
            return 0.0;
        }
        if self.net.intersection_of(from, to).is_some() {
            return self.config.adjacent_cost;
        }
        // Two hops: a shared neighbour exists.
        let two_hop = self
            .net
            .adjacent_segments(from)
            .iter()
            .any(|&m| self.net.intersection_of(m, to).is_some());
        if two_hop {
            self.config.skip_cost
        } else {
            self.config.jump_cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadNetworkBuilder};

    #[test]
    fn clean_trace_matches_exactly() {
        let net = chain_network(5, 100.0, 10.0);
        let m = MapMatcher::new(&net, MatchConfig::default());
        let trace: Vec<RawSample> = (0..8)
            .map(|i| RawSample::new(Point::new(i as f64 * 50.0 + 25.0, 0.0), i as f64))
            .collect();
        let out = m.match_trace(&trace).unwrap();
        for (s, o) in trace.iter().zip(&out) {
            assert_eq!(o.time, s.time);
            let expect = (s.position.x / 100.0).floor() as usize;
            assert_eq!(o.segment.index(), expect.min(3));
        }
    }

    #[test]
    fn noisy_trace_snaps_to_road() {
        let net = chain_network(5, 100.0, 10.0);
        let m = MapMatcher::new(&net, MatchConfig::default());
        let trace = vec![
            RawSample::new(Point::new(50.0, 8.0), 0.0),
            RawSample::new(Point::new(150.0, -6.0), 10.0),
        ];
        let out = m.match_trace(&trace).unwrap();
        assert_eq!(out[0].position.y, 0.0); // snapped onto the chord
        assert_eq!(out[1].position.y, 0.0);
    }

    /// Two parallel roads 20 m apart — the SLAMM paper's flagship failure
    /// case for greedy matching.
    fn parallel_roads() -> neat_rnet::RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut south = Vec::new();
        let mut north = Vec::new();
        for i in 0..5 {
            south.push(b.add_node(Point::new(i as f64 * 100.0, 0.0)));
            north.push(b.add_node(Point::new(i as f64 * 100.0, 20.0)));
        }
        for i in 0..4 {
            b.add_segment(south[i], south[i + 1], 10.0).unwrap(); // sids 0,2,4,6
            b.add_segment(north[i], north[i + 1], 10.0).unwrap(); // sids 1,3,5,7
        }
        // Connect the two roads at the far ends only.
        b.add_segment(south[0], north[0], 10.0).unwrap();
        b.add_segment(south[4], north[4], 10.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookahead_resolves_parallel_road_ambiguity() {
        let net = parallel_roads();
        let m = MapMatcher::new(&net, MatchConfig::default());
        // Object drives the south road; one noisy sample leans north
        // (y = 12 > 10 = midline) but the consistent choice is south.
        let trace = vec![
            RawSample::new(Point::new(50.0, 1.0), 0.0),
            RawSample::new(Point::new(150.0, 12.0), 10.0),
            RawSample::new(Point::new(250.0, 2.0), 20.0),
            RawSample::new(Point::new(350.0, -1.0), 30.0),
        ];
        let out = m.match_trace(&trace).unwrap();
        // A greedy nearest-segment matcher would flip sample 1 to the
        // north road (sid 3); look-ahead keeps the whole path on the
        // south road (sids 0, 2, 4, 6).
        let sids: Vec<usize> = out.iter().map(|o| o.segment.index()).collect();
        assert_eq!(sids, vec![0, 2, 4, 6]);
    }

    #[test]
    fn empty_trace_is_an_error() {
        let net = chain_network(3, 100.0, 10.0);
        let m = MapMatcher::new(&net, MatchConfig::default());
        assert_eq!(m.match_trace(&[]), Err(MapMatchError::EmptyTrace));
    }

    #[test]
    fn empty_network_is_an_error() {
        let net = RoadNetworkBuilder::new().build().unwrap();
        let m = MapMatcher::new(&net, MatchConfig::default());
        let t = vec![RawSample::new(Point::new(0.0, 0.0), 0.0)];
        assert_eq!(m.match_trace(&t), Err(MapMatchError::EmptyNetwork));
    }

    #[test]
    fn invalid_config_rejected() {
        let net = chain_network(3, 100.0, 10.0);
        let c = MatchConfig {
            candidate_radius_m: 0.0,
            ..MatchConfig::default()
        };
        let m = MapMatcher::new(&net, MatchConfig::default());
        // Validation happens at match time with the stored config; build a
        // matcher with the bad config directly.
        let bad = MapMatcher::new(&net, c);
        let t = vec![RawSample::new(Point::new(0.0, 0.0), 0.0)];
        assert!(matches!(
            bad.match_trace(&t),
            Err(MapMatchError::InvalidConfig(_))
        ));
        drop(m);
    }

    #[test]
    fn batch_matching_skips_short_traces() {
        let net = chain_network(4, 100.0, 10.0);
        let m = MapMatcher::new(&net, MatchConfig::default());
        let traces = vec![
            vec![
                RawSample::new(Point::new(10.0, 0.0), 0.0),
                RawSample::new(Point::new(90.0, 0.0), 8.0),
            ],
            vec![RawSample::new(Point::new(10.0, 0.0), 0.0)], // too short
            vec![],
        ];
        let (ds, skipped) = m.match_traces(&traces, "batch").unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(skipped, 2);
    }
}
