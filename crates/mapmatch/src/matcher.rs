//! The look-ahead matcher: a Viterbi-style dynamic program over candidate
//! segments.

use crate::candidates::CandidateFinder;
use crate::error::MapMatchError;
use neat_rnet::geometry::project_run_onto_segment;
use neat_rnet::index::SegmentHit;
use neat_rnet::location::RawSample;
use neat_rnet::{GridScratch, Point, RoadLocation, RoadNetwork, SegmentId};
use neat_traj::{Dataset, Trajectory, TrajectoryId};

/// Deterministic work counters for a matching run.
///
/// Every field is a pure function of the input traces, the network and
/// the [`MatchConfig`] — independent of allocator state, thread count or
/// wall clock — which makes them usable as a CI regression gate (see the
/// `pr6_frontend` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchStats {
    /// Samples matched across all traces.
    pub samples_matched: u64,
    /// Grid queries issued for candidate sets (radius lookups plus
    /// nearest-segment fallbacks).
    pub candidate_lookups: u64,
    /// Viterbi cost/backpointer cells filled.
    pub matrix_cells: u64,
}

impl MatchStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: MatchStats) {
        self.samples_matched += other.samples_matched;
        self.candidate_lookups += other.candidate_lookups;
        self.matrix_cells += other.matrix_cells;
    }
}

/// Reusable buffers for [`MapMatcher::match_trace_into`].
///
/// One scratch amortizes every per-trace allocation of the matcher: the
/// grid-lookup buffers, the flat candidate lattice, the row-major
/// cost/backpointer matrices and the snap-projection runs. Steady-state
/// batch matching performs no per-trace heap allocation beyond the output
/// locations themselves.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    grid: GridScratch,
    /// Per-sample candidate buffer (cleared by `candidates_into`).
    cand_buf: Vec<SegmentHit>,
    /// Flat candidate lattice: sample `i`'s candidates occupy
    /// `cand[cand_starts[i]..cand_starts[i + 1]]`.
    cand: Vec<SegmentHit>,
    cand_starts: Vec<u32>,
    /// Row-major Viterbi matrices aligned with `cand`.
    cost: Vec<f64>,
    back: Vec<u32>,
    /// Chosen candidate index (within its row) per sample.
    chosen: Vec<u32>,
    /// Gathered raw positions / projected outputs for a same-segment run.
    run_x: Vec<f64>,
    run_y: Vec<f64>,
    snap_x: Vec<f64>,
    snap_y: Vec<f64>,
}

impl MatchScratch {
    /// A fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Map-matching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// Candidate search radius in metres (≈ 3× the expected GPS error).
    pub candidate_radius_m: f64,
    /// Maximum candidates retained per sample.
    pub max_candidates: usize,
    /// Transition cost (metres-equivalent) for moving between *adjacent*
    /// segments.
    pub adjacent_cost: f64,
    /// Transition cost for moving between segments that are two hops
    /// apart (one segment skipped between samples).
    pub skip_cost: f64,
    /// Transition cost for any larger discontinuity — effectively a jump
    /// penalty that the look-ahead optimisation avoids when possible.
    pub jump_cost: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            candidate_radius_m: 30.0,
            max_candidates: 4,
            adjacent_cost: 2.0,
            skip_cost: 10.0,
            jump_cost: 200.0,
        }
    }
}

impl MatchConfig {
    fn validate(&self) -> Result<(), MapMatchError> {
        // NaN must fail too, hence the negated comparison.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.candidate_radius_m > 0.0) {
            return Err(MapMatchError::InvalidConfig(
                "candidate radius must be positive".into(),
            ));
        }
        if self.max_candidates == 0 {
            return Err(MapMatchError::InvalidConfig(
                "max candidates must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// A reusable map matcher bound to one road network.
#[derive(Debug, Clone)]
pub struct MapMatcher<'a> {
    net: &'a RoadNetwork,
    finder: CandidateFinder<'a>,
    config: MatchConfig,
}

impl<'a> MapMatcher<'a> {
    /// Creates a matcher over `net`.
    pub fn new(net: &'a RoadNetwork, config: MatchConfig) -> Self {
        let finder = CandidateFinder::new(net, config.candidate_radius_m, config.max_candidates);
        MapMatcher {
            net,
            finder,
            config,
        }
    }

    /// Matches one raw trace to road-network locations.
    ///
    /// Every output location carries the chosen segment id and the sample
    /// position snapped onto that segment's chord; timestamps are
    /// preserved.
    ///
    /// # Errors
    ///
    /// [`MapMatchError::EmptyTrace`] for an empty input,
    /// [`MapMatchError::EmptyNetwork`] when the network has no segments,
    /// and [`MapMatchError::InvalidConfig`] for bad parameters.
    pub fn match_trace(&self, trace: &[RawSample]) -> Result<Vec<RoadLocation>, MapMatchError> {
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        self.match_trace_into(trace, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-reusing variant of [`MapMatcher::match_trace`]: clears
    /// `out` and fills it with the matched locations, reusing `scratch`
    /// for the candidate lattice, the Viterbi matrices and the snap
    /// buffers. Returns the deterministic work counters of this trace.
    ///
    /// # Errors
    ///
    /// Same contract as [`MapMatcher::match_trace`].
    pub fn match_trace_into(
        &self,
        trace: &[RawSample],
        scratch: &mut MatchScratch,
        out: &mut Vec<RoadLocation>,
    ) -> Result<MatchStats, MapMatchError> {
        self.config.validate()?;
        if trace.is_empty() {
            return Err(MapMatchError::EmptyTrace);
        }
        if self.net.segment_count() == 0 {
            return Err(MapMatchError::EmptyNetwork);
        }
        let mut stats = MatchStats::default();

        // Candidate sets per sample, packed into one flat lattice:
        // sample i's candidates live in cand[starts[i]..starts[i + 1]].
        let n = trace.len();
        scratch.cand.clear();
        scratch.cand_starts.clear();
        scratch.cand_starts.push(0);
        for s in trace {
            let queries =
                self.finder
                    .candidates_into(s.position, &mut scratch.grid, &mut scratch.cand_buf);
            stats.candidate_lookups += queries as u64;
            scratch.cand.extend_from_slice(&scratch.cand_buf);
            scratch.cand_starts.push(scratch.cand.len() as u32); // lint:allow(L4) reason=lattice width is samples x max_candidates, far below u32::MAX
        }
        let MatchScratch {
            cand,
            cand_starts,
            cost,
            back,
            chosen,
            run_x,
            run_y,
            snap_x,
            snap_y,
            ..
        } = scratch;
        let cand = &cand[..];
        let starts = |i: usize| cand_starts[i] as usize;

        // Viterbi over the candidate lattice: cost = snap distance +
        // transition discontinuity. This is the "look-ahead" — the global
        // optimum can prefer a slightly-farther candidate now to avoid a
        // large discontinuity later (e.g. parallel-road flip-flops).
        // Row-major flat matrices aligned with the lattice keep the inner
        // k-scan on one contiguous cache line per row.
        cost.clear();
        cost.resize(cand.len(), 0.0);
        back.clear();
        back.resize(cand.len(), 0);
        for j in starts(0)..starts(1) {
            cost[j] = cand[j].distance;
        }
        for i in 1..n {
            let (p0, p1) = (starts(i - 1), starts(i));
            for j in starts(i)..starts(i + 1) {
                let mut best = f64::INFINITY;
                let mut best_k = 0usize;
                for (k, e) in (p0..p1).enumerate() {
                    let t = self.transition_cost(cand[e].segment, cand[j].segment);
                    let c = cost[e] + t;
                    if c < best {
                        best = c;
                        best_k = k;
                    }
                }
                cost[j] = best + cand[j].distance;
                back[j] = best_k as u32; // lint:allow(L4) reason=row width is at most max_candidates
            }
        }
        stats.matrix_cells += cand.len() as u64;

        // Backtrack the optimal assignment.
        let last = starts(n - 1);
        let mut idx = (0..starts(n) - last)
            .min_by(|&a, &b| cost[last + a].total_cmp(&cost[last + b]))
            .expect("candidate sets are non-empty"); // lint:allow(L1) reason=candidate sets are checked non-empty when built
        chosen.clear();
        chosen.resize(n, 0);
        chosen[n - 1] = idx as u32; // lint:allow(L4) reason=row width is at most max_candidates
        for i in (1..n).rev() {
            idx = back[starts(i) + idx] as usize;
            chosen[i - 1] = idx as u32; // lint:allow(L4) reason=row width is at most max_candidates
        }

        // Snap each maximal same-segment run of samples through the
        // widened projection kernel (bit-identical to the scalar
        // point-at-a-time projection).
        out.clear();
        out.reserve(n);
        let mut i = 0usize;
        while i < n {
            let sid = cand[starts(i) + chosen[i] as usize].segment;
            let mut j = i + 1;
            while j < n && cand[starts(j) + chosen[j] as usize].segment == sid {
                j += 1;
            }
            let seg = self.net.segment(sid).expect("candidate segment exists"); // lint:allow(L1) reason=candidates are drawn from this network's own index
            let a = self.net.position(seg.a);
            let b = self.net.position(seg.b);
            run_x.clear();
            run_y.clear();
            for s in &trace[i..j] {
                run_x.push(s.position.x);
                run_y.push(s.position.y);
            }
            project_run_onto_segment(run_x, run_y, a, b, snap_x, snap_y);
            for (k, s) in trace[i..j].iter().enumerate() {
                out.push(RoadLocation::new(
                    sid,
                    Point::new(snap_x[k], snap_y[k]),
                    s.time,
                ));
            }
            i = j;
        }
        stats.samples_matched += n as u64;
        Ok(stats)
    }

    /// Matches a batch of traces into a [`Dataset`]. Traces that fail to
    /// produce a valid trajectory (fewer than two samples) are skipped and
    /// counted in the second return value.
    ///
    /// # Errors
    ///
    /// Propagates [`MapMatchError::EmptyNetwork`] / invalid-config errors;
    /// per-trace empty inputs are treated as skips instead.
    pub fn match_traces(
        &self,
        traces: &[Vec<RawSample>],
        name: impl Into<String>,
    ) -> Result<(Dataset, usize), MapMatchError> {
        let (dataset, skipped, _) = self.match_traces_stats(traces, name)?;
        Ok((dataset, skipped))
    }

    /// [`MapMatcher::match_traces`] with the batch's deterministic work
    /// counters. One [`MatchScratch`] is reused across the whole batch,
    /// so steady-state matching allocates only the output locations.
    ///
    /// # Errors
    ///
    /// Same contract as [`MapMatcher::match_traces`].
    pub fn match_traces_stats(
        &self,
        traces: &[Vec<RawSample>],
        name: impl Into<String>,
    ) -> Result<(Dataset, usize, MatchStats), MapMatchError> {
        self.config.validate()?;
        if self.net.segment_count() == 0 {
            return Err(MapMatchError::EmptyNetwork);
        }
        let mut dataset = Dataset::new(name);
        let mut skipped = 0usize;
        let mut stats = MatchStats::default();
        let mut scratch = MatchScratch::new();
        for (i, trace) in traces.iter().enumerate() {
            if trace.len() < 2 {
                skipped += 1;
                continue;
            }
            let mut pts = Vec::new();
            stats.merge(self.match_trace_into(trace, &mut scratch, &mut pts)?);
            match Trajectory::new(TrajectoryId::new(i as u64), pts) {
                Ok(tr) => dataset.push(tr),
                Err(_) => skipped += 1,
            }
        }
        Ok((dataset, skipped, stats))
    }

    /// Discontinuity cost between consecutive segment assignments.
    fn transition_cost(&self, from: SegmentId, to: SegmentId) -> f64 {
        if from == to {
            return 0.0;
        }
        if self.net.intersection_of(from, to).is_some() {
            return self.config.adjacent_cost;
        }
        // Two hops: a shared neighbour exists.
        let two_hop = self
            .net
            .adjacent_segments(from)
            .iter()
            .any(|&m| self.net.intersection_of(m, to).is_some());
        if two_hop {
            self.config.skip_cost
        } else {
            self.config.jump_cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadNetworkBuilder};

    #[test]
    fn clean_trace_matches_exactly() {
        let net = chain_network(5, 100.0, 10.0);
        let m = MapMatcher::new(&net, MatchConfig::default());
        let trace: Vec<RawSample> = (0..8)
            .map(|i| RawSample::new(Point::new(i as f64 * 50.0 + 25.0, 0.0), i as f64))
            .collect();
        let out = m.match_trace(&trace).unwrap();
        for (s, o) in trace.iter().zip(&out) {
            assert_eq!(o.time, s.time);
            let expect = (s.position.x / 100.0).floor() as usize;
            assert_eq!(o.segment.index(), expect.min(3));
        }
    }

    #[test]
    fn noisy_trace_snaps_to_road() {
        let net = chain_network(5, 100.0, 10.0);
        let m = MapMatcher::new(&net, MatchConfig::default());
        let trace = vec![
            RawSample::new(Point::new(50.0, 8.0), 0.0),
            RawSample::new(Point::new(150.0, -6.0), 10.0),
        ];
        let out = m.match_trace(&trace).unwrap();
        assert_eq!(out[0].position.y, 0.0); // snapped onto the chord
        assert_eq!(out[1].position.y, 0.0);
    }

    /// Two parallel roads 20 m apart — the SLAMM paper's flagship failure
    /// case for greedy matching.
    fn parallel_roads() -> neat_rnet::RoadNetwork {
        let mut b = RoadNetworkBuilder::new();
        let mut south = Vec::new();
        let mut north = Vec::new();
        for i in 0..5 {
            south.push(b.add_node(Point::new(i as f64 * 100.0, 0.0)));
            north.push(b.add_node(Point::new(i as f64 * 100.0, 20.0)));
        }
        for i in 0..4 {
            b.add_segment(south[i], south[i + 1], 10.0).unwrap(); // sids 0,2,4,6
            b.add_segment(north[i], north[i + 1], 10.0).unwrap(); // sids 1,3,5,7
        }
        // Connect the two roads at the far ends only.
        b.add_segment(south[0], north[0], 10.0).unwrap();
        b.add_segment(south[4], north[4], 10.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookahead_resolves_parallel_road_ambiguity() {
        let net = parallel_roads();
        let m = MapMatcher::new(&net, MatchConfig::default());
        // Object drives the south road; one noisy sample leans north
        // (y = 12 > 10 = midline) but the consistent choice is south.
        let trace = vec![
            RawSample::new(Point::new(50.0, 1.0), 0.0),
            RawSample::new(Point::new(150.0, 12.0), 10.0),
            RawSample::new(Point::new(250.0, 2.0), 20.0),
            RawSample::new(Point::new(350.0, -1.0), 30.0),
        ];
        let out = m.match_trace(&trace).unwrap();
        // A greedy nearest-segment matcher would flip sample 1 to the
        // north road (sid 3); look-ahead keeps the whole path on the
        // south road (sids 0, 2, 4, 6).
        let sids: Vec<usize> = out.iter().map(|o| o.segment.index()).collect();
        assert_eq!(sids, vec![0, 2, 4, 6]);
    }

    #[test]
    fn empty_trace_is_an_error() {
        let net = chain_network(3, 100.0, 10.0);
        let m = MapMatcher::new(&net, MatchConfig::default());
        assert_eq!(m.match_trace(&[]), Err(MapMatchError::EmptyTrace));
    }

    #[test]
    fn empty_network_is_an_error() {
        let net = RoadNetworkBuilder::new().build().unwrap();
        let m = MapMatcher::new(&net, MatchConfig::default());
        let t = vec![RawSample::new(Point::new(0.0, 0.0), 0.0)];
        assert_eq!(m.match_trace(&t), Err(MapMatchError::EmptyNetwork));
    }

    #[test]
    fn invalid_config_rejected() {
        let net = chain_network(3, 100.0, 10.0);
        let c = MatchConfig {
            candidate_radius_m: 0.0,
            ..MatchConfig::default()
        };
        let m = MapMatcher::new(&net, MatchConfig::default());
        // Validation happens at match time with the stored config; build a
        // matcher with the bad config directly.
        let bad = MapMatcher::new(&net, c);
        let t = vec![RawSample::new(Point::new(0.0, 0.0), 0.0)];
        assert!(matches!(
            bad.match_trace(&t),
            Err(MapMatchError::InvalidConfig(_))
        ));
        drop(m);
    }

    #[test]
    fn batch_matching_skips_short_traces() {
        let net = chain_network(4, 100.0, 10.0);
        let m = MapMatcher::new(&net, MatchConfig::default());
        let traces = vec![
            vec![
                RawSample::new(Point::new(10.0, 0.0), 0.0),
                RawSample::new(Point::new(90.0, 0.0), 8.0),
            ],
            vec![RawSample::new(Point::new(10.0, 0.0), 0.0)], // too short
            vec![],
        ];
        let (ds, skipped) = m.match_traces(&traces, "batch").unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(skipped, 2);
    }
}
