//! Error type for map matching.

use std::error::Error;
use std::fmt;

/// Errors produced while map matching raw traces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MapMatchError {
    /// The trace has no samples.
    EmptyTrace,
    /// The network has no segments, so no sample can be matched.
    EmptyNetwork,
    /// The configuration is invalid (message names the parameter).
    InvalidConfig(String),
}

impl fmt::Display for MapMatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapMatchError::EmptyTrace => write!(f, "trace has no samples"),
            MapMatchError::EmptyNetwork => write!(f, "road network has no segments"),
            MapMatchError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl Error for MapMatchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            MapMatchError::EmptyTrace,
            MapMatchError::EmptyNetwork,
            MapMatchError::InvalidConfig("radius".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
