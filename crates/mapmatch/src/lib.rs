//! Selective look-ahead map matching (the paper's SLAMM \[14\] stand-in).
//!
//! NEAT preprocesses raw GPS traces so every sample carries a road-segment
//! id. The paper uses the selective look-ahead matcher of Weber et al.
//! because look-ahead "can catch many known errors of earlier MM
//! algorithms, such as map-matching location samples between two nearby
//! parallel road segments".
//!
//! This crate implements the same idea as a small Viterbi-style dynamic
//! program over per-sample candidate sets:
//!
//! * **candidates** — road segments within a radius of each sample,
//!   retrieved from the grid [`neat_rnet::SegmentIndex`] ([`candidates`]);
//! * **selective look-ahead** — unambiguous samples (a single nearby
//!   candidate) are pinned immediately; ambiguous stretches are resolved
//!   by minimising emission (snap distance) plus transition (network
//!   discontinuity) cost over the whole stretch, which is exactly what
//!   distinguishes a look-ahead matcher from a greedy nearest-segment one
//!   ([`matcher`]).
//!
//! ```
//! use neat_mapmatch::{MapMatcher, MatchConfig};
//! use neat_rnet::netgen::chain_network;
//! use neat_rnet::location::RawSample;
//! use neat_rnet::Point;
//!
//! # fn main() -> Result<(), neat_mapmatch::MapMatchError> {
//! let net = chain_network(4, 100.0, 13.9);
//! let matcher = MapMatcher::new(&net, MatchConfig::default());
//! let trace = vec![
//!     RawSample::new(Point::new(50.0, 2.0), 0.0),
//!     RawSample::new(Point::new(150.0, -1.0), 10.0),
//! ];
//! let matched = matcher.match_trace(&trace)?;
//! assert_eq!(matched[0].segment.index(), 0);
//! assert_eq!(matched[1].segment.index(), 1);
//! # Ok(())
//! # }
//! ```

pub mod candidates;
pub mod error;
pub mod evaluate;
pub mod matcher;

pub use candidates::CandidateFinder;
pub use error::MapMatchError;
pub use evaluate::{evaluate, MatchEvaluation};
pub use matcher::{MapMatcher, MatchConfig, MatchScratch, MatchStats};
