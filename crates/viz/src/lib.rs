//! SVG visualisation of road networks, trajectories and clusters.
//!
//! The paper visualises its results with the GTMobiSIM GUI (Figures 3–4);
//! this crate is the open-source equivalent: it renders networks,
//! datasets, NEAT flow/trajectory clusters and TraClus results as
//! standalone SVG documents, which the `fig3`/`fig4` experiment binaries
//! write next to their numeric output.
//!
//! ```
//! use neat_viz::{SvgCanvas, palette};
//! use neat_rnet::Point;
//!
//! let mut canvas = SvgCanvas::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0), 400.0);
//! canvas.polyline(&[Point::new(0.0, 0.0), Point::new(100.0, 100.0)], palette::color(0), 2.0);
//! let svg = canvas.into_svg();
//! assert!(svg.starts_with("<svg"));
//! ```

pub mod palette;
pub mod render;

use neat_rnet::Point;
use std::fmt::Write as _;

/// A fixed-scale SVG canvas mapping world (metre) coordinates to viewport
/// pixels, with the y-axis flipped so north is up.
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    min: Point,
    max: Point,
    width_px: f64,
    height_px: f64,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas covering the world rectangle `min`–`max`, scaled
    /// to `width_px` pixels wide (height follows the aspect ratio).
    ///
    /// # Panics
    ///
    /// Panics when the rectangle is degenerate or `width_px ≤ 0`.
    pub fn new(min: Point, max: Point, width_px: f64) -> Self {
        assert!(max.x > min.x && max.y > min.y, "degenerate world rect");
        assert!(width_px > 0.0, "canvas width must be positive");
        let height_px = width_px * (max.y - min.y) / (max.x - min.x);
        SvgCanvas {
            min,
            max,
            width_px,
            height_px,
            body: String::new(),
        }
    }

    fn map(&self, p: Point) -> (f64, f64) {
        let x = (p.x - self.min.x) / (self.max.x - self.min.x) * self.width_px;
        let y = (1.0 - (p.y - self.min.y) / (self.max.y - self.min.y)) * self.height_px;
        (x, y)
    }

    /// Draws a polyline through `points`.
    pub fn polyline(&mut self, points: &[Point], color: &str, width: f64) {
        if points.len() < 2 {
            return;
        }
        let coords: Vec<String> = points
            .iter()
            .map(|&p| {
                let (x, y) = self.map(p);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="{width}"/>"#,
            coords.join(" ")
        );
    }

    /// Draws a single line segment.
    pub fn line(&mut self, a: Point, b: Point, color: &str, width: f64) {
        let (x1, y1) = self.map(a);
        let (x2, y2) = self.map(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="{width}"/>"#
        );
    }

    /// Draws a filled circle of radius `r` pixels.
    pub fn circle(&mut self, center: Point, r: f64, color: &str) {
        let (cx, cy) = self.map(center);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r}" fill="{color}"/>"#
        );
    }

    /// Draws an X-sign marker (the paper marks destinations this way in
    /// Figure 3).
    pub fn cross(&mut self, center: Point, size_px: f64, color: &str) {
        let (cx, cy) = self.map(center);
        let h = size_px / 2.0;
        let _ = writeln!(
            self.body,
            r#"<path d="M {x0:.1} {y0:.1} L {x1:.1} {y1:.1} M {x0:.1} {y1:.1} L {x1:.1} {y0:.1}" stroke="{color}" stroke-width="2" fill="none"/>"#,
            x0 = cx - h,
            y0 = cy - h,
            x1 = cx + h,
            y1 = cy + h,
        );
    }

    /// Draws a text label anchored at `at`.
    pub fn text(&mut self, at: Point, label: &str, size_px: f64, color: &str) {
        let (x, y) = self.map(at);
        let escaped = label
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size_px}" fill="{color}" font-family="sans-serif">{escaped}</text>"#
        );
    }

    /// Finalises the document.
    pub fn into_svg(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width_px, self.height_px, self.width_px, self.height_px, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas() -> SvgCanvas {
        SvgCanvas::new(Point::new(0.0, 0.0), Point::new(100.0, 50.0), 200.0)
    }

    #[test]
    fn mapping_flips_y() {
        let c = canvas();
        let (x, y) = c.map(Point::new(0.0, 0.0));
        assert_eq!((x, y), (0.0, 100.0)); // bottom-left → lower-left pixel
        let (x, y) = c.map(Point::new(100.0, 50.0));
        assert_eq!((x, y), (200.0, 0.0)); // top-right → upper-right pixel
    }

    #[test]
    fn svg_structure() {
        let mut c = canvas();
        c.polyline(
            &[Point::new(0.0, 0.0), Point::new(50.0, 25.0)],
            "#ff0000",
            2.0,
        );
        c.circle(Point::new(10.0, 10.0), 3.0, "blue");
        c.text(Point::new(5.0, 5.0), "A<B", 10.0, "black");
        let svg = c.into_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("A&lt;B"));
    }

    #[test]
    fn cross_draws_two_strokes() {
        let mut c = canvas();
        c.cross(Point::new(50.0, 25.0), 10.0, "red");
        let svg = c.into_svg();
        assert!(svg.contains("<path"));
        assert!(svg.matches(" M ").count() >= 1);
    }

    #[test]
    fn single_point_polyline_is_skipped() {
        let mut c = canvas();
        c.polyline(&[Point::new(0.0, 0.0)], "red", 1.0);
        assert!(!c.into_svg().contains("<polyline"));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_world_rect_panics() {
        let _ = SvgCanvas::new(Point::new(0.0, 0.0), Point::new(0.0, 10.0), 100.0);
    }
}
