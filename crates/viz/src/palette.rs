//! Deterministic categorical colour palette for cluster rendering.

/// Base palette of well-separated hues (hex strings).
const BASE: [&str; 12] = [
    "#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#d35400", "#16a085", "#2c3e50", "#f39c12",
    "#7f8c8d", "#9b59b6", "#1abc9c", "#e74c3c",
];

/// Colour of the network background layer.
pub const NETWORK: &str = "#d8d8d8";

/// Colour of raw trajectory overlays (the paper plots inputs in green).
pub const TRAJECTORY: &str = "#2ecc71";

/// Returns the colour assigned to cluster `index` (cycled).
pub fn color(index: usize) -> &'static str {
    BASE[index % BASE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_cycle() {
        assert_eq!(color(0), color(BASE.len()));
        assert_ne!(color(0), color(1));
    }

    #[test]
    fn all_colors_are_hex() {
        for i in 0..BASE.len() {
            let c = color(i);
            assert!(c.starts_with('#') && c.len() == 7);
        }
    }
}
