//! High-level renderers: network, dataset, NEAT clusters, TraClus output.

use crate::{palette, SvgCanvas};
use neat_core::{FlowCluster, TrajectoryCluster};
use neat_rnet::{Point, RoadNetwork};
use neat_traclus::TraClusResult;
use neat_traj::Dataset;

/// Default rendered width in pixels.
pub const DEFAULT_WIDTH_PX: f64 = 1000.0;

fn canvas_for(net: &RoadNetwork) -> Option<SvgCanvas> {
    let bb = net.bbox().ok()?;
    let pad = 0.02 * bb.width().max(bb.height()).max(1.0);
    Some(SvgCanvas::new(
        Point::new(bb.min.x - pad, bb.min.y - pad),
        Point::new(bb.max.x + pad, bb.max.y + pad),
        DEFAULT_WIDTH_PX,
    ))
}

fn draw_network(canvas: &mut SvgCanvas, net: &RoadNetwork) {
    for seg in net.segments() {
        canvas.line(
            net.position(seg.a),
            net.position(seg.b),
            palette::NETWORK,
            0.6,
        );
    }
}

/// Renders the bare road network.
pub fn render_network(net: &RoadNetwork) -> String {
    let mut canvas = match canvas_for(net) {
        Some(c) => c,
        None => return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n"),
    };
    draw_network(&mut canvas, net);
    canvas.into_svg()
}

/// Renders a dataset's trajectories over the network (Figure 3(a) style).
pub fn render_dataset(net: &RoadNetwork, dataset: &Dataset) -> String {
    let mut canvas = match canvas_for(net) {
        Some(c) => c,
        None => return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n"),
    };
    draw_network(&mut canvas, net);
    for tr in dataset.trajectories() {
        let pts: Vec<Point> = tr.points().iter().map(|l| l.position).collect();
        canvas.polyline(&pts, palette::TRAJECTORY, 0.8);
    }
    canvas.into_svg()
}

/// Renders a dataset with trip origins (dots) and destinations (X-signs)
/// marked, like the paper's Figure 3(a) annotation of hotspots and the
/// three destination sites.
pub fn render_dataset_with_markers(net: &RoadNetwork, dataset: &Dataset) -> String {
    let mut canvas = match canvas_for(net) {
        Some(c) => c,
        None => return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n"),
    };
    draw_network(&mut canvas, net);
    for tr in dataset.trajectories() {
        let pts: Vec<Point> = tr.points().iter().map(|l| l.position).collect();
        canvas.polyline(&pts, palette::TRAJECTORY, 0.8);
    }
    // Distinct destination positions get X-signs; origins small dots.
    let mut dests: Vec<(i64, i64)> = Vec::new();
    for tr in dataset.trajectories() {
        let p = tr.last().position;
        let key = ((p.x * 10.0) as i64, (p.y * 10.0) as i64);
        if !dests.contains(&key) {
            dests.push(key);
            canvas.cross(p, 14.0, "#c0392b");
        }
        canvas.circle(tr.first().position, 1.5, "#2c3e50");
    }
    canvas.into_svg()
}

/// Renders base clusters as a traffic-volume map: each segment drawn with
/// stroke width proportional to the square root of its cluster density
/// (classic flow-map cartography, no colour scale needed).
pub fn render_density(net: &RoadNetwork, clusters: &[neat_core::BaseCluster]) -> String {
    let mut canvas = match canvas_for(net) {
        Some(c) => c,
        None => return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n"),
    };
    draw_network(&mut canvas, net);
    let max_density = clusters
        .iter()
        .map(neat_core::BaseCluster::density)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    for c in clusters {
        let Ok(seg) = net.segment(c.segment()) else {
            continue;
        };
        let w = 0.8 + 6.0 * (c.density() as f64 / max_density).sqrt();
        canvas.line(net.position(seg.a), net.position(seg.b), "#1f5f8b", w);
    }
    canvas.into_svg()
}

fn flow_polyline(net: &RoadNetwork, flow: &FlowCluster) -> Vec<Point> {
    flow.node_chain().iter().map(|&n| net.position(n)).collect()
}

/// Renders flow clusters as numbered coloured polylines (Figure 3(b)
/// style).
pub fn render_flow_clusters(net: &RoadNetwork, flows: &[FlowCluster]) -> String {
    let mut canvas = match canvas_for(net) {
        Some(c) => c,
        None => return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n"),
    };
    draw_network(&mut canvas, net);
    for (i, f) in flows.iter().enumerate() {
        let pts = flow_polyline(net, f);
        canvas.polyline(&pts, palette::color(i), 2.5);
        if let Some(&mid) = pts.get(pts.len() / 2) {
            canvas.text(mid, &format!("{i}"), 12.0, palette::color(i));
        }
    }
    canvas.into_svg()
}

/// Renders final trajectory clusters, one colour per cluster (Figure 3(c)
/// style).
pub fn render_trajectory_clusters(net: &RoadNetwork, clusters: &[TrajectoryCluster]) -> String {
    let mut canvas = match canvas_for(net) {
        Some(c) => c,
        None => return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n"),
    };
    draw_network(&mut canvas, net);
    for (i, c) in clusters.iter().enumerate() {
        for f in c.flows() {
            let pts = flow_polyline(net, f);
            canvas.polyline(&pts, palette::color(i), 2.5);
        }
    }
    canvas.into_svg()
}

/// Renders TraClus clusters by their representative trajectories
/// (Figure 4 style).
pub fn render_traclus(net: &RoadNetwork, result: &TraClusResult) -> String {
    let mut canvas = match canvas_for(net) {
        Some(c) => c,
        None => return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>\n"),
    };
    draw_network(&mut canvas, net);
    for (i, c) in result.clusters.iter().enumerate() {
        if c.representative.len() >= 2 {
            canvas.polyline(&c.representative, palette::color(i), 2.0);
            canvas.text(
                c.representative[0],
                &format!("{i}"),
                10.0,
                palette::color(i),
            );
        }
    }
    canvas.into_svg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_core::{Mode, Neat, NeatConfig};
    use neat_mobisim::{generate_dataset, SimConfig};
    use neat_rnet::netgen::{generate_grid_network, GridNetworkConfig};
    use neat_traclus::{TraClus, TraClusConfig};

    fn setup() -> (RoadNetwork, Dataset) {
        let net = generate_grid_network(&GridNetworkConfig::small_test(8, 8), 3);
        let data = generate_dataset(
            &net,
            &SimConfig {
                num_objects: 12,
                ..SimConfig::default()
            },
            5,
            "viz",
        );
        (net, data)
    }

    #[test]
    fn network_and_dataset_render() {
        let (net, data) = setup();
        let svg = render_network(&net);
        assert!(svg.contains("<line"));
        let svg = render_dataset(&net, &data);
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn neat_outputs_render() {
        let (net, data) = setup();
        let cfg = NeatConfig {
            min_card: 1,
            epsilon: 600.0,
            ..NeatConfig::default()
        };
        let result = Neat::new(&net, cfg).run(&data, Mode::Opt).unwrap();
        let svg = render_flow_clusters(&net, &result.flow_clusters);
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<text"));
        let svg = render_trajectory_clusters(&net, &result.clusters);
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn density_map_scales_widths() {
        let (net, data) = setup();
        let result = Neat::new(
            &net,
            NeatConfig {
                min_card: 1,
                ..NeatConfig::default()
            },
        )
        .run(&data, Mode::Base)
        .unwrap();
        let svg = render_density(&net, &result.base_clusters);
        assert!(svg.contains("#1f5f8b"));
        // Width attribute varies across densities.
        let widths: std::collections::BTreeSet<&str> = svg
            .match_indices("stroke-width=\"")
            .map(|(i, _)| {
                let rest = &svg[i + 14..];
                &rest[..rest.find('"').unwrap()]
            })
            .collect();
        assert!(widths.len() > 2, "expected varied stroke widths");
    }

    #[test]
    fn markers_render() {
        let (net, data) = setup();
        let svg = render_dataset_with_markers(&net, &data);
        assert!(svg.contains("<path"), "X-sign markers missing");
        assert!(svg.contains("<circle"), "origin dots missing");
    }

    #[test]
    fn traclus_output_renders() {
        let (net, data) = setup();
        let result = TraClus::new(TraClusConfig {
            epsilon: 30.0,
            min_lns: 2,
            ..Default::default()
        })
        .run(&data);
        let svg = render_traclus(&net, &result);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn empty_network_renders_placeholder() {
        let net = neat_rnet::RoadNetworkBuilder::new().build().unwrap();
        let svg = render_network(&net);
        assert!(svg.starts_with("<svg"));
    }
}
