//! End-to-end clustering microbenchmarks: full pipelines, incremental
//! ingestion and result-query costs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use neat_bench::setup::{dataset, experiment_config, network};
use neat_core::incremental::IncrementalNeat;
use neat_core::query::FlowIndex;
use neat_core::{Mode, Neat};
use neat_rnet::netgen::MapPreset;
use neat_rnet::Point;

fn bench_clustering(c: &mut Criterion) {
    let net = network(MapPreset::Atlanta, 42);
    let data = dataset(MapPreset::Atlanta, &net, 100, 42);
    let config = experiment_config();
    let neat = Neat::new(&net, config);

    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    group.bench_function("opt_neat_atl100_end_to_end", |b| {
        b.iter(|| neat.run(&data, Mode::Opt).expect("opt run"))
    });
    group.bench_function("incremental_4_batches_of_25", |b| {
        let batches: Vec<_> = (0..4)
            .map(|i| dataset(MapPreset::Atlanta, &net, 25, 100 + i))
            .collect();
        b.iter_batched(
            || IncrementalNeat::new(&net, config),
            |mut online| {
                for batch in &batches {
                    online.ingest(batch).expect("ingest");
                }
                online.flow_clusters().len()
            },
            BatchSize::SmallInput,
        )
    });

    let result = neat.run(&data, Mode::Flow).expect("flow run");
    let index = FlowIndex::build(&net, &result.flow_clusters);
    let bbox = net.bbox().expect("non-empty network");
    let queries: Vec<Point> = (0..64)
        .map(|i| bbox.min.lerp(bbox.max, (i as f64 * 0.618) % 1.0))
        .collect();
    group.bench_function("flow_index_64_point_queries", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|&p| index.flows_near(&net, p, 500.0).len())
                .sum::<usize>()
        })
    });
    group.bench_function("flow_index_build", |b| {
        b.iter(|| FlowIndex::build(&net, &result.flow_clusters))
    });

    // Spatial-index comparison: grid vs STR R-tree on the same queries.
    let grid = neat_rnet::SegmentIndex::build(&net, 150.0);
    let rtree = neat_rnet::SegmentRTree::build(&net);
    group.bench_function("grid_nearest_64_queries", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter_map(|&p| grid.nearest(&net, p))
                .count()
        })
    });
    group.bench_function("rtree_nearest_64_queries", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter_map(|&p| rtree.nearest(&net, p))
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
