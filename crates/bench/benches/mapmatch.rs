//! Map-matching microbenchmark: the Viterbi look-ahead matcher over noisy
//! simulated traces (the paper's data-preprocessing step).

use criterion::{criterion_group, criterion_main, Criterion};
use neat_bench::setup::{dataset, network};
use neat_mapmatch::{MapMatcher, MatchConfig};
use neat_mobisim::noise::to_raw_traces;
use neat_rnet::netgen::MapPreset;

fn bench_mapmatch(c: &mut Criterion) {
    let net = network(MapPreset::Atlanta, 42);
    let data = dataset(MapPreset::Atlanta, &net, 25, 42);
    let traces = to_raw_traces(&data, 8.0, 9).expect("valid noise std");
    let matcher = MapMatcher::new(&net, MatchConfig::default());

    let mut group = c.benchmark_group("mapmatch");
    group.sample_size(10);
    group.bench_function("match_25_noisy_traces_atl", |b| {
        b.iter(|| {
            matcher
                .match_traces(&traces, "bench")
                .expect("matching succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mapmatch);
criterion_main!(benches);
