//! Shortest-path microbenchmarks: A* vs plain Dijkstra vs ε-bounded
//! search — the primitives behind the Figure-7 ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use neat_rnet::netgen::MapPreset;
use neat_rnet::path::TravelMode;
use neat_rnet::{BidirectionalDijkstra, NodeId, ShortestPathEngine};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_shortest_paths(c: &mut Criterion) {
    let net = MapPreset::Atlanta.generate(42);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let pairs: Vec<(NodeId, NodeId)> = (0..32)
        .map(|_| {
            (
                NodeId::new(rng.gen_range(0..net.node_count())),
                NodeId::new(rng.gen_range(0..net.node_count())),
            )
        })
        .collect();
    let mut engine = ShortestPathEngine::new(&net);
    let mut bidi = BidirectionalDijkstra::new(&net);

    let mut group = c.benchmark_group("shortest_path_atl");
    group.sample_size(10);
    group.bench_function("astar_32_random_pairs", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                let _ = engine.distance(&net, u, v, TravelMode::Undirected);
            }
        })
    });
    group.bench_function("dijkstra_32_random_pairs", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                let _ = engine.distance_plain(&net, u, v);
            }
        })
    });
    group.bench_function("bidirectional_32_random_pairs", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                let _ = bidi.distance(&net, u, v, TravelMode::Undirected);
            }
        })
    });
    group.bench_function("bounded_6500m_32_random_pairs", |b| {
        b.iter(|| {
            for &(u, v) in &pairs {
                let _ = engine.distance_bounded(&net, u, v, TravelMode::Undirected, 6500.0);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_shortest_paths);
criterion_main!(benches);
