//! TraClus microbenchmarks: the three-component line-segment distance,
//! MDL partitioning and the O(n²) DBSCAN grouping — the cost centres that
//! make the baseline three orders of magnitude slower than NEAT.

use criterion::{criterion_group, criterion_main, Criterion};
use neat_bench::setup::{dataset, network};
use neat_rnet::netgen::MapPreset;
use neat_rnet::Point;
use neat_traclus::distance::segment_distance;
use neat_traclus::partition::partition_dataset;
use neat_traclus::{group, TSeg, TraClusConfig};
use neat_traj::TrajectoryId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_segments(n: usize, seed: u64) -> Vec<TSeg> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen_range(0.0..5000.0);
            let y = rng.gen_range(0.0..5000.0);
            TSeg {
                trajectory: TrajectoryId::new(i as u64),
                start: Point::new(x, y),
                end: Point::new(
                    x + rng.gen_range(-200.0..200.0),
                    y + rng.gen_range(-200.0..200.0),
                ),
            }
        })
        .collect()
}

fn bench_traclus(c: &mut Criterion) {
    let config = TraClusConfig::default();
    let segs = random_segments(512, 3);

    let mut group_bench = c.benchmark_group("traclus");
    group_bench.sample_size(10);
    group_bench.bench_function("segment_distance_512x512", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..segs.len() {
                for j in 0..segs.len() {
                    acc += segment_distance(&segs[i], &segs[j], &config);
                }
            }
            acc
        })
    });
    group_bench.bench_function("dbscan_512_segments", |b| {
        b.iter(|| group::dbscan(&segs, &config))
    });

    let net = network(MapPreset::Atlanta, 42);
    let data = dataset(MapPreset::Atlanta, &net, 50, 42);
    group_bench.bench_function("mdl_partition_atl50", |b| {
        b.iter(|| partition_dataset(&data))
    });
    group_bench.finish();
}

criterion_group!(benches, bench_traclus);
criterion_main!(benches);
