//! Criterion microbenchmarks for the three NEAT phases, backing the
//! figure binaries with statistically sound per-phase timings.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use neat_bench::setup::{dataset, experiment_config, network};
use neat_core::phase1::{form_base_clusters, form_base_clusters_parallel};
use neat_core::phase2::form_flow_clusters;
use neat_core::phase3::refine_flow_clusters;
use neat_rnet::netgen::MapPreset;

fn bench_phases(c: &mut Criterion) {
    let net = network(MapPreset::Atlanta, 42);
    let data = dataset(MapPreset::Atlanta, &net, 100, 42);
    let config = experiment_config();

    let p1 = form_base_clusters(&net, &data, true).expect("phase1");
    let p2 = form_flow_clusters(&net, p1.base_clusters.clone(), &config).expect("phase2");

    let mut group = c.benchmark_group("neat_phases");
    group.sample_size(10);
    group.bench_function("phase1_base_clusters_atl100", |b| {
        b.iter(|| form_base_clusters(&net, &data, true).expect("phase1"))
    });
    group.bench_function("phase1_parallel4_atl100", |b| {
        b.iter(|| form_base_clusters_parallel(&net, &data, true, 4).expect("phase1"))
    });
    group.bench_function("phase2_flow_clusters_atl100", |b| {
        b.iter_batched(
            || p1.base_clusters.clone(),
            |bases| form_flow_clusters(&net, bases, &config).expect("phase2"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("phase3_refinement_atl100", |b| {
        b.iter_batched(
            || p2.flow_clusters.clone(),
            |flows| refine_flow_clusters(&net, flows, &config).expect("phase3"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
