//! Minimal log facade for the bench crate and its binaries.
//!
//! All user-visible output from bench code funnels through these two
//! sinks instead of bare `println!`/`eprintln!`:
//!
//! * [`out`] — experiment *results* (report lines, tables) → stdout,
//! * [`info`] — *progress* notes ("saved results/fig5.txt") → stderr,
//!
//! so results stay pipeable while progress stays visible, and the whole
//! crate can be silenced with [`set_verbosity`]`(Verbosity::Quiet)`
//! (used by tests that exercise bench helpers without spamming the
//! harness output). Keeping stdio behind one module also keeps the
//! `neat-lint` L5 rule meaningful: algorithm crates have *no* stdio,
//! bench has exactly this file.

use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// How much the facade writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verbosity {
    /// Suppress everything (tests, embedding).
    Quiet,
    /// Results to stdout, progress to stderr (default).
    Normal,
}

static VERBOSITY: AtomicU8 = AtomicU8::new(1);

/// Sets the global verbosity for all bench output.
pub fn set_verbosity(v: Verbosity) {
    VERBOSITY.store(v as u8, Ordering::Relaxed);
}

fn enabled() -> bool {
    VERBOSITY.load(Ordering::Relaxed) != Verbosity::Quiet as u8
}

/// Writes an experiment result line to stdout.
///
/// Write failures (e.g. a closed pipe downstream) are ignored rather
/// than panicking: results are also persisted by `Report::save`.
pub fn out(text: &str) {
    if enabled() {
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(stdout, "{text}");
    }
}

/// Writes a progress note to stderr.
pub fn info(text: &str) {
    if enabled() {
        let mut stderr = std::io::stderr().lock();
        let _ = writeln!(stderr, "{text}");
    }
}

/// Standard progress note after persisting an artifact.
pub fn saved(path: &std::path::Path) {
    info(&format!("saved {}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_suppresses_everything() {
        set_verbosity(Verbosity::Quiet);
        out("must not appear");
        info("must not appear");
        saved(std::path::Path::new("results/nothing.txt"));
        set_verbosity(Verbosity::Normal);
    }
}
