//! Map-matcher accuracy sweep: exact and within-one-segment accuracy of
//! the SLAMM-style look-ahead matcher as GPS noise grows — validating the
//! preprocessing substrate the NEAT pipeline relies on (Section III-A1).

use neat_bench::report::{secs, Report};
use neat_bench::setup::{dataset, network};
use neat_bench::{parse_args, scaled, time};
use neat_mapmatch::{evaluate, MapMatcher, MatchConfig};
use neat_mobisim::noise::to_raw_traces;
use neat_rnet::netgen::MapPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("mapmatch_eval");
    report.line("Map-matching accuracy vs GPS noise (SLAMM-style look-ahead matcher, ATL)");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Atlanta, seed);
    let n = scaled(100, scale);
    let truth = dataset(MapPreset::Atlanta, &net, n, seed);
    report.line(format!(
        "ground truth: {} trajectories, {} points (avg segment length ≈ 151 m)",
        truth.len(),
        truth.total_points()
    ));

    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let mut rows = Vec::new();
    for noise in [0.0, 2.0, 5.0, 10.0, 20.0, 40.0] {
        let raw = to_raw_traces(&truth, noise, seed ^ 77).expect("valid noise std");
        let ((matched, skipped), t) =
            time(|| matcher.match_traces(&raw, "eval").expect("matching"));
        let ev = evaluate(&net, &truth, &matched);
        rows.push(vec![
            format!("{noise}"),
            format!("{:.1}%", 100.0 * ev.accuracy()),
            format!("{:.1}%", 100.0 * ev.relaxed_accuracy()),
            skipped.to_string(),
            secs(t),
        ]);
    }
    report.table(
        &[
            "noise std m",
            "exact accuracy",
            "within one segment",
            "skipped traces",
            "time s",
        ],
        &rows,
    );
    report.line("expectation: ~95% exact at GPS-grade noise (5 m), 100% within one segment, graceful degradation beyond");
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
