//! Figure 3 — visualisation of NEAT clustering on ATL500.
//!
//! Reproduces the three panels as SVGs (input data, flow clusters, final
//! clusters with ε = 6500 m / minCard = 5) and prints the cluster counts
//! the paper reports: 31 flow clusters merging into 2 final clusters.

use neat_bench::report::Report;
use neat_bench::setup::{dataset, experiment_config, network};
use neat_bench::{parse_args, scaled, time};
use neat_core::{Mode, Neat};
use neat_rnet::netgen::MapPreset;
use neat_viz::render;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("fig3");
    report
        .line("Figure 3: NEAT clustering of ATL500 (paper: 31 flow clusters -> 2 final clusters)");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Atlanta, seed);
    let n = scaled(500, scale);
    let data = dataset(MapPreset::Atlanta, &net, n, seed);
    report.line(format!(
        "dataset: {} trajectories, {} points",
        data.len(),
        data.total_points()
    ));

    let neat = Neat::new(&net, experiment_config());
    let (result, elapsed) = time(|| neat.run(&data, Mode::Opt).expect("neat run"));
    report.line(format!(
        "flow clusters (minCard=5): {}   (paper: 31)",
        result.flow_clusters.len()
    ));
    report.line(format!(
        "final clusters (eps=6500m): {}   (paper: 2)",
        result.clusters.len()
    ));
    report.line(format!(
        "opt-NEAT total time: {:.2}s",
        elapsed.as_secs_f64()
    ));
    for (i, c) in result.clusters.iter().enumerate() {
        report.line(format!(
            "  cluster {}: {} flows, {} trajectories, {:.1} km of routes",
            i,
            c.flows().len(),
            c.trajectory_cardinality(),
            c.total_route_length(&net) / 1000.0
        ));
    }

    for (name, svg) in [
        (
            "fig3a_input.svg",
            render::render_dataset_with_markers(&net, &data),
        ),
        (
            "fig3b_flows.svg",
            render::render_flow_clusters(&net, &result.flow_clusters),
        ),
        (
            "fig3c_clusters.svg",
            render::render_trajectory_clusters(&net, &result.clusters),
        ),
        ("fig3d_density.svg", {
            let base = neat.run(&data, Mode::Base).expect("base run");
            render::render_density(&net, &base.base_clusters)
        }),
    ] {
        let path = Report::save_artifact(name, &svg).expect("write svg");
        report.line(format!("wrote {}", path.display()));
    }
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
