//! Figure 7 — effectiveness of the Euclidean lower bound: opt-NEAT with
//! the ELB filter (plus bounded A*) vs opt-NEAT computing all shortest
//! paths with plain Dijkstra network expansion, on the ATL (7a) and SJ
//! (7b) dataset series. The Dijkstra curve's cost tracks the number of
//! flows produced by Phase 2, not the data size (cf. Table III).

use neat_bench::report::{secs, Report};
use neat_bench::setup::{dataset, experiment_config, network};
use neat_bench::{parse_args, scaled, time};
use neat_core::{Mode, Neat, NeatConfig, SpStrategy};
use neat_mobisim::presets::OBJECT_COUNTS;
use neat_rnet::netgen::MapPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("fig7");
    report.line("Figure 7: opt-NEAT-ELB vs opt-NEAT-Dijkstra (Phase-3 ablation)");
    report.line(format!("scale = {scale}, seed = {seed}"));

    for (panel, map) in [
        ("7(a) ATL", MapPreset::Atlanta),
        ("7(b) SJ", MapPreset::SanJose),
    ] {
        report.line("");
        report.line(format!("Figure {panel} datasets"));
        let net = network(map, seed);
        let elb_cfg = experiment_config();
        let dij_cfg = NeatConfig {
            use_elb: false,
            sp_strategy: SpStrategy::Dijkstra,
            ..experiment_config()
        };
        let elb = Neat::new(&net, elb_cfg);
        let dij = Neat::new(&net, dij_cfg);
        let mut rows = Vec::new();
        for (i, &objects) in OBJECT_COUNTS.iter().enumerate() {
            let n = scaled(objects, scale);
            let data = dataset(map, &net, n, seed.wrapping_add(i as u64));
            let (r_elb, t_elb) = time(|| elb.run(&data, Mode::Opt).expect("elb run"));
            let (r_dij, t_dij) = time(|| dij.run(&data, Mode::Opt).expect("dijkstra run"));
            rows.push(vec![
                format!("{}{objects}", map.code()),
                r_elb.flow_clusters.len().to_string(),
                secs(t_elb),
                secs(t_dij),
                format!("{:.3}", r_elb.timings.phase3.as_secs_f64()),
                format!("{:.3}", r_dij.timings.phase3.as_secs_f64()),
                r_elb.phase3_stats.elb_skips.to_string(),
                r_elb.phase3_stats.sp_computations.to_string(),
                r_dij.phase3_stats.sp_computations.to_string(),
            ]);
        }
        report.table(
            &[
                "dataset",
                "#flows",
                "ELB total s",
                "Dij total s",
                "ELB p3 s",
                "Dij p3 s",
                "ELB skips",
                "ELB SPs",
                "Dij SPs",
            ],
            &rows,
        );
    }
    report.line("shape checks (paper): Dijkstra phase-3 cost tracks #flows, ELB curve far below");
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
