//! Figure 5 — flow-NEAT vs TraClus on the ATL datasets:
//! (a) average representative-route length, (b) maximum representative-
//! route length, (c) number of resulting clusters, (d) running time
//! (semi-log in the paper; we print the raw seconds).
//!
//! TraClus is O(n²) in the number of partitioned line segments; the paper
//! itself needed 334 735 s (≈ 3.9 days) for ATL5000. `--cap <objects>`
//! bounds the measured baseline (default 500 objects); larger datasets
//! get a quadratic extrapolation from the largest measured run, marked
//! `~` in the output.

use neat_bench::report::{secs, Report};
use neat_bench::setup::{dataset, experiment_config, network, raw_gps_view};
use neat_bench::{parse_bench_args, scaled, time};
use neat_core::{Mode, Neat};
use neat_mobisim::presets::OBJECT_COUNTS;
use neat_rnet::netgen::MapPreset;
use neat_traclus::{TraClus, TraClusConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let a = parse_bench_args(&args);
    let cap = a.cap.unwrap_or(500);
    let mut report = Report::new("fig5");
    report.line("Figure 5: flow-NEAT vs TraClus on ATL datasets");
    report.line(format!(
        "scale = {}, seed = {}, traclus measured up to {cap} objects (`~` = quadratic extrapolation)",
        a.scale, a.seed
    ));

    let net = network(MapPreset::Atlanta, a.seed);
    let neat = Neat::new(&net, experiment_config());
    // Tuned for our synthetic geometry by the traclus_sweep binary (the
    // paper's visual-inspection tuning arrived at eps=10 m, MinLns=30 for
    // its USGS traces).
    let traclus = TraClus::new(TraClusConfig {
        epsilon: 10.0,
        min_lns: 5,
        ..TraClusConfig::default()
    });

    // (points, measured seconds) of the largest measured TraClus run, for
    // extrapolation.
    let mut last_measured: Option<(f64, f64)> = None;
    let mut rows = Vec::new();
    for (i, &objects) in OBJECT_COUNTS.iter().enumerate() {
        let n = scaled(objects, a.scale);
        let data = dataset(MapPreset::Atlanta, &net, n, a.seed.wrapping_add(i as u64));
        let points = data.total_points();

        // flow-NEAT lengths/counts + opt-NEAT runtime (the paper's
        // "NEAT" timing curve runs all three phases).
        let (flow_result, _) = time(|| neat.run(&data, Mode::Flow).expect("flow-NEAT"));
        let (opt_result, neat_time) = time(|| neat.run(&data, Mode::Opt).expect("opt-NEAT"));
        let lens: Vec<f64> = flow_result
            .flow_clusters
            .iter()
            .map(|f| f.route_length(&net))
            .collect();
        let neat_avg = if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<f64>() / lens.len() as f64
        };
        let neat_max = lens.iter().copied().fold(0.0f64, f64::max);

        // TraClus baseline (measured or extrapolated) on the raw GPS
        // view of the same trips.
        let raw = raw_gps_view(&data, a.seed);
        let (tc_avg, tc_max, tc_count, tc_time) = if n <= cap {
            let (r, t) = time(|| traclus.run(&raw));
            last_measured = Some((points as f64, t.as_secs_f64()));
            let reps: Vec<f64> = r
                .clusters
                .iter()
                .map(|c| c.representative_length())
                .collect();
            let avg = if reps.is_empty() {
                0.0
            } else {
                reps.iter().sum::<f64>() / reps.len() as f64
            };
            (
                format!("{avg:.0}"),
                format!("{:.0}", reps.iter().copied().fold(0.0f64, f64::max)),
                r.clusters.len().to_string(),
                secs(t),
            )
        } else if let Some((p0, t0)) = last_measured {
            let est = t0 * (points as f64 / p0).powi(2);
            ("-".into(), "-".into(), "-".into(), format!("~{est:.0}"))
        } else {
            ("-".into(), "-".into(), "-".into(), "-".into())
        };

        rows.push(vec![
            format!("ATL{objects}"),
            points.to_string(),
            format!("{neat_avg:.0}"),
            format!("{neat_max:.0}"),
            flow_result.flow_clusters.len().to_string(),
            secs(neat_time),
            tc_avg,
            tc_max,
            tc_count,
            tc_time,
            opt_result.clusters.len().to_string(),
        ]);
    }
    report.table(
        &[
            "dataset",
            "points",
            "NEAT avg len m",
            "NEAT max len m",
            "NEAT #flows",
            "NEAT s",
            "TC avg len m",
            "TC max len m",
            "TC #clusters",
            "TC s",
            "NEAT #final",
        ],
        &rows,
    );
    report.line("shape checks (paper): NEAT routes longer on average & max; NEAT fewer clusters; NEAT >1000x faster at scale");
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
