//! Section IV-C variant experiment — TraClus given NEAT's preprocessing:
//! the grouping phase runs over NEAT base clusters with the modified
//! Hausdorff network distance. The paper reports that even so, the
//! variant needs 6 396.79 s on SJ2000 (117 clusters) while NEAT delivers
//! 42 flow clusters / 14 final clusters in 11.68 s.

use neat_bench::report::{secs, Report};
use neat_bench::setup::{dataset, experiment_config, network};
use neat_bench::{parse_bench_args, scaled, time};
use neat_core::{Mode, Neat};
use neat_rnet::netgen::MapPreset;
use neat_traclus::hybrid::{cluster_base_clusters, HybridConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let a = parse_bench_args(&args);
    let mut report = Report::new("hybrid_variant");
    report.line("Section IV-C: TraClus hybrid variant vs NEAT on SJ2000");
    report.line("paper: hybrid 6396.79s / 117 clusters; NEAT 11.68s / 42 flows + 14 final");
    report.line(format!("scale = {}, seed = {}", a.scale, a.seed));

    let net = network(MapPreset::SanJose, a.seed);
    let n = scaled(2000, a.scale);
    let data = dataset(MapPreset::SanJose, &net, n, a.seed);
    report.line(format!(
        "dataset: {} trajectories, {} points",
        data.len(),
        data.total_points()
    ));

    // NEAT (all three phases).
    let neat = Neat::new(&net, experiment_config());
    let (neat_result, neat_time) = time(|| neat.run(&data, Mode::Opt).expect("neat"));
    report.line(format!(
        "NEAT: {} t-fragments, {} base clusters, {} flow clusters, {} final clusters in {}s",
        neat_result.fragment_count,
        neat_result.base_cluster_count,
        neat_result.flow_clusters.len(),
        neat_result.clusters.len(),
        secs(neat_time)
    ));

    // Hybrid variant: Phase 1 output handed to a Hausdorff DBSCAN.
    let (p1, p1_time) = time(|| neat.run(&data, Mode::Base).expect("phase1"));
    let hybrid_cfg = HybridConfig {
        epsilon: 135.0,
        min_pts: 2,
    };
    let (hybrid, hybrid_time) =
        time(|| cluster_base_clusters(&net, p1.base_clusters.clone(), &hybrid_cfg));
    report.line(format!(
        "hybrid: {} clusters, {} noise, {} network-distance computations in {}s (+{}s shared phase 1)",
        hybrid.clusters.len(),
        hybrid.noise,
        hybrid.distance_computations,
        secs(hybrid_time),
        secs(p1_time)
    ));
    let speedup = hybrid_time.as_secs_f64() / neat_time.as_secs_f64().max(1e-9);
    report.line(format!(
        "hybrid/NEAT time ratio: {speedup:.1}x (paper: ~548x)"
    ));
    report.line("shape check (paper): hybrid slower than NEAT by orders of magnitude, more fragmented clusters");
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
