//! Whole-trajectory OPTICS baseline (reference \[24\] of the paper).
//!
//! The paper's related-work section argues that clustering trajectories
//! *as a whole* misses shared sub-routes: objects travelling the same
//! corridor at different times (or continuing to different destinations)
//! are far apart under the time-averaged Euclidean distance. This binary
//! quantifies that on our traffic: NEAT discovers the shared flows, while
//! Trajectory-OPTICS mostly reports noise because departures are
//! staggered.

use neat_bench::report::{secs, Report};
use neat_bench::setup::{dataset, experiment_config, network};
use neat_bench::{parse_args, scaled, time};
use neat_core::{Mode, Neat};
use neat_rnet::netgen::MapPreset;
use neat_traclus::whole::{cluster_whole_trajectories, WholeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("optics_baseline");
    report.line("Whole-trajectory OPTICS (Trajectory-OPTICS [24]) vs NEAT on ATL traffic");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Atlanta, seed);
    let n = scaled(300, scale);
    let data = dataset(MapPreset::Atlanta, &net, n, seed);
    report.line(format!(
        "dataset: {} trajectories, {} points (departures staggered over 300 s)",
        data.len(),
        data.total_points()
    ));

    let (neat_result, neat_time) = time(|| {
        Neat::new(&net, experiment_config())
            .run(&data, Mode::Opt)
            .expect("neat")
    });
    report.line(format!(
        "NEAT: {} flows -> {} clusters covering {} trajectories in {}s",
        neat_result.flow_clusters.len(),
        neat_result.clusters.len(),
        neat_result
            .clusters
            .iter()
            .map(|c| c.trajectory_cardinality())
            .sum::<usize>(),
        secs(neat_time)
    ));

    let mut rows = Vec::new();
    for eps in [100.0, 300.0, 1000.0] {
        let cfg = WholeConfig {
            eps,
            min_pts: 3,
            eps_prime: eps,
            time_step_s: 10.0,
        };
        let (r, t) = time(|| cluster_whole_trajectories(&data, &cfg));
        let clustered: usize = r.clusters.iter().map(Vec::len).sum();
        rows.push(vec![
            format!("{eps}"),
            r.clusters.len().to_string(),
            clustered.to_string(),
            r.noise.to_string(),
            secs(t),
        ]);
    }
    report.table(
        &[
            "eps (m)",
            "#clusters",
            "clustered trajs",
            "noise trajs",
            "time s",
        ],
        &rows,
    );
    report.line("shape check (paper §V): whole-trajectory clustering leaves most staggered traffic unclustered / coarse, and costs O(n^2) trajectory-pair distances");
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
