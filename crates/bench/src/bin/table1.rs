//! Table I — road networks used in the experiments.
//!
//! Regenerates the paper's network-statistics table for the three
//! synthetic stand-in maps and prints paper-vs-measured rows.

use neat_bench::report::Report;
use neat_bench::{parse_args, time};
use neat_rnet::netgen::MapPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_scale, seed) = parse_args(&args);
    let mut report = Report::new("table1");
    report.line("Table I: road networks (paper value / measured value of synthetic stand-in)");
    report.line(format!("seed = {seed}"));

    let mut rows = Vec::new();
    for map in MapPreset::all() {
        let paper = map.paper_stats();
        let (net, gen_time) = time(|| map.generate(seed));
        let got = net.stats();
        rows.push(vec![
            map.code().to_string(),
            format!("{} / {}", paper.junctions, got.junctions),
            format!("{} / {}", paper.segments, got.segments),
            format!("{:.1} / {:.1}", paper.total_length_km, got.total_length_km),
            format!(
                "{:.1} / {:.1}",
                paper.avg_segment_length_m, got.avg_segment_length_m
            ),
            format!("{:.1} / {:.2}", paper.avg_degree, got.avg_degree),
            format!("{} / {}", paper.max_degree, got.max_degree),
            format!("{:.2}s", gen_time.as_secs_f64()),
        ]);
    }
    report.table(
        &[
            "map",
            "junctions",
            "segments",
            "total km",
            "avg seg m",
            "avg deg",
            "max deg",
            "gen time",
        ],
        &rows,
    );
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
