//! Gap-repair ablation: Phase 1 with and without junction insertion under
//! GPS dropout.
//!
//! Section III-A1 of the paper inserts junction nodes between
//! non-contiguous samples via shortest-path recovery, so segments
//! traversed *between* surviving samples still contribute t-fragments.
//! This experiment drops a fraction of samples and measures how much
//! segment coverage the repair preserves relative to naive splitting.

use neat_bench::report::{secs, Report};
use neat_bench::setup::network;
use neat_bench::{parse_args, scaled, time};
use neat_core::phase1::form_base_clusters;
use neat_mobisim::generate_dataset;
use neat_rnet::netgen::MapPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("gap_repair");
    report.line("Phase-1 gap repair ablation under GPS dropout (ATL)");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Atlanta, seed);
    let n = scaled(200, scale);
    let preset = neat_mobisim::presets::DatasetPreset::new(MapPreset::Atlanta, n);

    // Ground-truth coverage from the dropout-free dataset.
    let full = generate_dataset(&net, &preset.sim_config(), seed + 1, "full");
    let truth = form_base_clusters(&net, &full, true).expect("phase1");
    let truth_segments = truth.base_clusters.len();
    report.line(format!(
        "dropout-free reference: {} trajectories covering {} segments",
        full.len(),
        truth_segments
    ));

    let mut rows = Vec::new();
    for dropout in [0.0, 0.3, 0.6, 0.8, 0.9] {
        let mut cfg = preset.sim_config();
        cfg.sample_dropout = dropout;
        let data = generate_dataset(&net, &cfg, seed + 1, "drop");
        let (with_repair, t_repair) =
            time(|| form_base_clusters(&net, &data, true).expect("phase1"));
        let (without, t_naive) = time(|| form_base_clusters(&net, &data, false).expect("phase1"));
        rows.push(vec![
            format!("{:.0}%", dropout * 100.0),
            data.total_points().to_string(),
            format!(
                "{} ({:.1}%)",
                with_repair.base_clusters.len(),
                100.0 * with_repair.base_clusters.len() as f64 / truth_segments as f64
            ),
            format!(
                "{} ({:.1}%)",
                without.base_clusters.len(),
                100.0 * without.base_clusters.len() as f64 / truth_segments as f64
            ),
            with_repair.fragment_count.to_string(),
            without.fragment_count.to_string(),
            secs(t_repair),
            secs(t_naive),
        ]);
    }
    report.table(
        &[
            "dropout",
            "points",
            "covered segs (repair)",
            "covered segs (naive)",
            "fragments (repair)",
            "fragments (naive)",
            "repair s",
            "naive s",
        ],
        &rows,
    );
    report.line("expectation: repair holds coverage near 100% of the reference while naive splitting loses the segments traversed between surviving samples");
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
