//! Phase-3 optimisation benchmark: the sharded distance oracle, endpoint
//! one-to-many tables and ALT landmark bounds against the pre-existing
//! pairwise-A* path, with the deterministic executor at `--threads`.
//!
//! Emits `BENCH_PR5.json` with per-phase wall-clock timings, shortest-path
//! work counters and the baseline/optimised comparison. The two runs must
//! produce identical clusters — the binary asserts it.
//!
//! Flags:
//!
//! * `--smoke` — tiny fixture (seconds, debug-friendly); used by the CI
//!   `bench-smoke` job.
//! * `--out <path>` — where to write the JSON (default `BENCH_PR5.json`).
//! * `--check-baseline <path>` — compare the optimised run's phase-3
//!   shortest-path work (`sp_computations + one_to_many_scans`) against a
//!   checked-in baseline JSON and exit non-zero on regression.
//! * `--threads <n>` — thread count for the optimised run (default 8).
//! * `--objects <n>` / `--seed <n>` — full-mode dataset size and seed.

use neat_bench::setup::{dataset, experiment_config, network, DEFAULT_SEED};
use neat_bench::time;
use neat_core::{Mode, Neat, NeatConfig, NeatResult};
use neat_mobisim::{generate_dataset, SimConfig};
use neat_rnet::netgen::{generate_grid_network, GridNetworkConfig, MapPreset};
use neat_rnet::RoadNetwork;
use neat_traj::Dataset;
use serde_json::{json, Value};

struct Args {
    smoke: bool,
    out: String,
    check_baseline: Option<String>,
    threads: usize,
    alt: Option<usize>,
    objects: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        out: "BENCH_PR5.json".into(),
        check_baseline: None,
        threads: 8,
        alt: None,
        objects: 5000,
        seed: DEFAULT_SEED,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "usage: pr5_speedup [--smoke] [--out <path>] [--check-baseline <path>] \
                 [--threads <n>] [--alt <k>] [--objects <n>] [--seed <n>]";
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).unwrap_or_else(|| panic!("{usage}")).clone()
        };
        match argv[i].as_str() {
            "--smoke" => out.smoke = true,
            "--out" => out.out = value(&mut i),
            "--check-baseline" => out.check_baseline = Some(value(&mut i)),
            "--threads" => out.threads = value(&mut i).parse().expect(usage),
            "--alt" => out.alt = Some(value(&mut i).parse().expect(usage)),
            "--objects" => out.objects = value(&mut i).parse().expect(usage),
            "--seed" => out.seed = value(&mut i).parse().expect(usage),
            _ => panic!("{usage}"),
        }
        i += 1;
    }
    out
}

/// The fixture the CI smoke job runs: the `crash_chaos`/`budget_chaos`
/// 4×4 grid with 18 objects — big enough for phase 3 to do real
/// shortest-path work, small enough for a debug-build CI job.
fn smoke_fixture(seed: u64) -> (RoadNetwork, Dataset) {
    let net = generate_grid_network(&GridNetworkConfig::small_test(4, 4), seed);
    let sim = SimConfig {
        num_objects: 18,
        num_hotspots: 2,
        num_destinations: 2,
        sample_period_s: 4.0,
        ..SimConfig::default()
    };
    let data = generate_dataset(&net, &sim, seed, "pr5-smoke");
    (net, data)
}

/// Everything order-sensitive in a result, minus timings and stats.
fn cluster_fingerprint(r: &NeatResult) -> String {
    format!("{:#?}\n{:#?}", r.flow_clusters, r.clusters)
}

fn run_json(label: &str, cfg: &NeatConfig, net: &RoadNetwork, data: &Dataset) -> (Value, String) {
    let neat = Neat::new(net, *cfg);
    let (result, wall) = time(|| neat.run(data, Mode::Opt).expect("opt-NEAT run"));
    let s = &result.phase3_stats;
    let v = json!({
        "label": label,
        "threads": cfg.threads,
        "alt_landmarks": cfg.alt_landmarks,
        "endpoint_tables": cfg.endpoint_tables,
        "phase1_s": result.timings.phase1.as_secs_f64(),
        "phase2_s": result.timings.phase2.as_secs_f64(),
        "phase3_s": result.timings.phase3.as_secs_f64(),
        "total_s": wall.as_secs_f64(),
        "flows": result.flow_clusters.len(),
        "clusters": result.clusters.len(),
        "pairs_considered": s.pairs_considered,
        "elb_skips": s.elb_skips,
        "alt_skips": s.alt_skips,
        "sp_computations": s.sp_computations,
        "one_to_many_scans": s.one_to_many_scans,
        "sp_cache_hits": s.sp_cache_hits,
        "phase3_sp_work": s.sp_computations + s.one_to_many_scans,
    });
    (v, cluster_fingerprint(&result))
}

fn main() {
    let args = parse_args();
    let (net, data, fixture, cfg): (RoadNetwork, Dataset, String, NeatConfig) = if args.smoke {
        let (net, data) = smoke_fixture(7);
        // The chaos-harness parameterization: several flows within ε of
        // each other, so phase 3 computes real network distances.
        let cfg = NeatConfig {
            min_card: 3,
            epsilon: 600.0,
            ..NeatConfig::default()
        };
        (net, data, "grid4x4-smoke".into(), cfg)
    } else {
        let net = network(MapPreset::SanJose, args.seed);
        let data = dataset(MapPreset::SanJose, &net, args.objects, args.seed);
        (
            net,
            data,
            format!("SJ{}", args.objects),
            experiment_config(),
        )
    };

    // The pre-optimisation phase 3: sequential pairwise A* + ELB only.
    let baseline_cfg = NeatConfig {
        threads: 1,
        alt_landmarks: 0,
        endpoint_tables: false,
        ..cfg
    };
    // This PR: executor threads + ALT landmarks + endpoint tables.
    let optimized_cfg = NeatConfig {
        threads: args.threads,
        alt_landmarks: args.alt.unwrap_or(cfg.alt_landmarks),
        ..cfg
    };

    neat_bench::log::info(&format!("pr5_speedup: fixture {fixture}, baseline run"));
    let (base, base_fp) = run_json("baseline", &baseline_cfg, &net, &data);
    neat_bench::log::info("pr5_speedup: optimised run");
    let (opt, opt_fp) = run_json("optimized", &optimized_cfg, &net, &data);
    assert_eq!(
        base_fp, opt_fp,
        "optimised run changed the clusters — the optimisations must be exact"
    );

    let p3 = |v: &Value, k: &str| v.get(k).and_then(Value::as_f64).expect("json field");
    let work = |v: &Value| {
        v.get("phase3_sp_work")
            .and_then(Value::as_u64)
            .expect("json field")
    };
    let speedup = p3(&base, "phase3_s") / p3(&opt, "phase3_s").max(1e-9);
    let (base_p3, opt_p3) = (p3(&base, "phase3_s"), p3(&opt, "phase3_s"));
    let (base_work, opt_work) = (work(&base), work(&opt));
    let report = json!({
        "bench": "pr5_speedup",
        "fixture": fixture,
        "seed": args.seed,
        "smoke": args.smoke,
        "baseline": base,
        "optimized": opt,
        "phase3_speedup": speedup,
        "phase3_sp_work_reduction": base_work as f64 / opt_work.max(1) as f64,
        "output_identical": true,
    });
    let pretty = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("serialize report")
    );
    std::fs::write(&args.out, &pretty).expect("write BENCH_PR5.json");
    neat_bench::log::out(&format!(
        "pr5_speedup: phase3 {base_p3:.3}s -> {opt_p3:.3}s ({speedup:.2}x), \
         sp work {base_work} -> {opt_work} ({})",
        args.out,
    ));

    if let Some(path) = args.check_baseline {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text).expect("parse baseline JSON");
        let allowed = baseline
            .get("optimized")
            .and_then(|o| o.get("phase3_sp_work"))
            .and_then(Value::as_u64)
            .expect("baseline optimized.phase3_sp_work");
        let current = opt_work;
        assert_eq!(
            baseline.get("fixture"),
            report.get("fixture"),
            "baseline was recorded on a different fixture"
        );
        if current > allowed {
            eprintln!(
                "pr5_speedup: REGRESSION — phase-3 sp work {current} exceeds baseline {allowed} \
                 ({path})"
            );
            std::process::exit(1);
        }
        neat_bench::log::out(&format!(
            "pr5_speedup: sp-work gate ok ({current} <= {allowed})"
        ));
    }
}
