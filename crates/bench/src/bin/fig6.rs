//! Figure 6 — performance of the NEAT versions:
//! (a) base-/flow-/opt-NEAT runtime scaling over the MIA datasets
//!     (near-linear; the opt curve nearly overlaps flow thanks to ELB);
//! (b) relative cost of Phase 1 vs Phase 2 (Phase 1 dominates because it
//!     scans every location, while Phase 2 only touches base clusters).

use neat_bench::report::{secs, Report};
use neat_bench::setup::{dataset, experiment_config, network};
use neat_bench::{parse_args, scaled, time};
use neat_core::{Mode, Neat};
use neat_mobisim::presets::OBJECT_COUNTS;
use neat_rnet::netgen::MapPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("fig6");
    report.line("Figure 6(a): base/flow/opt-NEAT runtime scaling (MIA datasets)");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Miami, seed);
    let neat = Neat::new(&net, experiment_config());
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for (i, &objects) in OBJECT_COUNTS.iter().enumerate() {
        let n = scaled(objects, scale);
        let data = dataset(MapPreset::Miami, &net, n, seed.wrapping_add(i as u64));
        let points = data.total_points();

        let (_, base_t) = time(|| neat.run(&data, Mode::Base).expect("base"));
        let (_, flow_t) = time(|| neat.run(&data, Mode::Flow).expect("flow"));
        let (opt, opt_t) = time(|| neat.run(&data, Mode::Opt).expect("opt"));
        rows_a.push(vec![
            format!("MIA{objects}"),
            points.to_string(),
            secs(base_t),
            secs(flow_t),
            secs(opt_t),
            opt.flow_clusters.len().to_string(),
            opt.clusters.len().to_string(),
        ]);
        // Phase breakdown from the opt run's internal timings.
        let p1 = opt.timings.phase1.as_secs_f64();
        let p2 = opt.timings.phase2.as_secs_f64();
        let p3 = opt.timings.phase3.as_secs_f64();
        let total = (p1 + p2 + p3).max(f64::MIN_POSITIVE);
        rows_b.push(vec![
            format!("MIA{objects}"),
            format!("{p1:.3}"),
            format!("{p2:.3}"),
            format!("{p3:.3}"),
            format!("{:.1}%", 100.0 * p1 / total),
            format!("{:.1}%", 100.0 * p2 / total),
            format!("{:.1}%", 100.0 * p3 / total),
        ]);
    }
    report.table(
        &[
            "dataset",
            "points",
            "base-NEAT s",
            "flow-NEAT s",
            "opt-NEAT s",
            "#flows",
            "#final",
        ],
        &rows_a,
    );
    report.line("");
    report.line("Figure 6(b): phase breakdown within opt-NEAT");
    report.table(
        &[
            "dataset", "phase1 s", "phase2 s", "phase3 s", "p1 %", "p2 %", "p3 %",
        ],
        &rows_b,
    );
    report.line("shape checks (paper): near-linear scaling; opt ~= flow; phase1 > phase2");
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
