//! Cluster-quality evaluation against ground truth.
//!
//! The paper supports its "highly accurate" claim with visual comparison
//! (Figures 3–4). Our simulator knows the ground truth — which
//! trajectories followed the same origin→destination route — so this
//! binary scores NEAT and both baselines with pairwise precision /
//! recall / F1 and the Adjusted Rand Index over trajectory co-membership.

use neat_bench::report::{secs, Report};
use neat_bench::setup::{experiment_config, network, raw_gps_view};
use neat_bench::{parse_args, scaled, time};
use neat_core::evaluation::{assign_trajectories, pairwise_scores};
use neat_core::{Mode, Neat, NeatConfig};
use neat_mobisim::generate_dataset_labeled;
use neat_rnet::netgen::MapPreset;
use neat_traclus::whole::{cluster_whole_trajectories, WholeConfig};
use neat_traclus::{TraClus, TraClusConfig};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("accuracy");
    report.line(
        "Cluster quality vs simulator ground truth (same-route trajectories belong together)",
    );
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Atlanta, seed);
    let n = scaled(300, scale);
    let preset = neat_mobisim::presets::DatasetPreset::new(MapPreset::Atlanta, n);
    let (data, gt) =
        generate_dataset_labeled(&net, &preset.sim_config(), seed.wrapping_add(1), "acc");
    // Truth classes at the macro granularity: (hotspot region,
    // destination). Trajectories from the same area to the same place
    // belong together — the notion of "same traffic" the paper's flows
    // capture.
    let mut class_of: HashMap<(usize, usize), usize> = HashMap::new();
    let truth: HashMap<u64, usize> = data
        .trajectories()
        .iter()
        .map(|tr| {
            let mc = gt.macro_class(tr.id()).expect("labelled");
            let next = class_of.len();
            let c = *class_of.entry(mc).or_insert(next);
            (tr.id().value(), c)
        })
        .collect();
    report.line(format!(
        "dataset: {} trajectories, {} points, {} macro OD classes",
        data.len(),
        data.total_points(),
        class_of.len()
    ));

    let mut rows = Vec::new();

    // NEAT final clusters (moderate epsilon so clusters stay route-scale).
    let config = NeatConfig {
        epsilon: 2000.0,
        ..experiment_config()
    };
    let (result, t) = time(|| {
        Neat::new(&net, config)
            .run(&data, Mode::Opt)
            .expect("neat run")
    });
    let assigned: HashMap<u64, usize> = assign_trajectories(&result.clusters)
        .into_iter()
        .map(|(tr, c)| (tr.value(), c))
        .collect();
    let s = pairwise_scores(&truth, &assigned);
    rows.push(vec![
        "opt-NEAT (eps=2000m)".into(),
        result.clusters.len().to_string(),
        format!("{:.3}", s.precision),
        format!("{:.3}", s.recall),
        format!("{:.3}", s.f1),
        format!("{:.3}", s.adjusted_rand),
        secs(t),
    ]);

    // TraClus on the raw GPS view: trajectory assigned to the cluster
    // holding most of its line segments.
    let raw = raw_gps_view(&data, seed);
    let tc = TraClus::new(TraClusConfig {
        epsilon: 10.0,
        min_lns: 5,
        ..TraClusConfig::default()
    });
    let (tc_result, t) = time(|| tc.run(&raw));
    let mut votes: HashMap<u64, HashMap<usize, usize>> = HashMap::new();
    for (ci, cluster) in tc_result.clusters.iter().enumerate() {
        for seg in &cluster.segments {
            *votes
                .entry(seg.trajectory.value())
                .or_default()
                .entry(ci)
                .or_default() += 1;
        }
    }
    let tc_assigned: HashMap<u64, usize> = votes
        .into_iter()
        .map(|(tr, by)| {
            let best = by
                .into_iter()
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .expect("voted");
            (tr, best.0)
        })
        .collect();
    let s = pairwise_scores(&truth, &tc_assigned);
    rows.push(vec![
        "TraClus (eps=10m, MinLns=5)".into(),
        tc_result.clusters.len().to_string(),
        format!("{:.3}", s.precision),
        format!("{:.3}", s.recall),
        format!("{:.3}", s.f1),
        format!("{:.3}", s.adjusted_rand),
        secs(t),
    ]);

    // Whole-trajectory OPTICS.
    let (w, t) = time(|| {
        cluster_whole_trajectories(
            &data,
            &WholeConfig {
                eps: 500.0,
                min_pts: 3,
                eps_prime: 500.0,
                time_step_s: 20.0,
            },
        )
    });
    let mut w_assigned: HashMap<u64, usize> = HashMap::new();
    for (ci, cluster) in w.clusters.iter().enumerate() {
        for &idx in cluster {
            w_assigned.insert(data.trajectories()[idx].id().value(), ci);
        }
    }
    let s = pairwise_scores(&truth, &w_assigned);
    rows.push(vec![
        "Trajectory-OPTICS (eps=500m)".into(),
        w.clusters.len().to_string(),
        format!("{:.3}", s.precision),
        format!("{:.3}", s.recall),
        format!("{:.3}", s.f1),
        format!("{:.3}", s.adjusted_rand),
        secs(t),
    ]);

    report.table(
        &[
            "method",
            "#clusters",
            "precision",
            "recall",
            "F1",
            "ARI",
            "time s",
        ],
        &rows,
    );

    // Second granularity: exact (origin, destination) routes. Recall here
    // shows whether methods at least keep identical-route trips together.
    let mut route_class: HashMap<_, usize> = HashMap::new();
    let fine_truth: HashMap<u64, usize> = data
        .trajectories()
        .iter()
        .map(|tr| {
            let label = gt.labels[&tr.id()];
            let next = route_class.len();
            let c = *route_class.entry(label).or_insert(next);
            (tr.id().value(), c)
        })
        .collect();
    report.line("");
    report.line(format!(
        "exact-route granularity ({} distinct routes): recall of identical-route pairs",
        route_class.len()
    ));
    let mut rows = Vec::new();
    for (name, assigned) in [
        ("opt-NEAT", &assigned),
        ("TraClus", &tc_assigned),
        ("Trajectory-OPTICS", &w_assigned),
    ] {
        let s = pairwise_scores(&fine_truth, assigned);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", s.recall),
            format!("{:.3}", s.precision),
        ]);
    }
    report.table(&["method", "same-route recall", "precision"], &rows);
    report.line(
        "shape check (paper): NEAT groups same-route traffic better than the Euclidean baselines",
    );
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
