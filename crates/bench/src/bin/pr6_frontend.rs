//! Front-end benchmark for the flat SoA refactor: arena-backed Phase 1
//! against the legacy per-trajectory path, plus the cache-friendly
//! map-matching kernel (flat cost/backpointer matrices, CSR grid,
//! reusable scratch buffers).
//!
//! Emits `BENCH_PR6.json` with phase-1 wall-clock timings (legacy
//! reference vs arena at 1 and N threads), map-matching throughput, and
//! the deterministic work counters (`samples_scanned`,
//! `candidate_lookups`, `matrix_cells`) that gate CI. The arena runs
//! must produce byte-identical clusters to the legacy reference — the
//! binary asserts it.
//!
//! Flags:
//!
//! * `--smoke` — tiny fixture (seconds, debug-friendly); used by the CI
//!   `bench-smoke` job.
//! * `--out <path>` — where to write the JSON (default `BENCH_PR6.json`).
//! * `--check-baseline <path>` — compare the deterministic counters
//!   against a checked-in baseline JSON and exit non-zero on any drift.
//! * `--threads <n>` — thread count for the parallel run (default 8).
//! * `--objects <n>` / `--seed <n>` — full-mode dataset size and seed.

use neat_bench::setup::{dataset, experiment_config, network, DEFAULT_SEED};
use neat_bench::time;
use neat_core::{ErrorPolicy, Mode, Neat, NeatConfig, NeatResult};
use neat_mapmatch::{MapMatcher, MatchConfig};
use neat_mobisim::{generate_dataset, SimConfig};
use neat_rnet::location::RawSample;
use neat_rnet::netgen::{generate_grid_network, GridNetworkConfig, MapPreset};
use neat_rnet::RoadNetwork;
use neat_runctl::Control;
use neat_traj::{Dataset, Trajectory};
use serde_json::{json, Value};

struct Args {
    smoke: bool,
    out: String,
    check_baseline: Option<String>,
    threads: usize,
    objects: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        out: "BENCH_PR6.json".into(),
        check_baseline: None,
        threads: 8,
        objects: 5000,
        seed: DEFAULT_SEED,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = "usage: pr6_frontend [--smoke] [--out <path>] [--check-baseline <path>] \
                 [--threads <n>] [--objects <n>] [--seed <n>]";
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).unwrap_or_else(|| panic!("{usage}")).clone()
        };
        match argv[i].as_str() {
            "--smoke" => out.smoke = true,
            "--out" => out.out = value(&mut i),
            "--check-baseline" => out.check_baseline = Some(value(&mut i)),
            "--threads" => out.threads = value(&mut i).parse().expect(usage),
            "--objects" => out.objects = value(&mut i).parse().expect(usage),
            "--seed" => out.seed = value(&mut i).parse().expect(usage),
            _ => panic!("{usage}"),
        }
        i += 1;
    }
    out
}

/// The fixture the CI smoke job runs: the `crash_chaos`/`budget_chaos`
/// 4×4 grid with 18 objects — big enough for junction insertion and
/// Viterbi matching to do real work, small enough for a debug CI job.
fn smoke_fixture(seed: u64) -> (RoadNetwork, Dataset) {
    let net = generate_grid_network(&GridNetworkConfig::small_test(4, 4), seed);
    let sim = SimConfig {
        num_objects: 18,
        num_hotspots: 2,
        num_destinations: 2,
        sample_period_s: 4.0,
        ..SimConfig::default()
    };
    let data = generate_dataset(&net, &sim, seed, "pr6-smoke");
    (net, data)
}

/// Everything order-sensitive in a result, minus timings and stats.
fn cluster_fingerprint(r: &NeatResult) -> String {
    format!(
        "{}\n{}\n{:#?}\n{:#?}",
        r.fragment_count, r.samples_scanned, r.flow_clusters, r.clusters
    )
}

/// Repeats per timed configuration: single-shot wall clocks on a busy
/// box swing several-fold, so every reported time is a best-of-N minimum
/// (and the fingerprint is asserted identical across repeats).
const REPS: usize = 3;

/// One arena-path configuration (the default `Neat::run` front end),
/// timed best-of-[`REPS`].
fn arena_run(label: &str, cfg: &NeatConfig, net: &RoadNetwork, data: &Dataset) -> (Value, String) {
    let neat = Neat::new(net, *cfg);
    let mut best_p1 = f64::MAX;
    let mut best_total = f64::MAX;
    let mut fp: Option<String> = None;
    let mut summary = json!(null);
    for _ in 0..REPS {
        let (result, wall) = time(|| neat.run(data, Mode::Opt).expect("opt-NEAT run"));
        best_p1 = best_p1.min(result.timings.phase1.as_secs_f64());
        best_total = best_total.min(wall.as_secs_f64());
        let this_fp = cluster_fingerprint(&result);
        match &fp {
            Some(prev) => assert_eq!(prev, &this_fp, "{label}: output drifted across repeats"),
            None => fp = Some(this_fp),
        }
        summary = json!({
            "label": label,
            "threads": cfg.threads,
            "reps": REPS,
            "phase1_s": best_p1,
            "total_s": best_total,
            "fragments": result.fragment_count,
            "samples_scanned": result.samples_scanned,
            "flows": result.flow_clusters.len(),
            "clusters": result.clusters.len(),
        });
    }
    (summary, fp.expect("REPS >= 1"))
}

fn main() {
    let args = parse_args();
    let (net, data, fixture, cfg): (RoadNetwork, Dataset, String, NeatConfig) = if args.smoke {
        let (net, data) = smoke_fixture(7);
        let cfg = NeatConfig {
            min_card: 3,
            epsilon: 600.0,
            ..NeatConfig::default()
        };
        (net, data, "grid4x4-smoke".into(), cfg)
    } else {
        let net = network(MapPreset::SanJose, args.seed);
        let data = dataset(MapPreset::SanJose, &net, args.objects, args.seed);
        (
            net,
            data,
            format!("SJ{}", args.objects),
            experiment_config(),
        )
    };

    // Legacy reference: the controlled pipeline keeps the pre-refactor
    // per-trajectory extraction path, so an unlimited single-threaded
    // controlled run is the "before" for both timing and output.
    neat_bench::log::info(&format!(
        "pr6_frontend: fixture {fixture}, legacy reference"
    ));
    let ref_cfg = NeatConfig { threads: 1, ..cfg };
    let neat_ref = Neat::new(&net, ref_cfg);
    let mut ref_p1 = f64::MAX;
    let mut ref_total = f64::MAX;
    let mut ref_fp = String::new();
    let mut reference = json!(null);
    for _ in 0..REPS {
        let (ref_outcome, ref_wall) = time(|| {
            neat_ref
                .run_controlled(&data, Mode::Opt, ErrorPolicy::Strict, &Control::unlimited())
                .expect("legacy reference run")
        });
        assert!(
            ref_outcome.result.mode == Mode::Opt,
            "legacy reference must complete"
        );
        ref_fp = cluster_fingerprint(&ref_outcome.result);
        ref_p1 = ref_p1.min(ref_outcome.result.timings.phase1.as_secs_f64());
        ref_total = ref_total.min(ref_wall.as_secs_f64());
        reference = json!({
            "label": "legacy",
            "threads": 1,
            "reps": REPS,
            "phase1_s": ref_p1,
            "total_s": ref_total,
            "fragments": ref_outcome.result.fragment_count,
            "samples_scanned": ref_outcome.result.samples_scanned,
        });
    }

    // Arena front end at 1 and N threads: byte-identical output required.
    neat_bench::log::info("pr6_frontend: arena run (1 thread)");
    let (arena_1t, fp_1t) = arena_run("arena-1t", &NeatConfig { threads: 1, ..cfg }, &net, &data);
    neat_bench::log::info(&format!(
        "pr6_frontend: arena run ({} threads)",
        args.threads
    ));
    let (arena_nt, fp_nt) = arena_run(
        "arena-nt",
        &NeatConfig {
            threads: args.threads,
            ..cfg
        },
        &net,
        &data,
    );
    assert_eq!(
        ref_fp, fp_1t,
        "arena front end changed the clusters vs the legacy path"
    );
    assert_eq!(fp_1t, fp_nt, "arena front end is not thread-invariant");

    // Map-matching front end: strip the dataset back to raw GPS traces
    // and re-match them through the flat-matrix Viterbi kernel.
    let traces: Vec<Vec<RawSample>> = data
        .trajectories()
        .iter()
        .map(|tr: &Trajectory| {
            tr.points()
                .iter()
                .map(|p| RawSample::new(p.position, p.time))
                .collect()
        })
        .collect();
    neat_bench::log::info(&format!(
        "pr6_frontend: map-matching {} traces",
        traces.len()
    ));
    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let mut best = None;
    for _ in 0..REPS {
        let (run, wall) = time(|| {
            matcher
                .match_traces_stats(&traces, "pr6-matched")
                .expect("map-matching run")
        });
        if best.as_ref().is_none_or(|&(_, w)| wall < w) {
            best = Some((run, wall));
        }
    }
    let ((matched, skipped, stats), mm_wall) = best.expect("REPS >= 1");
    let mapmatch = json!({
        "traces": traces.len(),
        "matched": matched.len(),
        "skipped": skipped,
        "wall_s": mm_wall.as_secs_f64(),
        "samples_matched": stats.samples_matched,
        "candidate_lookups": stats.candidate_lookups,
        "matrix_cells": stats.matrix_cells,
    });

    // The deterministic counters the CI smoke gate pins: pure functions
    // of (fixture, config), identical at every thread count.
    let counters = json!({
        "samples_scanned": arena_nt.get("samples_scanned").cloned().expect("field"),
        "candidate_lookups": stats.candidate_lookups,
        "matrix_cells": stats.matrix_cells,
    });

    let p1 = |v: &Value| v.get("phase1_s").and_then(Value::as_f64).expect("field");
    let (p1_ref, p1_1t, p1_nt) = (p1(&reference), p1(&arena_1t), p1(&arena_nt));
    let speedup_nt = p1_ref / p1_nt.max(1e-9);
    let speedup_1t = p1_ref / p1_1t.max(1e-9);
    let report = json!({
        "bench": "pr6_frontend",
        "fixture": fixture,
        "seed": args.seed,
        "smoke": args.smoke,
        "reference": reference,
        "arena_1t": arena_1t,
        "arena_nt": arena_nt,
        "mapmatch": mapmatch,
        "counters": counters,
        "phase1_speedup_1t": speedup_1t,
        "phase1_speedup_nt": speedup_nt,
        "output_identical": true,
    });
    let pretty = format!(
        "{}\n",
        serde_json::to_string_pretty(&report).expect("serialize report")
    );
    std::fs::write(&args.out, &pretty).expect("write BENCH_PR6.json");
    neat_bench::log::out(&format!(
        "pr6_frontend: phase1 {:.4}s -> {:.4}s @1T ({speedup_1t:.2}x), {:.4}s @{}T \
         ({speedup_nt:.2}x); mapmatch {:.3}s for {} samples ({})",
        p1_ref,
        p1_1t,
        p1_nt,
        args.threads,
        mm_wall.as_secs_f64(),
        stats.samples_matched,
        args.out,
    ));

    if let Some(path) = args.check_baseline {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text).expect("parse baseline JSON");
        assert_eq!(
            baseline.get("fixture"),
            report.get("fixture"),
            "baseline was recorded on a different fixture"
        );
        let want = baseline.get("counters").expect("baseline counters");
        let got = report.get("counters").expect("report counters");
        if want != got {
            eprintln!(
                "pr6_frontend: COUNTER DRIFT — deterministic work counters diverged from \
                 {path}\n  baseline: {want:?}\n  current:  {got:?}"
            );
            std::process::exit(1);
        }
        neat_bench::log::out(&format!("pr6_frontend: counter gate ok ({got:?})"));
    }
}
