//! Table II — datasets used in the experiments.
//!
//! Generates all fifteen datasets ({ATL, SJ, MIA} × {500…5000}) and
//! reports paper point counts vs measured point counts of the synthetic
//! stand-ins.

use neat_bench::report::Report;
use neat_bench::{parse_args, scaled, time};
use neat_mobisim::presets::{DatasetPreset, OBJECT_COUNTS};
use neat_rnet::netgen::MapPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("table2");
    report.line("Table II: datasets (points: paper / measured)");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let mut rows = Vec::new();
    for map in MapPreset::all() {
        let net = neat_bench::setup::network(map, seed);
        for &objects in &OBJECT_COUNTS {
            let n = scaled(objects, scale);
            let preset = DatasetPreset::new(map, objects);
            let (data, gen_time) =
                time(|| DatasetPreset::new(map, n).generate_on(&net, seed.wrapping_add(1)));
            let paper = preset
                .paper_points()
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into());
            rows.push(vec![
                preset.label(),
                n.to_string(),
                paper,
                data.total_points().to_string(),
                format!(
                    "{:.1}",
                    data.total_points() as f64 / data.len().max(1) as f64
                ),
                format!("{:.2}s", gen_time.as_secs_f64()),
            ]);
        }
    }
    report.table(
        &[
            "dataset",
            "objects",
            "paper points",
            "measured points",
            "pts/object",
            "gen time",
        ],
        &rows,
    );
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
