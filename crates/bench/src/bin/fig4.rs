//! Figure 4 — TraClus on ATL500 with the paper's two parameterisations:
//! the tuned setting (ε = 10 m, MinLns = 30 → 81 clusters) and the
//! degenerate setting (ε = 1 m, MinLns = 1 → 460 clusters).

use neat_bench::report::Report;
use neat_bench::setup::{dataset, network, raw_gps_view};
use neat_bench::{parse_args, scaled, time};
use neat_rnet::netgen::MapPreset;
use neat_traclus::{TraClus, TraClusConfig};
use neat_viz::render;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("fig4");
    report.line("Figure 4: TraClus on ATL500");
    report.line("paper: eps=10m/MinLns=30 -> 81 clusters; eps=1m/MinLns=1 -> 460 clusters");
    report.line("our sweep (results/traclus_sweep.txt) tunes MinLns=5 for the synthetic geometry");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Atlanta, seed);
    let n = scaled(500, scale);
    let data = raw_gps_view(&dataset(MapPreset::Atlanta, &net, n, seed), seed);
    report.line(format!(
        "dataset: {} trajectories, {} points",
        data.len(),
        data.total_points()
    ));

    let mut rows = Vec::new();
    for (label, eps, min_lns, paper, svg_name) in [
        ("tuned", 10.0, 5usize, 81usize, "fig4a_tuned.svg"),
        ("degenerate", 1.0, 1usize, 460usize, "fig4b_degenerate.svg"),
    ] {
        let tc = TraClus::new(TraClusConfig {
            epsilon: eps,
            min_lns,
            ..TraClusConfig::default()
        });
        let (result, elapsed) = time(|| tc.run(&data));
        let avg_rep: f64 = if result.clusters.is_empty() {
            0.0
        } else {
            result
                .clusters
                .iter()
                .map(|c| c.representative_length())
                .sum::<f64>()
                / result.clusters.len() as f64
        };
        rows.push(vec![
            label.to_string(),
            format!("{eps}"),
            min_lns.to_string(),
            paper.to_string(),
            result.clusters.len().to_string(),
            result.noise.to_string(),
            result.total_segments.to_string(),
            format!("{:.1}", avg_rep),
            format!("{:.2}s", elapsed.as_secs_f64()),
        ]);
        let svg = render::render_traclus(&net, &result);
        Report::save_artifact(svg_name, &svg).expect("write svg");
    }
    report.table(
        &[
            "setting",
            "eps",
            "MinLns",
            "paper #clusters",
            "measured #clusters",
            "noise",
            "line segs",
            "avg rep len m",
            "time",
        ],
        &rows,
    );
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
