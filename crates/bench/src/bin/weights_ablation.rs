//! Ablation of the Phase-2 merging controls (Section III-B2): the
//! selectivity weights `(wq, wk, wv)` and the netflow-domination
//! threshold β. The paper discusses these qualitatively ("the setting of
//! the weights is usually determined by the specific location-based
//! applications"); this sweep quantifies their effect on the discovered
//! flows.

use neat_bench::report::Report;
use neat_bench::setup::{dataset, network};
use neat_bench::{parse_args, scaled, time};
use neat_core::{Mode, Neat, NeatConfig, Weights};
use neat_rnet::netgen::MapPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("weights_ablation");
    report.line("Ablation: merging-selectivity weights and beta on ATL500");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Atlanta, seed);
    let n = scaled(500, scale);
    let data = dataset(MapPreset::Atlanta, &net, n, seed);
    report.line(format!(
        "dataset: {} trajectories, {} points",
        data.len(),
        data.total_points()
    ));

    let weight_settings: [(&str, Weights); 5] = [
        ("balanced (1/3,1/3,1/3)", Weights::balanced()),
        ("flow only (1,0,0)", Weights::flow_only()),
        ("density only (0,1,0)", Weights::density_only()),
        ("speed only (0,0,1)", Weights::speed_only()),
        (
            "traffic monitoring (1/2,1/2,0)",
            Weights::traffic_monitoring(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, weights) in weight_settings {
        let config = NeatConfig {
            weights,
            min_card: 5,
            ..NeatConfig::default()
        };
        let (r, t) = time(|| Neat::new(&net, config).run(&data, Mode::Flow).expect("run"));
        rows.push(stats_row(name, &net, &r, t));
    }
    report.line("");
    report.line("weight sweep (beta = +inf):");
    report.table(
        &[
            "setting",
            "#flows",
            "avg len m",
            "max len m",
            "avg card",
            "avg speed limit m/s",
            "time s",
        ],
        &rows,
    );

    let mut rows = Vec::new();
    for beta in [1.0, 1.5, 2.0, 5.0, 10.0, f64::INFINITY] {
        let config = NeatConfig {
            weights: Weights::flow_only(),
            beta,
            min_card: 5,
            ..NeatConfig::default()
        };
        let (r, t) = time(|| Neat::new(&net, config).run(&data, Mode::Flow).expect("run"));
        rows.push(stats_row(&format!("beta = {beta}"), &net, &r, t));
    }
    report.line("");
    report.line("beta sweep (flow-only weights):");
    report.table(
        &[
            "setting",
            "#flows",
            "avg len m",
            "max len m",
            "avg card",
            "avg speed limit m/s",
            "time s",
        ],
        &rows,
    );
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}

fn stats_row(
    name: &str,
    net: &neat_rnet::RoadNetwork,
    r: &neat_core::NeatResult,
    t: std::time::Duration,
) -> Vec<String> {
    let lens: Vec<f64> = r
        .flow_clusters
        .iter()
        .map(|f| f.route_length(net))
        .collect();
    let cards: Vec<f64> = r
        .flow_clusters
        .iter()
        .map(|f| f.trajectory_cardinality() as f64)
        .collect();
    let speeds: Vec<f64> = r
        .flow_clusters
        .iter()
        .flat_map(|f| f.route())
        .filter_map(|s| net.segment(s).ok())
        .map(|s| s.speed_limit)
        .collect();
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    vec![
        name.to_string(),
        r.flow_clusters.len().to_string(),
        format!("{:.0}", avg(&lens)),
        format!("{:.0}", lens.iter().copied().fold(0.0f64, f64::max)),
        format!("{:.1}", avg(&cards)),
        format!("{:.1}", avg(&speeds)),
        format!("{:.3}", t.as_secs_f64()),
    ]
}
