//! Table III — number of flow clusters produced by opt-NEAT on the SJ
//! datasets (the quantity that drives Phase-3 cost in Figure 7b).

use neat_bench::report::Report;
use neat_bench::setup::{dataset, experiment_config, network};
use neat_bench::{parse_args, scaled, time};
use neat_core::{Mode, Neat};
use neat_mobisim::presets::OBJECT_COUNTS;
use neat_rnet::netgen::MapPreset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("table3");
    report.line("Table III: number of flow clusters produced by opt-NEAT (SJ datasets)");
    report.line("paper row: SJ500=73, SJ1000=156, SJ2000=55, SJ3000=52, SJ5000=180");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::SanJose, seed);
    let neat = Neat::new(&net, experiment_config());
    let paper = [73usize, 156, 55, 52, 180];
    let mut rows = Vec::new();
    for (i, &objects) in OBJECT_COUNTS.iter().enumerate() {
        let n = scaled(objects, scale);
        // Vary the dataset seed per size as the paper's independent runs do.
        let data = dataset(MapPreset::SanJose, &net, n, seed.wrapping_add(i as u64));
        let (result, elapsed) = time(|| neat.run(&data, Mode::Opt).expect("neat run"));
        rows.push(vec![
            format!("SJ{objects}"),
            n.to_string(),
            paper[i].to_string(),
            result.flow_clusters.len().to_string(),
            result.clusters.len().to_string(),
            format!("{:.2}s", elapsed.as_secs_f64()),
        ]);
    }
    report.table(
        &[
            "dataset",
            "objects",
            "paper #flows",
            "measured #flows",
            "#final clusters",
            "opt-NEAT time",
        ],
        &rows,
    );
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
