//! Parameter sweep for the TraClus baseline — the equivalent of the
//! paper's "vary ε from 1 m to 50 m and choose MinLns by visual
//! inspection" tuning procedure (Section IV-C), needed because the
//! optimal (ε, MinLns) depends on the dataset geometry.

use neat_bench::report::{secs, Report};
use neat_bench::setup::{dataset, network, raw_gps_view};
use neat_bench::{parse_args, scaled, time};
use neat_rnet::netgen::MapPreset;
use neat_traclus::{TraClus, TraClusConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, seed) = parse_args(&args);
    let mut report = Report::new("traclus_sweep");
    report.line("TraClus parameter sweep on ATL500 (tuning procedure of Section IV-C)");
    report.line(format!("scale = {scale}, seed = {seed}"));

    let net = network(MapPreset::Atlanta, seed);
    let n = scaled(500, scale);
    let data = raw_gps_view(&dataset(MapPreset::Atlanta, &net, n, seed), seed);
    report.line(format!(
        "dataset: {} trajectories, {} points",
        data.len(),
        data.total_points()
    ));

    // The TraClus authors' entropy heuristic, run on a sample of the
    // partitioned segments (quadratic scan).
    let sample: Vec<_> = neat_traclus::partition::partition_dataset(&data)
        .into_iter()
        .take(800)
        .collect();
    if let Some((eps, min_lns)) = neat_traclus::estimate_parameters(
        &sample,
        &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0],
        &neat_traclus::TraClusConfig::default(),
    ) {
        report.line(format!(
            "entropy heuristic (800-segment sample): eps = {eps}, MinLns = {min_lns}"
        ));
    }

    let mut rows = Vec::new();
    for eps in [1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0] {
        for min_lns in [1usize, 5, 10, 30] {
            let tc = TraClus::new(TraClusConfig {
                epsilon: eps,
                min_lns,
                ..TraClusConfig::default()
            });
            let (r, t) = time(|| tc.run(&data));
            let avg_rep = if r.clusters.is_empty() {
                0.0
            } else {
                r.clusters
                    .iter()
                    .map(|c| c.representative_length())
                    .sum::<f64>()
                    / r.clusters.len() as f64
            };
            rows.push(vec![
                format!("{eps}"),
                min_lns.to_string(),
                r.clusters.len().to_string(),
                r.noise.to_string(),
                r.total_segments.to_string(),
                format!("{avg_rep:.0}"),
                secs(t),
            ]);
        }
    }
    report.table(
        &[
            "eps",
            "MinLns",
            "#clusters",
            "noise",
            "segments",
            "avg rep m",
            "time",
        ],
        &rows,
    );
    let path = report.save().expect("write results");
    neat_bench::log::saved(&path);
}
