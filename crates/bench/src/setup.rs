//! Shared experiment setup: networks, datasets and the NEAT configuration
//! used across all figure/table binaries.

use neat_core::{NeatConfig, Weights};
use neat_mobisim::presets::DatasetPreset;
use neat_rnet::netgen::MapPreset;
use neat_rnet::RoadNetwork;
use neat_traj::Dataset;

/// The seed every experiment uses unless overridden with `--seed`.
pub const DEFAULT_SEED: u64 = 42;

/// The NEAT configuration used across the evaluation, mirroring the
/// paper's reported parameters: flow+density selectivity (the traffic
/// monitoring weighting of Section III-B2), β = +∞ (pure maxFlow
/// selection), `minCard = 5` and `ε = 6500 m` (Figure 3).
pub fn experiment_config() -> NeatConfig {
    NeatConfig {
        weights: Weights::traffic_monitoring(),
        beta: f64::INFINITY,
        min_card: 5,
        epsilon: 6500.0,
        use_elb: true,
        ..NeatConfig::default()
    }
}

/// Generates the network for `map` with the experiment seed.
pub fn network(map: MapPreset, seed: u64) -> RoadNetwork {
    map.generate(seed)
}

/// Generates a dataset of `objects` objects on `net` using the map's
/// calibrated simulation parameters.
pub fn dataset(map: MapPreset, net: &RoadNetwork, objects: usize, seed: u64) -> Dataset {
    DatasetPreset::new(map, objects).generate_on(net, seed.wrapping_add(1))
}

/// GPS noise (per-axis σ, metres) applied to the raw traces handed to
/// TraClus. The paper runs TraClus directly on the recorded coordinate
/// sequences, while NEAT consumes the map-matched signal (Section III-A);
/// this reproduces that asymmetry for our noise-free simulator output.
pub const GPS_NOISE_STD_M: f64 = 10.0;

/// The raw-GPS view of a simulated dataset: same trips and timestamps,
/// positions perturbed by [`GPS_NOISE_STD_M`] Gaussian noise. Segment ids
/// are carried over but TraClus never reads them.
pub fn raw_gps_view(data: &Dataset, seed: u64) -> Dataset {
    let traces = neat_mobisim::noise::to_raw_traces(data, GPS_NOISE_STD_M, seed ^ 0x5eed)
        .expect("valid noise std"); // lint:allow(L1) reason=GPS_NOISE_STD_M is a positive compile-time constant
    let mut out = Dataset::new(format!("{}-raw", data.name()));
    for (tr, trace) in data.trajectories().iter().zip(&traces) {
        let pts = tr
            .points()
            .iter()
            .zip(trace)
            .map(|(p, s)| neat_rnet::RoadLocation::new(p.segment, s.position, s.time))
            .collect();
        // lint:allow(L1) reason=the noise model preserves per-trajectory timestamp order
        out.push(neat_traj::Trajectory::new(tr.id(), pts).expect("noise preserves timestamps"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_config_is_valid() {
        assert!(experiment_config().validate().is_ok());
        assert_eq!(experiment_config().min_card, 5);
        assert_eq!(experiment_config().epsilon, 6500.0);
    }

    #[test]
    fn dataset_generation_smoke() {
        let net = network(MapPreset::Atlanta, DEFAULT_SEED);
        let d = dataset(MapPreset::Atlanta, &net, 20, DEFAULT_SEED);
        assert_eq!(d.len(), 20);
        assert!(d.total_points() > 100);
    }
}
