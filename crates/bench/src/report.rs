//! Plain-text experiment reports: aligned tables written to stdout and to
//! `results/<name>.txt` so EXPERIMENTS.md can quote them verbatim.
//!
//! All files land via [`neat_durability::write_atomic_std`] (temp file +
//! rename), so an interrupted run never leaves a truncated report that a
//! later diff against EXPERIMENTS.md would misread as a regression.

use neat_durability::write_atomic_std;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// An experiment report accumulating lines that are printed and saved.
#[derive(Debug, Clone, Default)]
pub struct Report {
    name: String,
    lines: Vec<String>,
}

impl Report {
    /// Creates a report named after its experiment (used as the output
    /// filename).
    pub fn new(name: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            lines: Vec::new(),
        }
    }

    /// Appends one line.
    pub fn line(&mut self, text: impl Into<String>) {
        let text = text.into();
        crate::log::out(&text);
        self.lines.push(text);
    }

    /// Appends an aligned table.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
        self.line(fmt_row(&head));
        self.line("-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        for row in rows {
            self.line(fmt_row(row));
        }
    }

    /// The directory experiment artefacts are written to (`results/`,
    /// created on demand).
    pub fn results_dir() -> PathBuf {
        let dir = PathBuf::from("results");
        let _ = fs::create_dir_all(&dir);
        dir
    }

    /// Writes the accumulated lines to `results/<name>.txt`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let path = Self::results_dir().join(format!("{}.txt", self.name));
        let mut buf = Vec::new();
        for l in &self.lines {
            writeln!(buf, "{l}")?;
        }
        write_atomic_std(&path, &buf).map_err(std::io::Error::other)?;
        Ok(path)
    }

    /// Saves an auxiliary artefact (e.g. an SVG) under `results/`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_artifact(filename: &str, contents: &str) -> std::io::Result<PathBuf> {
        let path = Self::results_dir().join(filename);
        write_atomic_std(&path, contents.as_bytes()).map_err(std::io::Error::other)?;
        Ok(path)
    }
}

/// Formats a `Duration` in seconds with millisecond precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let mut r = Report::new("test_align");
        r.table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(r.lines.iter().any(|l| l.contains("longer")));
        // All data rows have equal length.
        let data: Vec<&String> = r.lines.iter().filter(|l| !l.starts_with('-')).collect();
        assert_eq!(data[0].len(), data[1].len());
        assert_eq!(data[1].len(), data[2].len());
    }

    #[test]
    fn save_writes_file() {
        let mut r = Report::new("test_save_report");
        r.line("hello");
        let path = r.save().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("hello"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
