//! Experiment harness regenerating every table and figure of the NEAT
//! paper.
//!
//! Each table/figure has a dedicated binary (see DESIGN.md §3 for the
//! index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — road-network statistics |
//! | `table2` | Table II — dataset point counts |
//! | `table3` | Table III — flow clusters per SJ dataset |
//! | `fig3` | Figure 3 — ATL500 visualisation + cluster counts |
//! | `fig4` | Figure 4 — TraClus on ATL500 (two parameterisations) |
//! | `fig5` | Figure 5 — route lengths, cluster counts, runtimes |
//! | `fig6` | Figure 6 — NEAT version scaling + phase breakdown |
//! | `fig7` | Figure 7 — ELB vs Dijkstra in Phase 3 |
//! | `hybrid_variant` | §IV-C — TraClus hybrid on SJ2000 |
//!
//! Run them in release mode, e.g.
//! `cargo run --release -p neat-bench --bin table1`. Every binary accepts
//! `--scale <f>` to shrink the object counts (default 1.0 = the paper's
//! scale) and writes both stdout and `results/<name>.txt`.

pub mod log;
pub mod report;
pub mod setup;

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Parsed command-line options shared by the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchArgs {
    /// Object-count scale factor (1.0 = the paper's sizes).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Optional cap on the object count for the quadratic TraClus
    /// baseline (`--cap`); larger datasets get an extrapolated estimate.
    pub cap: Option<usize>,
}

/// Parses `--scale <f>`, `--seed <u64>` and `--cap <usize>` flags.
/// Defaults: scale 1.0, seed 42, no cap.
///
/// # Panics
///
/// Panics with a usage message on malformed flags.
pub fn parse_bench_args(args: &[String]) -> BenchArgs {
    let mut out = BenchArgs {
        scale: 1.0,
        seed: 42,
        cap: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                out.scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a positive number")); // lint:allow(L1) reason=CLI flag parsing for bench binaries; aborting on malformed flags is the intended UX
                i += 2;
            }
            "--seed" => {
                out.seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer")); // lint:allow(L1) reason=CLI flag parsing for bench binaries; aborting on malformed flags is the intended UX
                i += 2;
            }
            "--cap" => {
                out.cap = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--cap needs an integer")), // lint:allow(L1) reason=CLI flag parsing for bench binaries; aborting on malformed flags is the intended UX
                );
                i += 2;
            }
            other => panic!("unknown flag `{other}` (supported: --scale, --seed, --cap)"), // lint:allow(L1) reason=CLI flag parsing for bench binaries; aborting on malformed flags is the intended UX
        }
    }
    assert!(out.scale > 0.0, "--scale must be positive");
    out
}

/// Convenience wrapper returning only `(scale, seed)`.
///
/// # Panics
///
/// Same as [`parse_bench_args`].
pub fn parse_args(args: &[String]) -> (f64, u64) {
    let a = parse_bench_args(args);
    (a.scale, a.seed)
}

/// Scales an object count, keeping at least 10 objects.
pub fn scaled(objects: usize, scale: f64) -> usize {
    ((objects as f64 * scale).round() as usize).max(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn default_args() {
        assert_eq!(parse_args(&[]), (1.0, 42));
    }

    #[test]
    fn parses_scale_and_seed() {
        assert_eq!(
            parse_args(&s(&["--scale", "0.25", "--seed", "7"])),
            (0.25, 7)
        );
        assert_eq!(parse_args(&s(&["--seed", "9"])), (1.0, 9));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse_args(&s(&["--bogus"]));
    }

    #[test]
    fn scaled_floors_at_ten() {
        assert_eq!(scaled(500, 1.0), 500);
        assert_eq!(scaled(500, 0.1), 50);
        assert_eq!(scaled(20, 0.01), 10);
    }

    #[test]
    fn time_measures() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
