//! Declarative resource limits for a pipeline run.

/// Resource limits for one pipeline run. `None` means unlimited.
///
/// Budgets are *soft*: the pipeline never aborts when one is exhausted.
/// It stops the expensive loop it is in, walks the degradation ladder
/// (see `DESIGN.md` §11) and returns the best valid result computed so
/// far, tagged with what was and was not finished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock allowance in milliseconds, measured by the injected
    /// [`Clock`](crate::Clock) from the moment the
    /// [`Control`](crate::Control) is created. Consulted every
    /// [`DEADLINE_STRIDE`](crate::DEADLINE_STRIDE) cooperative checks.
    pub deadline_ms: Option<u64>,
    /// Maximum number of cooperative check points. Every check —
    /// trajectory extracted, merge step taken, pair refined, node
    /// settled — counts as one op, so an op budget bounds total work
    /// across all phases deterministically.
    pub max_ops: Option<u64>,
    /// Maximum number of nodes settled across all shortest-path
    /// expansions (the dominant cost of opt-NEAT's phase 3).
    pub max_settled_nodes: Option<u64>,
    /// Maximum number of flow clusters phase 2 may form.
    pub max_clusters: Option<usize>,
}

impl RunBudget {
    /// No limits at all — a run under this budget is bit-identical to an
    /// uncontrolled run.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        *self == RunBudget::default()
    }

    /// Sets the wall-clock allowance in milliseconds.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the cooperative-check budget.
    #[must_use]
    pub fn with_max_ops(mut self, ops: u64) -> Self {
        self.max_ops = Some(ops);
        self
    }

    /// Sets the settled-node budget.
    #[must_use]
    pub fn with_max_settled_nodes(mut self, nodes: u64) -> Self {
        self.max_settled_nodes = Some(nodes);
        self
    }

    /// Caps the number of flow clusters phase 2 may form.
    #[must_use]
    pub fn with_max_clusters(mut self, clusters: usize) -> Self {
        self.max_clusters = Some(clusters);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(RunBudget::unlimited().is_unlimited());
        assert!(!RunBudget::unlimited().with_max_ops(5).is_unlimited());
        assert!(!RunBudget::unlimited().with_deadline_ms(1).is_unlimited());
        assert!(!RunBudget::unlimited()
            .with_max_settled_nodes(1)
            .is_unlimited());
        assert!(!RunBudget::unlimited().with_max_clusters(1).is_unlimited());
    }
}
