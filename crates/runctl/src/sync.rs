//! The workspace's single sanctioned mutex poison policy.
//!
//! Every `Mutex` acquisition in library code goes through
//! [`Lock::enter`] (enforced by the `neat-lint` L6 rule — a raw
//! `.lock()` anywhere else is a diagnostic). `enter` *rides through*
//! poisoning: if another thread panicked while holding the guard, the
//! lock is taken anyway and the data used as-is.
//!
//! Why ride-through is the right default here: all workspace mutexes
//! (declared in `lint-locks.toml`) guard either append-only result bins
//! whose per-slot writes are completed before the guard drops (`exec`'s
//! worker bins), memo-cache shards where a torn entry at worst recomputes
//! (`neat::concache`), a swap cell whose update is a single pointer
//! store (`neatsvc::snapshot`), or test/observability buffers
//! (`runctl::progress`). None can be observed in a half-updated state
//! across a panic boundary, so propagating the poison would only convert
//! one thread's panic into a second, less diagnosable one. Components
//! that *do* want poison to propagate (e.g. `durability::MemFs`, whose
//! state is a multi-step filesystem simulation) deliberately keep an
//! annotated raw `.expect` acquisition instead.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Extension trait providing the sanctioned acquisition method.
pub trait Lock<T: ?Sized> {
    /// Acquires the lock, riding through poisoning (see module docs for
    /// why that is sound for every lock declared in `lint-locks.toml`).
    fn enter(&self) -> MutexGuard<'_, T>;
}

impl<T: ?Sized> Lock<T> for Mutex<T> {
    fn enter(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enter_locks_and_unlocks() {
        let m = Mutex::new(3u32);
        *m.enter() += 1;
        assert_eq!(*m.enter(), 4);
    }

    #[test]
    fn enter_rides_through_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.enter();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*m.enter(), 7, "data still reachable after poison");
    }
}
