//! The shared control handle threaded through the pipeline.

use crate::budget::RunBudget;
use crate::cancel::CancelToken;
use crate::clock::Clock;
use crate::progress::Progress;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// How many cooperative checks pass between two clock consultations.
///
/// Reading even a monotonic clock is expensive next to one Dijkstra
/// settlement, so the deadline is only consulted every `DEADLINE_STRIDE`
/// checks. Consequence: a deadline can overshoot by at most one stride
/// of work, and can never fire before the stride-th check.
pub const DEADLINE_STRIDE: u64 = 256;

/// Why a controlled run stopped early.
///
/// The first interrupt observed by a [`Control`] is *latched*: every
/// later check reports the same value, so all phases agree on the cause
/// and the degradation ladder descends monotonically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline passed (as measured by the injected
    /// [`Clock`]).
    DeadlineExceeded,
    /// The cooperative-check budget ran out.
    OpBudgetExhausted,
    /// The shortest-path settled-node budget ran out.
    SettledNodeBudgetExhausted,
    /// Phase 2 reached the flow-cluster cap.
    ClusterCapReached,
}

impl Interrupt {
    /// Stable kebab-case name (used in JSON output and artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Interrupt::Cancelled => "cancelled",
            Interrupt::DeadlineExceeded => "deadline-exceeded",
            Interrupt::OpBudgetExhausted => "op-budget-exhausted",
            Interrupt::SettledNodeBudgetExhausted => "settled-node-budget-exhausted",
            Interrupt::ClusterCapReached => "cluster-cap-reached",
        }
    }

    /// True for explicit cancellation — a *hard* stop: degraded
    /// continuations are skipped too, not just the expensive loops.
    pub fn is_cancellation(self) -> bool {
        matches!(self, Interrupt::Cancelled)
    }

    fn code(self) -> u8 {
        match self {
            Interrupt::Cancelled => 1,
            Interrupt::DeadlineExceeded => 2,
            Interrupt::OpBudgetExhausted => 3,
            Interrupt::SettledNodeBudgetExhausted => 4,
            Interrupt::ClusterCapReached => 5,
        }
    }

    fn from_code(code: u8) -> Option<Interrupt> {
        match code {
            1 => Some(Interrupt::Cancelled),
            2 => Some(Interrupt::DeadlineExceeded),
            3 => Some(Interrupt::OpBudgetExhausted),
            4 => Some(Interrupt::SettledNodeBudgetExhausted),
            5 => Some(Interrupt::ClusterCapReached),
            _ => None,
        }
    }
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What to do with the work *remaining* when a budget is exhausted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverrunMode {
    /// Walk the degradation ladder: replace the remaining expensive work
    /// with a cheaper approximation (e.g. phase 3 falls back from
    /// network distances to the Euclidean lower bound).
    #[default]
    Degrade,
    /// Stop immediately and return the best result computed so far,
    /// running no degraded continuation.
    Partial,
}

/// The execution-control handle threaded through every long loop.
///
/// A `Control` bundles a [`CancelToken`], a [`RunBudget`], an optional
/// injected [`Clock`] (required for deadlines to fire) and an optional
/// [`Progress`] observer. It is `Sync`; phases share it by reference,
/// including across the phase-1 worker threads.
///
/// Checks are observation-only until a limit fires: a run under
/// [`Control::unlimited`] makes exactly the same decisions as an
/// uncontrolled run.
pub struct Control {
    token: CancelToken,
    budget: RunBudget,
    clock: Option<Arc<dyn Clock>>,
    /// Absolute clock reading after which the deadline has passed.
    deadline_at_ms: Option<u64>,
    overrun: OverrunMode,
    ops: AtomicU64,
    settled: AtomicU64,
    /// First interrupt, encoded via [`Interrupt::code`]; 0 = none.
    latched: AtomicU8,
    progress: Option<Arc<dyn Progress>>,
}

impl fmt::Debug for Control {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Control")
            .field("budget", &self.budget)
            .field("overrun", &self.overrun)
            .field("ops", &self.ops.load(Ordering::SeqCst))
            .field("settled", &self.settled.load(Ordering::SeqCst))
            .field("interrupt", &self.interrupt())
            .finish_non_exhaustive()
    }
}

impl Default for Control {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Control {
    /// A control with no limits and a fresh token: checks always pass.
    pub fn unlimited() -> Self {
        Control::new(RunBudget::unlimited(), CancelToken::new())
    }

    /// A control enforcing `budget` and observing `token`.
    ///
    /// Note: a `deadline_ms` in the budget is inert until a clock is
    /// attached with [`Control::with_clock`].
    pub fn new(budget: RunBudget, token: CancelToken) -> Self {
        Control {
            token,
            budget,
            clock: None,
            deadline_at_ms: None,
            overrun: OverrunMode::default(),
            ops: AtomicU64::new(0),
            settled: AtomicU64::new(0),
            latched: AtomicU8::new(0),
            progress: None,
        }
    }

    /// Attaches the clock that measures the deadline. The budget's
    /// allowance starts counting from this call.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        if let Some(allowance) = self.budget.deadline_ms {
            self.deadline_at_ms = Some(clock.now_millis().saturating_add(allowance));
        }
        self.clock = Some(clock);
        self
    }

    /// Sets the overrun policy (default: [`OverrunMode::Degrade`]).
    #[must_use]
    pub fn with_overrun(mut self, overrun: OverrunMode) -> Self {
        self.overrun = overrun;
        self
    }

    /// Attaches a progress observer.
    #[must_use]
    pub fn with_progress(mut self, progress: Arc<dyn Progress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The cooperative check point. Counts one op, polls the token and
    /// the op/deadline budgets; the first limit to fire is latched and
    /// reported by every subsequent check.
    ///
    /// # Errors
    ///
    /// Returns the latched [`Interrupt`] once the run should stop.
    pub fn check(&self) -> Result<(), Interrupt> {
        if let Some(i) = self.interrupt() {
            return Err(i);
        }
        // lint:allow(L7) reason=ops is a monotonic check counter; each thread only compares against its own increment result, so no cross-thread ordering is needed
        let ops = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if self.token.is_cancelled() {
            return Err(self.latch(Interrupt::Cancelled));
        }
        if let Some(max) = self.budget.max_ops {
            if ops > max {
                return Err(self.latch(Interrupt::OpBudgetExhausted));
            }
        }
        if let (Some(at), Some(clock)) = (self.deadline_at_ms, self.clock.as_deref()) {
            if ops.is_multiple_of(DEADLINE_STRIDE) && clock.now_millis() >= at {
                return Err(self.latch(Interrupt::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// [`Control::check`] plus one settled node against the settled-node
    /// budget — called per shortest-path settlement.
    ///
    /// # Errors
    ///
    /// Same contract as [`Control::check`].
    pub fn check_settled(&self) -> Result<(), Interrupt> {
        // lint:allow(L7) reason=settled is a monotonic budget counter; the budget bound is approximate across threads by design, so no cross-thread ordering is needed
        let settled = self.settled.fetch_add(1, Ordering::Relaxed) + 1;
        self.check()?;
        if let Some(max) = self.budget.max_settled_nodes {
            if settled > max {
                return Err(self.latch(Interrupt::SettledNodeBudgetExhausted));
            }
        }
        Ok(())
    }

    /// Polls only for cancellation. Degraded continuations run *after*
    /// a budget has been exhausted, so they must keep honouring the
    /// cancel token without instantly re-tripping over the spent budget.
    ///
    /// # Errors
    ///
    /// Returns the latched interrupt when the token is cancelled.
    pub fn check_cancel(&self) -> Result<(), Interrupt> {
        if self.token.is_cancelled() {
            return Err(self.latch(Interrupt::Cancelled));
        }
        Ok(())
    }

    /// Reports the number of flow clusters formed so far; fires when the
    /// cap is met.
    ///
    /// # Errors
    ///
    /// Returns [`Interrupt::ClusterCapReached`] (or an earlier latched
    /// interrupt) once `formed` meets the cap.
    pub fn check_clusters(&self, formed: usize) -> Result<(), Interrupt> {
        if let Some(i) = self.interrupt() {
            return Err(i);
        }
        if let Some(cap) = self.budget.max_clusters {
            if formed >= cap {
                return Err(self.latch(Interrupt::ClusterCapReached));
            }
        }
        Ok(())
    }

    /// Latches `why` if nothing is latched yet; returns the latched
    /// interrupt either way. The progress observer is notified exactly
    /// once, by the latching call.
    fn latch(&self, why: Interrupt) -> Interrupt {
        match self
            .latched
            .compare_exchange(0, why.code(), Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => {
                if let Some(p) = &self.progress {
                    p.on_interrupt(why);
                }
                why
            }
            Err(prev) => Interrupt::from_code(prev).unwrap_or(why),
        }
    }

    /// The latched interrupt, if any limit has fired.
    pub fn interrupt(&self) -> Option<Interrupt> {
        Interrupt::from_code(self.latched.load(Ordering::SeqCst))
    }

    /// True once any limit has fired.
    pub fn is_interrupted(&self) -> bool {
        self.interrupt().is_some()
    }

    /// Cooperative checks performed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Shortest-path nodes settled so far.
    pub fn settled(&self) -> u64 {
        self.settled.load(Ordering::SeqCst)
    }

    /// The budget this control enforces.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    /// The overrun policy.
    pub fn overrun(&self) -> OverrunMode {
        self.overrun
    }

    /// The observed cancel token.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Notifies the progress observer that `phase` began.
    pub fn phase_start(&self, phase: &str) {
        if let Some(p) = &self.progress {
            p.on_phase_start(phase);
        }
    }

    /// Notifies the progress observer that `phase` ended.
    pub fn phase_end(&self, phase: &str) {
        if let Some(p) = &self.progress {
            p.on_phase_end(phase);
        }
    }

    /// Notifies the progress observer of a degradation step.
    pub fn degrade(&self, what: &str) {
        if let Some(p) = &self.progress {
            p.on_degrade(what);
        }
    }

    /// A side control for speculative execution: unlimited budget, no
    /// clock and an [observer token](CancelToken::observer), so its
    /// checks count ops and settled nodes without consuming this
    /// control's budget or fuse, and fail only on a manual cancel.
    ///
    /// A worker runs one work item against a recorder, then the
    /// deterministic reduction replays the recorded `(ops, settled)`
    /// totals into the real control with [`Control::try_charge`].
    pub fn recorder(&self) -> Control {
        Control {
            token: self.token.observer(),
            budget: RunBudget::unlimited(),
            clock: None,
            deadline_at_ms: None,
            overrun: self.overrun,
            ops: AtomicU64::new(0),
            settled: AtomicU64::new(0),
            latched: AtomicU8::new(0),
            progress: None,
        }
    }

    /// Applies a work item's recorded check-point activity in one step,
    /// exactly as `ops_delta` live checks (of which `settled_delta`
    /// were settlements) would have.
    ///
    /// Returns [`Charge::Committed`] when no limit fires anywhere inside
    /// the item: the op/settled counters advance and an armed fuse is
    /// counted down, with no interrupt latched. Returns
    /// [`Charge::Replay`] — mutating *nothing* — when any limit would
    /// fire at some check inside the item, or when a deadline clock
    /// would be consulted (a stride boundary falls inside the item):
    /// the caller must re-run the item live against this control so the
    /// interrupt latches at exactly the op index the sequential run
    /// would have latched it at.
    ///
    /// The caller must hold the only mutating reference for the
    /// duration of the call (the executor folds on a single thread); a
    /// concurrent manual cancel is picked up no later than the next
    /// charge.
    pub fn try_charge(&self, ops_delta: u64, settled_delta: u64) -> Charge {
        if ops_delta == 0 && settled_delta == 0 {
            // An item that never checked in cannot observe any limit.
            return Charge::Committed;
        }
        if self.is_interrupted() {
            return Charge::Replay;
        }
        let ops = self.ops.load(Ordering::SeqCst);
        let settled = self.settled.load(Ordering::SeqCst);
        if self.token.would_trip_within(ops_delta) {
            return Charge::Replay;
        }
        if let Some(max) = self.budget.max_ops {
            if ops + ops_delta > max {
                return Charge::Replay;
            }
        }
        if let Some(max) = self.budget.max_settled_nodes {
            if settled + settled_delta > max {
                return Charge::Replay;
            }
        }
        if self.deadline_at_ms.is_some()
            && self.clock.is_some()
            && (ops + ops_delta) / DEADLINE_STRIDE > ops / DEADLINE_STRIDE
        {
            // A live run would consult the clock inside this item; replay
            // so the consultation count and any deadline latch match the
            // sequential run exactly.
            return Charge::Replay;
        }
        self.token.consume_polls(ops_delta);
        self.ops.fetch_add(ops_delta, Ordering::SeqCst);
        self.settled.fetch_add(settled_delta, Ordering::SeqCst);
        Charge::Committed
    }
}

/// Outcome of [`Control::try_charge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Charge {
    /// The bulk charge was applied; the item's recorded result stands.
    Committed,
    /// Some limit fires inside the item (or a deadline consultation is
    /// due); nothing was mutated and the item must re-run live.
    Replay,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::OpClock;
    use crate::progress::CollectingProgress;

    #[test]
    fn unlimited_control_never_interrupts() {
        let c = Control::unlimited();
        for _ in 0..10_000 {
            assert!(c.check().is_ok());
            assert!(c.check_settled().is_ok());
        }
        assert!(c.check_clusters(usize::MAX - 1).is_ok());
        assert_eq!(c.interrupt(), None);
        assert_eq!(c.ops(), 20_000);
        assert_eq!(c.settled(), 10_000);
    }

    #[test]
    fn op_budget_fires_at_exact_index() {
        let c = Control::new(RunBudget::unlimited().with_max_ops(3), CancelToken::new());
        assert!(c.check().is_ok());
        assert!(c.check().is_ok());
        assert!(c.check().is_ok());
        assert_eq!(c.check(), Err(Interrupt::OpBudgetExhausted));
        // Latched: every later check reports the same interrupt.
        assert_eq!(c.check(), Err(Interrupt::OpBudgetExhausted));
        assert_eq!(c.check_settled(), Err(Interrupt::OpBudgetExhausted));
        assert_eq!(c.interrupt(), Some(Interrupt::OpBudgetExhausted));
    }

    #[test]
    fn settled_budget_fires_and_latches() {
        let c = Control::new(
            RunBudget::unlimited().with_max_settled_nodes(2),
            CancelToken::new(),
        );
        assert!(c.check_settled().is_ok());
        assert!(c.check().is_ok()); // plain checks do not settle nodes
        assert!(c.check_settled().is_ok());
        assert_eq!(
            c.check_settled(),
            Err(Interrupt::SettledNodeBudgetExhausted)
        );
        assert_eq!(c.check(), Err(Interrupt::SettledNodeBudgetExhausted));
    }

    #[test]
    fn cancellation_wins_and_sticks() {
        let token = CancelToken::new();
        let c = Control::new(RunBudget::unlimited().with_max_ops(1), token.clone());
        token.cancel();
        assert_eq!(c.check(), Err(Interrupt::Cancelled));
        // First latch wins even though the op budget is also exhausted.
        assert_eq!(c.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_fires_on_strided_clock_consultation() {
        let clock = Arc::new(OpClock::new(1));
        let c = Control::new(
            RunBudget::unlimited().with_deadline_ms(2),
            CancelToken::new(),
        )
        .with_clock(clock);
        // Construction consumed observation 0 (now = 0); the deadline is
        // at 2 ms. Consultations happen every DEADLINE_STRIDE checks and
        // each advances the clock 1 ms, so the third consultation (check
        // number 3 * DEADLINE_STRIDE) sees now = 3 >= 2... the second
        // consultation already sees now = 2 >= 2.
        let mut fired_at = None;
        for i in 1..=(3 * DEADLINE_STRIDE) {
            if c.check().is_err() {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(fired_at, Some(2 * DEADLINE_STRIDE));
        assert_eq!(c.interrupt(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn deadline_without_clock_is_inert() {
        let c = Control::new(
            RunBudget::unlimited().with_deadline_ms(0),
            CancelToken::new(),
        );
        for _ in 0..2 * DEADLINE_STRIDE {
            assert!(c.check().is_ok());
        }
    }

    #[test]
    fn cluster_cap_fires_at_cap() {
        let c = Control::new(
            RunBudget::unlimited().with_max_clusters(2),
            CancelToken::new(),
        );
        assert!(c.check_clusters(0).is_ok());
        assert!(c.check_clusters(1).is_ok());
        assert_eq!(c.check_clusters(2), Err(Interrupt::ClusterCapReached));
        assert_eq!(c.check(), Err(Interrupt::ClusterCapReached));
    }

    #[test]
    fn check_cancel_ignores_spent_budgets() {
        let token = CancelToken::new();
        let c = Control::new(RunBudget::unlimited().with_max_ops(0), token.clone());
        assert_eq!(c.check(), Err(Interrupt::OpBudgetExhausted));
        // The degraded continuation keeps running…
        assert!(c.check_cancel().is_ok());
        // …until the user actually cancels.
        token.cancel();
        assert!(c.check_cancel().is_err());
        // The first interrupt remains the reported cause.
        assert_eq!(c.interrupt(), Some(Interrupt::OpBudgetExhausted));
    }

    #[test]
    fn fused_token_trips_through_check() {
        let c = Control::new(RunBudget::unlimited(), CancelToken::armed_after(2));
        assert!(c.check().is_ok());
        assert!(c.check().is_ok());
        assert_eq!(c.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn recorder_counts_without_spending_the_real_budget() {
        let c = Control::new(
            RunBudget::unlimited().with_max_ops(2),
            CancelToken::armed_after(5),
        );
        let r = c.recorder();
        for _ in 0..100 {
            assert!(r.check().is_ok());
            assert!(r.check_settled().is_ok());
        }
        assert_eq!(r.ops(), 200);
        assert_eq!(r.settled(), 100);
        assert_eq!(c.ops(), 0);
        // The real control's fuse and budget are untouched.
        assert!(c.check().is_ok());
    }

    #[test]
    fn recorder_fails_on_manual_cancel_only() {
        let token = CancelToken::new();
        let c = Control::new(RunBudget::unlimited().with_max_ops(0), token.clone());
        let r = c.recorder();
        assert!(r.check().is_ok()); // the real op budget does not apply
        token.cancel();
        assert_eq!(r.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn try_charge_commits_exactly_like_live_checks() {
        let bulk = Control::new(
            RunBudget::unlimited()
                .with_max_ops(10)
                .with_max_settled_nodes(4),
            CancelToken::armed_after(20),
        );
        assert_eq!(bulk.try_charge(6, 3), Charge::Committed);
        let live = Control::new(
            RunBudget::unlimited()
                .with_max_ops(10)
                .with_max_settled_nodes(4),
            CancelToken::armed_after(20),
        );
        for i in 0..6 {
            if i < 3 {
                assert!(live.check_settled().is_ok());
            } else {
                assert!(live.check().is_ok());
            }
        }
        assert_eq!(bulk.ops(), live.ops());
        assert_eq!(bulk.settled(), live.settled());
        // Both controls now fail at the same future check index.
        for c in [&bulk, &live] {
            for _ in 0..4 {
                assert!(c.check().is_ok(), "ops 7..=10 fit the budget");
            }
            assert_eq!(c.check(), Err(Interrupt::OpBudgetExhausted));
        }
    }

    #[test]
    fn try_charge_replays_on_any_crossing_without_mutation() {
        // Op budget crossing.
        let c = Control::new(RunBudget::unlimited().with_max_ops(5), CancelToken::new());
        assert_eq!(c.try_charge(3, 0), Charge::Committed);
        assert_eq!(c.try_charge(3, 0), Charge::Replay);
        assert_eq!(c.ops(), 3, "a replayed charge must not mutate counters");
        assert_eq!(c.interrupt(), None);
        // Settled budget crossing.
        let s = Control::new(
            RunBudget::unlimited().with_max_settled_nodes(2),
            CancelToken::new(),
        );
        assert_eq!(s.try_charge(3, 3), Charge::Replay);
        // Fuse crossing.
        let f = Control::new(RunBudget::unlimited(), CancelToken::armed_after(2));
        assert_eq!(f.try_charge(3, 0), Charge::Replay);
        assert_eq!(f.try_charge(2, 0), Charge::Committed);
        assert_eq!(f.try_charge(1, 0), Charge::Replay, "next poll trips");
        // Latched control always replays (the live first check reports it).
        let l = Control::new(RunBudget::unlimited().with_max_ops(0), CancelToken::new());
        assert!(l.check().is_err());
        assert_eq!(l.try_charge(1, 0), Charge::Replay);
        // Zero-delta items commit even then: they never observe checks.
        assert_eq!(l.try_charge(0, 0), Charge::Committed);
    }

    #[test]
    fn try_charge_replays_across_deadline_strides() {
        let clock = Arc::new(OpClock::new(0)); // clock never advances: deadline never fires
        let c = Control::new(
            RunBudget::unlimited().with_deadline_ms(1_000_000),
            CancelToken::new(),
        )
        .with_clock(clock);
        // No stride boundary inside the item: commit.
        assert_eq!(c.try_charge(DEADLINE_STRIDE - 1, 0), Charge::Committed);
        // ops is now STRIDE-1; one more op lands exactly on the boundary.
        assert_eq!(c.try_charge(1, 0), Charge::Replay);
    }

    #[test]
    fn progress_sees_interrupt_exactly_once() {
        let progress = Arc::new(CollectingProgress::new());
        let c = Control::new(RunBudget::unlimited().with_max_ops(0), CancelToken::new())
            .with_progress(progress.clone());
        c.phase_start("phase1");
        let _ = c.check();
        let _ = c.check();
        c.degrade("phase3: elb-only");
        c.phase_end("phase1");
        assert_eq!(
            progress.events(),
            vec![
                "start phase1",
                "interrupt op-budget-exhausted",
                "degrade phase3: elb-only",
                "end phase1",
            ]
        );
    }
}
