//! Execution control for long-running NEAT pipelines.
//!
//! The clustering phases are open-ended graph computations — phase 3 in
//! particular is dominated by network shortest-path expansions — so a
//! production deployment needs a way to *bound* a run (wall-clock
//! deadline, settled-node or operation budgets, cluster-count caps), to
//! *cancel* it cooperatively from another thread, and to *observe* its
//! progress, all without perturbing the computed result while the limits
//! are not hit.
//!
//! This crate is the dependency-free kernel of that machinery:
//!
//! * [`CancelToken`] — a cloneable, thread-safe cancellation flag.
//! * [`RunBudget`] — declarative resource limits.
//! * [`Clock`] — the **only** sanctioned way for wall-clock time to reach
//!   algorithm code. Production uses [`SystemClock`]; tests use the
//!   deterministic [`OpClock`] so budgeted runs replay bit-identically.
//!   The `neat-lint` L5 rule bans `Instant::now()` in algorithm crates
//!   except inside the designated [`clock`] boundary module.
//! * [`Control`] — the shared handle threaded through the pipeline's
//!   loops. Each loop iteration calls [`Control::check`] (or
//!   [`Control::check_settled`] per Dijkstra settlement); the first
//!   exhausted limit or observed cancellation is *latched* and every
//!   later check reports the same [`Interrupt`], so callers can walk a
//!   degradation ladder deterministically.
//! * [`Progress`] — an observer interface for phase transitions,
//!   interrupts and degradations.
//!
//! Checks are observation-only until a limit actually fires: a run under
//! [`Control::unlimited`] is bit-identical to an uncontrolled run.

pub mod budget;
pub mod cancel;
pub mod clock;
pub mod control;
pub mod progress;
pub mod sync;

pub use budget::RunBudget;
pub use cancel::CancelToken;
pub use clock::{Clock, Deadline, OpClock, SystemClock};
pub use control::{Charge, Control, Interrupt, OverrunMode, DEADLINE_STRIDE};
pub use progress::{CollectingProgress, NullProgress, Progress};
pub use sync::Lock;
