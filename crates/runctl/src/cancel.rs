//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for a disarmed countdown fuse.
const DISARMED: u64 = u64::MAX;

/// A cloneable, thread-safe cancellation flag.
///
/// All clones share the same state: cancelling any of them cancels the
/// run. Cancellation is *cooperative* — the pipeline polls the token at
/// its check points and winds down gracefully, returning the best valid
/// partial result computed so far.
///
/// Besides the manual [`CancelToken::cancel`], a token can carry a
/// *countdown fuse* ([`CancelToken::armed_after`]) that trips after a
/// given number of polls. The fuse exists for fault-injection tests: it
/// turns "cancel at the n-th cooperative check point" into a
/// deterministic, enumerable event, exactly like the crash-point matrix
/// of the durability chaos harness.
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Remaining polls before the fuse trips; [`DISARMED`] when unused.
    fuse: Arc<AtomicU64>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            fuse: Arc::new(AtomicU64::new(DISARMED)),
        }
    }

    /// A token whose first `polls` calls to [`CancelToken::is_cancelled`]
    /// report `false` and whose next call trips it (0 cancels on the
    /// first poll).
    pub fn armed_after(polls: u64) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            fuse: Arc::new(AtomicU64::new(polls)),
        }
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// A token sharing this token's *flag* but carrying no fuse.
    ///
    /// Observer tokens exist for speculative parallel execution: worker
    /// threads must notice a manual [`CancelToken::cancel`] promptly,
    /// but their polls must not consume the countdown fuse — the fuse
    /// models "cancel at the n-th *sequential* check point", and only
    /// the deterministic index-ordered reduction may count it down.
    pub fn observer(&self) -> Self {
        CancelToken {
            flag: Arc::clone(&self.flag),
            fuse: Arc::new(AtomicU64::new(DISARMED)),
        }
    }

    /// True when the *next* `polls` polls would trip this token: either
    /// the flag is already set, or an armed fuse has fewer than `polls`
    /// grace polls left. Does not mutate any state.
    pub fn would_trip_within(&self, polls: u64) -> bool {
        if self.flag.load(Ordering::SeqCst) {
            return true;
        }
        match self.fuse.load(Ordering::SeqCst) {
            DISARMED => false,
            left => left < polls,
        }
    }

    /// Counts an armed fuse down by `n` polls in one step, exactly as
    /// `n` calls to [`CancelToken::is_cancelled`] would when none of
    /// them trips. Callers must have established via
    /// [`CancelToken::would_trip_within`] that the fuse survives.
    pub fn consume_polls(&self, n: u64) {
        if n == 0 {
            return;
        }
        let _ = self
            .fuse
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| match left {
                DISARMED => None,
                l => Some(l.saturating_sub(n)),
            });
    }

    /// Polls the token. Counts down an armed fuse as a side effect.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::SeqCst) {
            return true;
        }
        match self
            .fuse
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| match left {
                DISARMED => None,
                0 => None,
                n => Some(n - 1),
            }) {
            // The fuse ran out of grace polls: trip the flag.
            Err(0) => {
                self.flag.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_shared_by_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
    }

    #[test]
    fn fuse_trips_at_exact_poll() {
        let t = CancelToken::armed_after(3);
        assert!(!t.is_cancelled()); // poll 0
        assert!(!t.is_cancelled()); // poll 1
        assert!(!t.is_cancelled()); // poll 2
        assert!(t.is_cancelled()); // poll 3 — fuse trips
        assert!(t.is_cancelled()); // latched thereafter
    }

    #[test]
    fn fuse_armed_at_zero_trips_immediately() {
        let t = CancelToken::armed_after(0);
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn unarmed_token_never_trips_on_its_own() {
        let t = CancelToken::new();
        for _ in 0..10_000 {
            assert!(!t.is_cancelled());
        }
    }

    #[test]
    fn observer_shares_flag_but_not_fuse() {
        let t = CancelToken::armed_after(2);
        let o = t.observer();
        // Observer polls never count against the original fuse.
        for _ in 0..100 {
            assert!(!o.is_cancelled());
        }
        assert!(!t.is_cancelled()); // poll 0
        assert!(!t.is_cancelled()); // poll 1
        assert!(t.is_cancelled()); // fuse trips
        assert!(o.is_cancelled()); // flag is shared
    }

    #[test]
    fn observer_sees_manual_cancel() {
        let t = CancelToken::new();
        let o = t.observer();
        assert!(!o.is_cancelled());
        t.cancel();
        assert!(o.is_cancelled());
    }

    #[test]
    fn would_trip_within_matches_poll_by_poll_behaviour() {
        let t = CancelToken::armed_after(3);
        assert!(!t.would_trip_within(3)); // 3 grace polls survive 3 polls
        assert!(t.would_trip_within(4)); // the 4th poll trips
        let u = CancelToken::new();
        assert!(!u.would_trip_within(u64::MAX));
        u.cancel();
        assert!(u.would_trip_within(0));
    }

    #[test]
    fn consume_polls_equals_repeated_single_polls() {
        let bulk = CancelToken::armed_after(5);
        bulk.consume_polls(3);
        let single = CancelToken::armed_after(5);
        for _ in 0..3 {
            assert!(!single.is_cancelled());
        }
        // Both have 2 grace polls left: two more succeed, the third trips.
        for t in [&bulk, &single] {
            assert!(!t.is_cancelled());
            assert!(!t.is_cancelled());
            assert!(t.is_cancelled());
        }
    }
}
