//! The clock-injection boundary.
//!
//! Wall-clock time may enter algorithm code **only** through the
//! [`Clock`] trait. This module is the single place in the algorithm
//! crates where `std::time::Instant` is touched (`neat-lint` rule L5
//! allows it here and nowhere else): [`SystemClock`] converts the host's
//! monotonic clock into the trait, while [`OpClock`] is a deterministic
//! stand-in that advances a fixed tick per observation, so deadline
//! behaviour is replayable in tests and the checkpoint/resume
//! determinism guarantees survive budgeted runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic millisecond clock with an arbitrary epoch.
///
/// Implementations must be monotone non-decreasing; the absolute origin
/// does not matter because deadlines are measured as differences.
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed since the clock's epoch.
    fn now_millis(&self) -> u64;
}

/// The production clock: wraps the host monotonic clock, with its epoch
/// fixed at construction time.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Clock for SystemClock {
    fn now_millis(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock that advances `tick_ms` every observation.
///
/// `now_millis` returns `0, tick_ms, 2·tick_ms, …` on successive calls,
/// making "the deadline fires after the n-th consultation" an exact,
/// replayable event — the time analogue of arming a
/// [`CancelToken`](crate::CancelToken) fuse.
#[derive(Debug)]
pub struct OpClock {
    tick_ms: u64,
    observations: AtomicU64,
}

impl OpClock {
    /// A clock advancing `tick_ms` milliseconds per observation.
    pub fn new(tick_ms: u64) -> Self {
        OpClock {
            tick_ms,
            observations: AtomicU64::new(0),
        }
    }

    /// How many times the clock has been consulted.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::SeqCst)
    }
}

impl Clock for OpClock {
    fn now_millis(&self) -> u64 {
        self.observations
            .fetch_add(1, Ordering::SeqCst)
            .saturating_mul(self.tick_ms)
    }
}

/// A fixed point in a [`Clock`]'s timeline, for idle/read deadlines.
///
/// Captures `clock.now_millis() + budget` at construction; `expired`
/// and `remaining_ms` consult the same injected clock, so deadline
/// behaviour is deterministic under [`OpClock`] — a slowloris test can
/// arm a deadline and know exactly which observation trips it.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at_ms: u64,
}

impl Deadline {
    /// A deadline `budget_ms` after the clock's current time.
    pub fn after(clock: &dyn Clock, budget_ms: u64) -> Self {
        Deadline {
            at_ms: clock.now_millis().saturating_add(budget_ms),
        }
    }

    /// A deadline at the absolute clock time `at_ms`.
    pub fn at(at_ms: u64) -> Self {
        Deadline { at_ms }
    }

    /// Whether the clock has reached the deadline.
    pub fn expired(&self, clock: &dyn Clock) -> bool {
        clock.now_millis() >= self.at_ms
    }

    /// Milliseconds left before expiry (0 once expired).
    pub fn remaining_ms(&self, clock: &dyn Clock) -> u64 {
        self.at_ms.saturating_sub(clock.now_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_clock_ticks_deterministically() {
        let c = OpClock::new(10);
        assert_eq!(c.now_millis(), 0);
        assert_eq!(c.now_millis(), 10);
        assert_eq!(c.now_millis(), 20);
        assert_eq!(c.observations(), 3);
    }

    #[test]
    fn deadline_expiry_is_deterministic_under_op_clock() {
        let c = OpClock::new(10);
        let d = Deadline::after(&c, 25); // armed at t=0 → expires at 25
        assert!(!d.expired(&c)); // t=10
        assert_eq!(d.remaining_ms(&c), 5); // t=20
        assert!(d.expired(&c)); // t=30
        assert_eq!(d.remaining_ms(&c), 0);
    }

    #[test]
    fn system_clock_is_monotone() {
        let c = SystemClock::new();
        let a = c.now_millis();
        let b = c.now_millis();
        assert!(b >= a);
    }
}
