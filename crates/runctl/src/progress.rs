//! Progress observation.

use crate::control::Interrupt;
use crate::sync::Lock;
use std::sync::Mutex;

/// Observer for pipeline progress, interrupts and degradations.
///
/// All methods default to no-ops so implementors subscribe only to what
/// they need. Callbacks must be cheap and must not block: they run
/// inline on the pipeline threads.
pub trait Progress: Send + Sync {
    /// A pipeline phase began.
    fn on_phase_start(&self, _phase: &str) {}
    /// A pipeline phase finished (completely or after an interrupt).
    fn on_phase_end(&self, _phase: &str) {}
    /// A limit fired or cancellation was observed; emitted exactly once,
    /// when the interrupt is first latched.
    fn on_interrupt(&self, _why: Interrupt) {}
    /// The pipeline stepped down its degradation ladder.
    fn on_degrade(&self, _what: &str) {}
}

/// The silent observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProgress;

impl Progress for NullProgress {}

/// A test observer that records every event as a formatted line.
#[derive(Debug, Default)]
pub struct CollectingProgress {
    events: Mutex<Vec<String>>,
}

impl CollectingProgress {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> Vec<String> {
        self.events.enter().clone()
    }

    fn push(&self, line: String) {
        self.events.enter().push(line);
    }
}

impl Progress for CollectingProgress {
    fn on_phase_start(&self, phase: &str) {
        self.push(format!("start {phase}"));
    }

    fn on_phase_end(&self, phase: &str) {
        self.push(format!("end {phase}"));
    }

    fn on_interrupt(&self, why: Interrupt) {
        self.push(format!("interrupt {why}"));
    }

    fn on_degrade(&self, what: &str) {
        self.push(format!("degrade {what}"));
    }
}
