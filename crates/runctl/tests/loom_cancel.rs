//! Loom models for [`neat_runctl::CancelToken`].
//!
//! Run with `cargo test -p neat-runctl --features loom`. Each model
//! body is replayed across sampled interleavings (see `vendor/loom`);
//! every assertion must hold on all of them.
#![cfg(feature = "loom")]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;
use neat_runctl::CancelToken;

/// An armed fuse grants *exactly* its poll budget even under contention:
/// `armed_after(2)` with four concurrent polls must hand out precisely
/// two `false` results, regardless of which threads win the race. The
/// fuse countdown is a single `fetch_update`, so two threads can never
/// both consume the same grace poll.
#[test]
fn fuse_grants_exactly_n_grace_polls_under_contention() {
    loom::model(|| {
        let token = CancelToken::armed_after(2);
        let grace = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let token = token.clone();
                let grace = Arc::clone(&grace);
                thread::spawn(move || {
                    for _ in 0..2 {
                        if !token.is_cancelled() {
                            grace.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("poller thread");
        }
        assert_eq!(
            grace.load(Ordering::SeqCst),
            2,
            "4 polls against armed_after(2) must yield exactly 2 grace polls"
        );
        assert!(
            token.is_cancelled(),
            "fuse must be latched after exhaustion"
        );
    });
}

/// A manual cancel is visible to every clone: once `cancel()` returns
/// on one thread, no later poll on any clone may report `false`.
#[test]
fn manual_cancel_is_visible_to_concurrent_clones() {
    loom::model(|| {
        let token = CancelToken::new();
        let poller = {
            let token = token.clone();
            thread::spawn(move || {
                // Spin until the cancel lands; the canceller runs to
                // completion, so this terminates on every interleaving.
                while !token.is_cancelled() {
                    thread::yield_now();
                }
            })
        };
        let canceller = {
            let token = token.clone();
            thread::spawn(move || token.cancel())
        };
        canceller.join().expect("canceller thread");
        poller.join().expect("poller thread");
        assert!(token.is_cancelled(), "cancel must latch");
    });
}

/// Observer polls racing the owner never consume the owner's fuse: the
/// fuse models "cancel at the n-th *sequential* check point", so a
/// speculative worker hammering its observer must not change when the
/// owner trips.
#[test]
fn observer_polls_never_consume_the_fuse() {
    loom::model(|| {
        let token = CancelToken::armed_after(2);
        let observer = token.observer();
        let watcher = thread::spawn(move || {
            for _ in 0..16 {
                // The flag only sets once the *owner* exhausts its fuse,
                // which happens strictly after this thread joins.
                assert!(!observer.is_cancelled(), "observer must not trip the fuse");
            }
        });
        watcher.join().expect("observer thread");
        assert!(!token.is_cancelled()); // grace poll 1 of 2
        assert!(!token.is_cancelled()); // grace poll 2 of 2
        assert!(token.is_cancelled(), "fuse intact after observer traffic");
    });
}
