//! Event-stepped mobility-trace generator (the paper's GTMobiSIM stand-in).
//!
//! Section IV-A of the paper generates its datasets by placing N mobile
//! objects on a road network and simulating each one travelling, under the
//! per-segment speed limits, along the shortest path to a destination
//! chosen from a predefined set. Objects start from a small number of
//! *hotspot* regions (the ATL500 visualisation shows two) and head to one
//! of a few destinations (three, marked with X in Figure 3).
//!
//! [`generate_dataset`] reproduces that generative model deterministically:
//!
//! * `num_hotspots` hotspot centres and `num_destinations` destination
//!   junctions are drawn from the network (seeded),
//! * each object starts at a random junction within `hotspot_radius_m`
//!   *network* distance of a hotspot centre,
//! * it follows the shortest (directed) path to a random destination at a
//!   per-object fraction of the speed limit,
//! * its position is sampled every `sample_period_s` seconds as a
//!   map-matched [`RoadLocation`] (segment id + coordinates + timestamp).
//!
//! [`presets`] scales the simulation to the paper's fifteen datasets
//! ({ATL, SJ, MIA} × {500, 1000, 2000, 3000, 5000}, Table II).

pub mod faults;
pub mod noise;
pub mod presets;

use neat_rnet::path::TravelMode;
use neat_rnet::{NodeId, RoadLocation, RoadNetwork, ShortestPathEngine};
use neat_traj::{Dataset, Trajectory, TrajectoryId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of mobile objects (each produces one trajectory).
    pub num_objects: usize,
    /// Number of hotspot start regions.
    pub num_hotspots: usize,
    /// Number of destination junctions.
    pub num_destinations: usize,
    /// Network radius (metres) of each hotspot region; objects start at a
    /// random junction within this distance of the hotspot centre.
    pub hotspot_radius_m: f64,
    /// GPS sampling period in seconds.
    pub sample_period_s: f64,
    /// Per-object speed factor range `(lo, hi)` relative to the speed
    /// limit (objects travel *under* the limit, as in the paper).
    pub speed_factor: (f64, f64),
    /// Departure times are staggered uniformly over this window (seconds).
    pub start_window_s: f64,
    /// First trajectory id to assign (ids are consecutive from here).
    /// Lets multiple batches on the same network keep globally unique ids.
    pub first_trajectory_id: u64,
    /// How objects choose their route: shortest distance (the paper's
    /// setting) or fastest free-flow travel time.
    pub route_by: neat_rnet::path::CostModel,
    /// Probability that any interior GPS sample is dropped (signal loss).
    /// The first and last samples of a trip always survive. Dropout
    /// produces the non-contiguous consecutive samples whose repair the
    /// paper delegates to the map-matching approach of \[14\].
    pub sample_dropout: f64,
    /// Trips per object. The paper's datasets use one trip per object;
    /// with more, each object chains trips (next origin = last
    /// destination, dwell `trip_dwell_s` between them), each trip forming
    /// its own trajectory exactly as Section II-B defines.
    pub trips_per_object: usize,
    /// Dwell time between chained trips, in seconds.
    pub trip_dwell_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_objects: 100,
            num_hotspots: 2,
            num_destinations: 3,
            hotspot_radius_m: 600.0,
            sample_period_s: 3.0,
            speed_factor: (0.75, 1.0),
            start_window_s: 300.0,
            first_trajectory_id: 0,
            route_by: neat_rnet::path::CostModel::Distance,
            sample_dropout: 0.0,
            trips_per_object: 1,
            trip_dwell_s: 120.0,
        }
    }
}

/// Generates a mobility-trace dataset on `net`.
///
/// Fully deterministic for a given `(net, config, seed)` triple. Objects
/// whose origin equals their destination, or whose destination is
/// unreachable, are re-drawn (up to a bounded number of attempts), so the
/// returned dataset normally holds exactly `config.num_objects`
/// trajectories.
///
/// # Panics
///
/// Panics if the network has no junctions or `sample_period_s ≤ 0`.
pub fn generate_dataset(
    net: &RoadNetwork,
    config: &SimConfig,
    seed: u64,
    name: impl Into<String>,
) -> Dataset {
    generate_dataset_labeled(net, config, seed, name).0
}

/// Ground-truth label of a trajectory: the origin→destination pair whose
/// shortest path the object followed. Trajectories with equal labels
/// travelled the exact same route.
pub type RouteLabel = (NodeId, NodeId);

/// Full ground truth of a simulation run: per-trajectory route labels
/// plus the generating structure (hotspot centres and destinations), so
/// evaluations can score at either granularity — exact route or macro
/// origin-region→destination class.
#[derive(Debug, Clone, PartialEq)]
pub struct SimGroundTruth {
    /// Exact (origin, destination) route of each trajectory.
    pub labels: HashMap<TrajectoryId, RouteLabel>,
    /// Hotspot centre junctions, in draw order.
    pub hotspots: Vec<NodeId>,
    /// Junctions within the hotspot radius of each centre (same order as
    /// `hotspots`).
    pub hotspot_members: Vec<Vec<NodeId>>,
    /// Destination junctions, in draw order.
    pub destinations: Vec<NodeId>,
}

impl SimGroundTruth {
    /// Macro class of a trajectory: (index of the hotspot region its
    /// origin belongs to, index of its destination). Trajectories whose
    /// origin is in no hotspot ball (chained trips start at previous
    /// destinations) get the hotspot slot `usize::MAX`.
    pub fn macro_class(&self, tr: TrajectoryId) -> Option<(usize, usize)> {
        let (origin, dest) = *self.labels.get(&tr)?;
        let h = self
            .hotspot_members
            .iter()
            .position(|m| m.contains(&origin))
            .unwrap_or(usize::MAX);
        let d = self
            .destinations
            .iter()
            .position(|&x| x == dest)
            .unwrap_or(usize::MAX);
        Some((h, d))
    }
}

/// Like [`generate_dataset`], but also returns the full
/// [`SimGroundTruth`] — the basis for external cluster-quality evaluation
/// (the simulator knows which trips genuinely belong together).
///
/// # Panics
///
/// Same as [`generate_dataset`].
pub fn generate_dataset_labeled(
    net: &RoadNetwork,
    config: &SimConfig,
    seed: u64,
    name: impl Into<String>,
) -> (Dataset, SimGroundTruth) {
    assert!(net.node_count() > 0, "network has no junctions");
    assert!(
        config.sample_period_s > 0.0,
        "sample period must be positive"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut engine = ShortestPathEngine::new(net);

    // Draw hotspot centres and destinations (distinct junctions).
    let mut all_nodes: Vec<NodeId> = (0..net.node_count()).map(NodeId::new).collect();
    all_nodes.shuffle(&mut rng);
    let hotspots: Vec<NodeId> = all_nodes
        .iter()
        .take(config.num_hotspots)
        .copied()
        .collect();
    let destinations: Vec<NodeId> = all_nodes
        .iter()
        .skip(config.num_hotspots)
        .take(config.num_destinations)
        .copied()
        .collect();

    // Junctions within network radius of each hotspot centre.
    let mut hotspot_members: Vec<Vec<NodeId>> = Vec::with_capacity(hotspots.len());
    for &h in &hotspots {
        let dist = engine.distances_from(net, h, TravelMode::Undirected);
        let mut members: Vec<NodeId> = dist
            .iter()
            .enumerate()
            .filter(|(_, d)| **d <= config.hotspot_radius_m)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        if members.is_empty() {
            members.push(h);
        }
        hotspot_members.push(members);
    }

    // Route cache: start-hotspot regions are small and destinations few,
    // so most objects share (origin, destination) pairs.
    let mut route_cache: HashMap<(NodeId, NodeId), Option<neat_rnet::path::Route>> = HashMap::new();

    let mut dataset = Dataset::new(name);
    let mut labels: HashMap<TrajectoryId, RouteLabel> = HashMap::new();
    let mut next_id = config.first_trajectory_id;
    let trips = config.trips_per_object.max(1);
    for _ in 0..config.num_objects {
        // The object's first trip starts in a hotspot; chained trips start
        // where the previous one ended.
        let mut chain_origin: Option<NodeId> = None;
        let mut chain_time = 0.0f64;
        for trip in 0..trips {
            let mut placed = false;
            for _attempt in 0..16 {
                let origin = match chain_origin {
                    Some(o) => o,
                    None => {
                        let members = &hotspot_members[rng.gen_range(0..hotspot_members.len())];
                        members[rng.gen_range(0..members.len())]
                    }
                };
                let dest = if destinations.is_empty() {
                    all_nodes[rng.gen_range(0..all_nodes.len())]
                } else {
                    destinations[rng.gen_range(0..destinations.len())]
                };
                if origin == dest {
                    continue;
                }
                let route = route_cache
                    .entry((origin, dest))
                    .or_insert_with(|| match config.route_by {
                        neat_rnet::path::CostModel::Distance => {
                            engine.route(net, origin, dest, TravelMode::Directed)
                        }
                        neat_rnet::path::CostModel::TravelTime => engine
                            .fastest_route(net, origin, dest, TravelMode::Directed)
                            .map(|(r, _)| r),
                    })
                    .clone();
                let route = match route {
                    Some(r) if !r.segments.is_empty() => r,
                    _ => continue,
                };
                let factor = rng.gen_range(config.speed_factor.0..=config.speed_factor.1);
                let start = if trip == 0 {
                    rng.gen_range(0.0..=config.start_window_s.max(f64::MIN_POSITIVE))
                } else {
                    chain_time + config.trip_dwell_s
                };
                let mut points = sample_route(net, &route, factor, start, config.sample_period_s);
                if config.sample_dropout > 0.0 && points.len() > 2 {
                    let last = points.len() - 1;
                    points = points
                        .into_iter()
                        .enumerate()
                        .filter(|(i, _)| {
                            *i == 0
                                || *i == last
                                || rng.gen_range(0.0..1.0) >= config.sample_dropout
                        })
                        .map(|(_, p)| p)
                        .collect();
                }
                if points.len() >= 2 {
                    chain_origin = Some(dest);
                    chain_time = points.last().expect("non-empty").time; // lint:allow(L1) reason=points.len() >= 2 checked by the enclosing branch
                    labels.insert(TrajectoryId::new(next_id), (origin, dest));
                    dataset.push(
                        Trajectory::new(TrajectoryId::new(next_id), points)
                            .expect("sampled points are time-ordered"), // lint:allow(L1) reason=the simulator emits strictly increasing sample times
                    );
                    next_id += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Pathological configs (e.g. 1-node networks) may fail
                // placement after all attempts; remaining trips of this
                // object are skipped rather than looping forever.
                break;
            }
        }
    }
    (
        dataset,
        SimGroundTruth {
            labels,
            hotspots,
            hotspot_members,
            destinations,
        },
    )
}

/// Samples an object's motion along `route` every `dt` seconds.
///
/// The object moves at `factor × speed_limit` on every segment. The
/// destination arrival point is always emitted as the final sample.
fn sample_route(
    net: &RoadNetwork,
    route: &neat_rnet::path::Route,
    factor: f64,
    start_time: f64,
    dt: f64,
) -> Vec<RoadLocation> {
    // Per-segment (start time, duration) pairs.
    let mut seg_times = Vec::with_capacity(route.segments.len());
    let mut total_time = 0.0;
    for &sid in &route.segments {
        let seg = net.segment(sid).expect("route segment exists"); // lint:allow(L1) reason=route segments come from this network's own router
        let t = seg.length / (seg.speed_limit * factor);
        seg_times.push((total_time, t));
        total_time += t;
    }

    let mut points = Vec::new();
    let mut seg_idx = 0usize;
    let mut elapsed = 0.0f64;
    loop {
        while seg_idx + 1 < route.segments.len()
            && elapsed >= seg_times[seg_idx].0 + seg_times[seg_idx].1
        {
            seg_idx += 1;
        }
        let clamped = elapsed.min(total_time);
        let (seg_start, seg_dur) = seg_times[seg_idx];
        let frac = ((clamped - seg_start) / seg_dur).clamp(0.0, 1.0);
        let sid = route.segments[seg_idx];
        let a = net.position(route.nodes[seg_idx]);
        let b = net.position(route.nodes[seg_idx + 1]);
        points.push(RoadLocation::new(
            sid,
            a.lerp(b, frac),
            start_time + clamped,
        ));
        if elapsed >= total_time {
            break;
        }
        elapsed += dt;
        if elapsed > total_time {
            elapsed = total_time;
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::{generate_grid_network, GridNetworkConfig};

    fn small_net() -> RoadNetwork {
        generate_grid_network(&GridNetworkConfig::small_test(10, 10), 1)
    }

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            num_objects: n,
            ..SimConfig::default()
        }
    }

    #[test]
    fn generates_requested_object_count() {
        let net = small_net();
        let d = generate_dataset(&net, &cfg(25), 7, "t");
        assert_eq!(d.len(), 25);
        assert!(d.validate_unique_ids().is_ok());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let net = small_net();
        let a = generate_dataset(&net, &cfg(10), 3, "a");
        let b = generate_dataset(&net, &cfg(10), 3, "b");
        assert_eq!(a.trajectories(), b.trajectories());
        let c = generate_dataset(&net, &cfg(10), 4, "c");
        assert_ne!(a.trajectories(), c.trajectories());
    }

    #[test]
    fn samples_are_time_ordered_and_on_route_segments() {
        let net = small_net();
        let d = generate_dataset(&net, &cfg(10), 5, "t");
        for tr in d.trajectories() {
            for w in tr.points().windows(2) {
                assert!(w[1].time >= w[0].time);
            }
            for p in tr.points() {
                let seg = net.segment(p.segment).unwrap();
                let a = net.position(seg.a);
                let b = net.position(seg.b);
                let d = neat_rnet::geometry::point_segment_distance(p.position, a, b);
                assert!(d < 1e-6, "sample {p} off its segment by {d}");
            }
        }
    }

    #[test]
    fn consecutive_samples_on_same_or_nearby_segments() {
        let net = small_net();
        let d = generate_dataset(&net, &cfg(10), 11, "t");
        for tr in d.trajectories() {
            for w in tr.points().windows(2) {
                if w[0].segment != w[1].segment {
                    // Shortest-path routes are contiguous, but sampling may
                    // skip a short segment entirely between two ticks —
                    // verify the two segments are within one hop.
                    let s0 = net.segment(w[0].segment).unwrap();
                    let s1 = net.segment(w[1].segment).unwrap();
                    let direct = net.intersection_of(s0.id, s1.id).is_some();
                    let one_hop = net
                        .adjacent_segments(s0.id)
                        .iter()
                        .any(|&m| net.intersection_of(m, s1.id).is_some());
                    assert!(direct || one_hop);
                }
            }
        }
    }

    #[test]
    fn speed_respects_limit() {
        let net = small_net();
        let d = generate_dataset(&net, &cfg(20), 13, "t");
        let max_limit = net.segments().map(|s| s.speed_limit).fold(0.0f64, f64::max);
        for tr in d.trajectories() {
            for w in tr.points().windows(2) {
                let dt = w[1].time - w[0].time;
                if dt > 1e-9 {
                    let v = w[0].position.distance(w[1].position) / dt;
                    // Straight-line speed can never exceed the max limit.
                    assert!(v <= max_limit * 1.001, "speed {v} over limit");
                }
            }
        }
    }

    #[test]
    fn trajectories_end_at_destinations() {
        let net = small_net();
        let config = cfg(30);
        let d = generate_dataset(&net, &config, 17, "t");
        // Final samples coincide with destination junctions, so there are
        // at most `num_destinations` distinct final positions.
        let mut finals: Vec<(i64, i64)> = d
            .trajectories()
            .iter()
            .map(|t| {
                let p = t.last().position;
                ((p.x * 1000.0) as i64, (p.y * 1000.0) as i64)
            })
            .collect();
        finals.sort();
        finals.dedup();
        assert!(finals.len() <= config.num_destinations);
    }

    #[test]
    fn sampling_period_controls_point_count() {
        let net = small_net();
        let mut fast = cfg(10);
        fast.sample_period_s = 1.0;
        let mut slow = cfg(10);
        slow.sample_period_s = 10.0;
        let df = generate_dataset(&net, &fast, 23, "f");
        let ds = generate_dataset(&net, &slow, 23, "s");
        assert!(df.total_points() > ds.total_points());
    }

    #[test]
    fn labels_cover_every_trajectory_and_group_same_routes() {
        let net = small_net();
        let (d, gt) = generate_dataset_labeled(&net, &cfg(30), 7, "lab");
        let labels = &gt.labels;
        assert_eq!(labels.len(), d.len());
        assert_eq!(gt.hotspots.len(), 2);
        assert_eq!(gt.destinations.len(), 3);
        // Every first-trip origin belongs to a hotspot ball.
        for tr in d.trajectories() {
            assert!(gt.macro_class(tr.id()).is_some());
        }
        // Same-label trajectories follow the same segment sequence.
        let mut by_label: std::collections::HashMap<_, Vec<_>> = std::collections::HashMap::new();
        for tr in d.trajectories() {
            by_label
                .entry(labels[&tr.id()])
                .or_default()
                .push(tr.segment_sequence());
        }
        for (_, seqs) in by_label {
            for w in seqs.windows(2) {
                // Sampling cadence may skip different short segments, but
                // first and last segments of the shared route agree.
                assert_eq!(w[0].first(), w[1].first());
                assert_eq!(w[0].last(), w[1].last());
            }
        }
        // Labeled and unlabeled generation agree (same RNG stream).
        let plain = generate_dataset(&net, &cfg(30), 7, "lab");
        assert_eq!(plain.trajectories(), d.trajectories());
    }

    #[test]
    fn dropout_thins_samples_but_keeps_endpoints() {
        let net = small_net();
        let full = generate_dataset(&net, &cfg(15), 3, "full");
        let mut c = cfg(15);
        c.sample_dropout = 0.5;
        let thin = generate_dataset(&net, &c, 3, "thin");
        assert_eq!(thin.len(), full.len());
        assert!(thin.total_points() < full.total_points());
        for tr in thin.trajectories() {
            assert!(tr.len() >= 2);
        }
    }

    #[test]
    fn trip_chaining_multiplies_trajectories() {
        let net = small_net();
        let mut c = cfg(8);
        c.trips_per_object = 3;
        let d = generate_dataset(&net, &c, 19, "chain");
        assert_eq!(d.len(), 24);
        assert!(d.validate_unique_ids().is_ok());
    }

    #[test]
    fn chained_trips_connect_in_space_and_time() {
        let net = small_net();
        let mut c = cfg(4);
        c.trips_per_object = 2;
        c.trip_dwell_s = 60.0;
        let d = generate_dataset(&net, &c, 23, "chain2");
        // Trips come out in object order: (t0, t1) of object 0, then
        // object 1, … Each second trip starts where the first ended and
        // after the dwell.
        for pair in d.trajectories().chunks(2) {
            if pair.len() < 2 {
                continue;
            }
            let (a, b) = (&pair[0], &pair[1]);
            assert!(b.first().time >= a.last().time + 60.0 - 1e-9);
            assert!(
                a.last().position.distance(b.first().position) < 1e-6,
                "second trip must start at the first trip's destination"
            );
        }
    }

    #[test]
    fn time_routing_changes_or_preserves_routes_validly() {
        let net = small_net();
        let mut cfg_time = cfg(10);
        cfg_time.route_by = neat_rnet::path::CostModel::TravelTime;
        let d = generate_dataset(&net, &cfg_time, 5, "t");
        assert_eq!(d.len(), 10);
        // Same invariants as distance routing: time-ordered, on-network.
        for tr in d.trajectories() {
            for w in tr.points().windows(2) {
                assert!(w[1].time >= w[0].time);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sample period")]
    fn zero_period_panics() {
        let net = small_net();
        let mut c = cfg(1);
        c.sample_period_s = 0.0;
        let _ = generate_dataset(&net, &c, 0, "x");
    }
}
