//! The paper's fifteen datasets: {ATL, SJ, MIA} × {500…5000} objects.
//!
//! Table II reports each dataset's point count; the sampling periods below
//! are calibrated so our synthetic maps yield point counts of the same
//! magnitude (the exact figures depend on the private GTMobiSIM
//! configuration the authors used and are compared in EXPERIMENTS.md).

use crate::{generate_dataset, SimConfig};
use neat_rnet::netgen::MapPreset;
use neat_rnet::RoadNetwork;
use neat_traj::Dataset;

/// The object counts of Table II.
pub const OBJECT_COUNTS: [usize; 5] = [500, 1000, 2000, 3000, 5000];

/// One of the paper's datasets, identified by map and object count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetPreset {
    /// Which road network the objects travel on.
    pub map: MapPreset,
    /// Number of mobile objects.
    pub objects: usize,
}

impl DatasetPreset {
    /// Creates a preset; `objects` is typically one of [`OBJECT_COUNTS`].
    pub fn new(map: MapPreset, objects: usize) -> Self {
        DatasetPreset { map, objects }
    }

    /// The label the paper uses, e.g. `"ATL500"`.
    pub fn label(&self) -> String {
        format!("{}{}", self.map.code(), self.objects)
    }

    /// The point count Table II reports for this dataset, if listed.
    pub fn paper_points(&self) -> Option<usize> {
        let idx = OBJECT_COUNTS.iter().position(|&c| c == self.objects)?;
        let table: [[usize; 5]; 3] = [
            // ATL
            [114_878, 233_793, 468_738, 669_924, 1_277_521],
            // SJ
            [131_982, 255_162, 542_598, 794_638, 1_296_739],
            // MIA
            [276_711, 452_224, 893_412, 1_302_145, 2_262_313],
        ];
        let row = match self.map {
            MapPreset::Atlanta => 0,
            MapPreset::SanJose => 1,
            MapPreset::Miami => 2,
        };
        Some(table[row][idx])
    }

    /// Simulation configuration calibrated per map.
    ///
    /// Sampling periods are chosen so points-per-object lands near the
    /// paper's (ATL ≈ 230, SJ ≈ 260, MIA ≈ 550); hotspot and destination
    /// counts follow the ATL500 description in Section IV-B.
    pub fn sim_config(&self) -> SimConfig {
        let sample_period_s = match self.map {
            MapPreset::Atlanta => 3.7,
            MapPreset::SanJose => 3.2,
            MapPreset::Miami => 9.0,
        };
        SimConfig {
            num_objects: self.objects,
            num_hotspots: 2,
            num_destinations: 3,
            hotspot_radius_m: 600.0,
            sample_period_s,
            speed_factor: (0.75, 1.0),
            start_window_s: 300.0,
            first_trajectory_id: 0,
            route_by: neat_rnet::path::CostModel::Distance,
            sample_dropout: 0.0,
            trips_per_object: 1,
            trip_dwell_s: 120.0,
        }
    }

    /// Generates the dataset on an already-generated network for this
    /// preset's map.
    pub fn generate_on(&self, net: &RoadNetwork, seed: u64) -> Dataset {
        generate_dataset(net, &self.sim_config(), seed, self.label())
    }

    /// Generates both the network (seeded with `seed`) and the dataset
    /// (seeded with `seed + 1`).
    pub fn generate(&self, seed: u64) -> (RoadNetwork, Dataset) {
        let net = self.map.generate(seed);
        let data = self.generate_on(&net, seed.wrapping_add(1));
        (net, data)
    }

    /// All fifteen presets of Table II in row order.
    pub fn all() -> Vec<DatasetPreset> {
        MapPreset::all()
            .into_iter()
            .flat_map(|m| OBJECT_COUNTS.iter().map(move |&c| DatasetPreset::new(m, c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(
            DatasetPreset::new(MapPreset::Atlanta, 500).label(),
            "ATL500"
        );
        assert_eq!(
            DatasetPreset::new(MapPreset::SanJose, 2000).label(),
            "SJ2000"
        );
        assert_eq!(
            DatasetPreset::new(MapPreset::Miami, 5000).label(),
            "MIA5000"
        );
    }

    #[test]
    fn paper_points_table() {
        assert_eq!(
            DatasetPreset::new(MapPreset::Atlanta, 500).paper_points(),
            Some(114_878)
        );
        assert_eq!(
            DatasetPreset::new(MapPreset::Miami, 5000).paper_points(),
            Some(2_262_313)
        );
        assert_eq!(
            DatasetPreset::new(MapPreset::Atlanta, 123).paper_points(),
            None
        );
    }

    #[test]
    fn all_presets_enumerated() {
        let all = DatasetPreset::all();
        assert_eq!(all.len(), 15);
        assert_eq!(all[0].label(), "ATL500");
        assert_eq!(all[14].label(), "MIA5000");
    }

    #[test]
    fn atl500_point_count_is_right_magnitude() {
        // Shrunk variant of the ATL500 run: same map, fewer objects, so
        // the unit test stays fast. Points/object should be near the
        // paper's ≈230.
        let preset = DatasetPreset::new(MapPreset::Atlanta, 25);
        let (_, data) = preset.generate(42);
        assert_eq!(data.len(), 25);
        let per_object = data.total_points() as f64 / data.len() as f64;
        assert!(
            (50.0..1200.0).contains(&per_object),
            "points per object {per_object} far from paper magnitude"
        );
    }
}
